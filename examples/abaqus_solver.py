#!/usr/bin/env python3
"""Abaqus/Standard-style LDL^T solver over streams (§V, Figs. 8-9).

Shows the standalone supernode test program (Fig. 9) on all three
targets, a numerics check of the streamed LDL^T against the dense
reference, and one customer-representative workload through the sparse
solver, Xeon-only vs Xeon + 2 cards (Fig. 8).

Run:  python examples/abaqus_solver.py
"""

import numpy as np

from repro import HStreams, make_platform
from repro.apps.abaqus import WORKLOADS, solve_workload
from repro.apps.abaqus.supernode import factorize_supernode, ldlt_dense


def validate() -> None:
    print("== streamed LDL^T vs dense reference (thread backend) ==")
    hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
    rng = np.random.default_rng(9)
    n = 80
    M = rng.random((n, n))
    A = M @ M.T + n * np.eye(n)
    res = factorize_supernode(hs, n, n, panel=20, domain=1, nstreams=3,
                              data=A.copy())
    L_ref, d_ref = ldlt_dense(A)
    err = np.abs(res.L @ np.diag(res.d) @ res.L.T - A).max()
    print(f"n={n}: max |L D L^T - A| = {err:.2e}, "
          f"d matches reference: {np.allclose(res.d, d_ref)}")
    hs.fini()


def standalone_supernode() -> None:
    print("\n== Fig. 9: the standalone supernode on three targets ==")
    NR, NC, W = 28672, 7168, 1024
    for label, host, domain, nstreams in [
        ("KNC offload, 4 streams", "HSW", 1, 4),
        ("HSW host-as-target, 3 streams", "HSW", 0, 3),
        ("IVB host-as-target, 3 streams", "IVB", 0, 3),
    ]:
        hs = HStreams(platform=make_platform(host, 1), backend="sim", trace=False)
        total = hs.domain(domain).device.total_cores
        wide = hs.stream_create(domain=domain, cpu_mask=range(total))
        res = factorize_supernode(hs, NR, NC, panel=W, domain=domain,
                                  nstreams=nstreams, panel_stream=wide)
        print(f"{label:32s}: {res.elapsed_s:5.2f} s ({res.gflops:4.0f} GFl/s)")


def full_solver(workload: str = "s4b") -> None:
    w = WORKLOADS[workload]
    print(f"\n== Fig. 8: workload {workload!r} "
          f"({'symmetric' if w.symmetric else 'unsymmetric'}, "
          f"{w.nfronts} fronts, solver fraction {w.solver_fraction:.0%}) ==")
    for host in ("IVB", "HSW"):
        hs0 = HStreams(platform=make_platform(host, 2), backend="sim", trace=False)
        base = solve_workload(hs0, w, use_cards=False)
        hs1 = HStreams(platform=make_platform(host, 2), backend="sim", trace=False)
        het = solve_workload(hs1, w, use_cards=True)
        sp = base.elapsed_s / het.elapsed_s
        f = w.solver_fraction
        app = 1.0 / ((1 - f) + f / sp)
        print(f"{host}: solver {base.elapsed_s:.1f}s -> {het.elapsed_s:.1f}s "
              f"= {sp:.2f}x  (whole application {app:.2f}x, "
              f"{het.offloaded_fronts}/{het.nfronts} fronts offloaded)")


if __name__ == "__main__":
    validate()
    standalone_supernode()
    full_solver()
