#!/usr/bin/env python3
"""Hetero tiled Cholesky and its competitors (Fig. 5/7).

The distribution of Fig. 5: DPOTRF on a machine-wide host stream, DTRSMs
on host streams with results broadcast to the cards, DSYRK/DGEMM updates
round-robin'd by tile-row, the next panel column returning home each
iteration. Compared against the MAGMA-style hybrid (panel on host,
everything else on the card), the MKL-Automatic-Offload-style per-call
splitter, and the OmpSs task version.

Run:  python examples/cholesky_hetero.py
"""

import numpy as np

from repro import HStreams, make_platform
from repro.linalg import hetero_cholesky, magma_cholesky, mkl_ao_cholesky
from repro.ompss.cholesky import ompss_cholesky


def validate() -> None:
    print("== numerics on the thread backend ==")
    hs = HStreams(platform=make_platform("HSW", 2), backend="thread", trace=False)
    rng = np.random.default_rng(3)
    n = 96
    M = rng.random((n, n))
    spd = M @ M.T + n * np.eye(n)
    res = hetero_cholesky(hs, n, tile=32, data=spd.copy(), streams_per_domain=2)
    err = np.abs(res.L @ res.L.T - spd).max()
    print(f"n={n}: tile-rows owned by domains {res.row_owner}, "
          f"max |L L^T - A| = {err:.2e}")
    assert err < 1e-8
    hs.fini()


def compare(n: int = 20000) -> None:
    print(f"\n== implementations at n={n} on HSW + 1 KNC (virtual) ==")

    def hs(ncards=1):
        return HStreams(platform=make_platform("HSW", ncards), backend="sim",
                        trace=False)

    rows = [
        ("hStreams hetero (host + card)",
         hetero_cholesky(hs(), n, tile=n // 20, host_streams=4).gflops),
        ("MKL AO style (per-call split)",
         mkl_ao_cholesky(hs(), n, tile=n // 20).gflops),
        ("MAGMA style (panel on host)",
         magma_cholesky(hs(), n, tile=n // 20).gflops),
        ("OmpSs tasks over hStreams",
         ompss_cholesky(n, tile=max(n // 10, 1200)).gflops),
        ("hStreams offload only (no host work)",
         hetero_cholesky(hs(), n, tile=n // 20, host_streams=4,
                         use_host=False).gflops),
    ]
    for label, gf in rows:
        print(f"{label:38s}: {gf:6.0f} GFl/s")


if __name__ == "__main__":
    validate()
    compare()
