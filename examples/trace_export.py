#!/usr/bin/env python3
"""Schedule inspection: ASCII Gantt + Chrome/Perfetto trace export.

Runs a pipelined hetero Cholesky on the sim backend, prints the terminal
Gantt of the first milliseconds, and writes the full schedule as a
Chrome trace (open chrome://tracing or https://ui.perfetto.dev and load
the JSON) — the reproduction's stand-in for the VTune timelines the
paper's authors worked from.

Run:  python examples/trace_export.py [output.json]
"""

import json
import sys

from repro import HStreams, make_platform
from repro.linalg import hetero_cholesky
from repro.sim.trace import Tracer


def main(out_path: str = "/tmp/hstreams_trace.json") -> None:
    hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=True)
    res = hetero_cholesky(hs, 12000, tile=600, host_streams=4)
    print(f"Cholesky n=12000: {res.gflops:.0f} GFl/s over "
          f"{len(hs.tracer.events)} traced actions\n")

    # A zoomed Gantt: just the first 60 ms, host + card lanes.
    zoom = Tracer()
    t0 = min(e.start for e in hs.tracer.events)
    for e in hs.tracer.events:
        if e.start - t0 < 0.06:
            zoom.record(e.lane, e.start, min(e.end, t0 + 0.06), e.label, e.kind)
    print("first 60 ms (# compute, = transfer, | sync):")
    print(zoom.gantt(width=78))

    trace = hs.tracer.to_chrome_trace()
    with open(out_path, "w") as fh:
        json.dump(trace, fh)
    print(f"\nwrote {len(trace)} Chrome-trace events to {out_path}")
    print("open chrome://tracing (or ui.perfetto.dev) and load the file")


if __name__ == "__main__":
    main(*sys.argv[1:2])
