#!/usr/bin/env python3
"""Offload over fabric: streams on remote Xeon nodes (paper §III/§IV).

The paper exercised hStreams running on top of COI *between Xeon nodes*
but could not report results ("this COI feature is still in
development"). This example shows what that uniformity buys: the exact
same stream/buffer/enqueue program runs against a PCIe coprocessor or a
fabric-attached remote node — only the link parameters differ — and the
whole tiled matmul spans a mini-cluster unchanged.

Run:  python examples/fabric_cluster.py
"""

from repro import HStreams, XferDirection
from repro.linalg import hetero_matmul
from repro.sim.kernels import dgemm
from repro.sim.platforms import make_fabric_platform, make_platform


def same_program(platform, label: str) -> None:
    """One program, any target domain kind."""
    hs = HStreams(platform=platform, backend="sim", trace=False)
    hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
    dom = hs.domain(1)
    s = hs.stream_create(domain=1, ncores=dom.device.total_cores)
    b = hs.buffer_create(nbytes=8 * 4000 * 4000, domains=[1])
    t0 = hs.elapsed()
    hs.enqueue_xfer(s, b)
    hs.enqueue_compute(s, "gemm", args=(4000, 4000, 4000, b.all_inout()))
    hs.enqueue_xfer(s, b, XferDirection.SINK_TO_SRC)
    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    print(f"{label:42s}: {elapsed * 1e3:7.1f} ms "
          f"({2 * 4000**3 / elapsed / 1e9:5.0f} GFl/s end-to-end) "
          f"on {dom.device.name}")


def main() -> None:
    print("== the same offload program against three domain kinds ==")
    same_program(make_platform("HSW", 1), "KNC card over PCIe")
    same_program(make_fabric_platform("HSW", 1, node="HSW"),
                 "remote HSW node over fabric")
    same_program(make_fabric_platform("HSW", 1, node="IVB"),
                 "remote IVB node over fabric")

    print("\n== one tiled matmul across a host + 3 fabric nodes ==")
    hs = HStreams(platform=make_fabric_platform("HSW", nnodes=3, node="HSW"),
                  backend="sim", trace=False)
    res = hetero_matmul(hs, 16000, tile=2000, streams_per_domain=2)
    ideal = 4 * 902.0
    print(f"4x HSW-class domains: {res.gflops:.0f} GFl/s "
          f"({res.gflops / ideal:.0%} of 4x one HSW's DGEMM rate; "
          f"columns per domain {res.assignment})")


if __name__ == "__main__":
    main()
