#!/usr/bin/env python3
"""Petrobras-style RTM: halo/bulk streams and pipelined exchange (§V).

Shows four things:

1. the wave-propagation numerics are right: a domain-decomposed run with
   per-step halo exchange reproduces the monolithic reference field;
2. capture-once/replay-many: the steady-state step pair recorded with
   ``capture_graph()`` and replayed produces the bit-identical field at
   near-zero per-step admission cost (no dependence scans);
3. the offload schemes' virtual performance: host baseline, synchronous
   offload, asynchronous pipelined offload (the paper's 3-10 % gain and
   1.52x/6.02x card speedups);
4. the §V scheme analysis: FIFO-barrier vs dependence-based exchange as
   the halo/interior ratio grows.

Run:  python examples/rtm_pipeline.py
"""

import numpy as np

from repro import HStreams, make_platform
from repro.apps.rtm import decompose, run_rtm
from repro.apps.rtm.stencil import HALF_ORDER, propagate_reference, propagate_slab


def validate_numerics() -> None:
    print("== decomposed propagation vs monolithic reference ==")
    h = HALF_ORDER
    nz, ny, nx, steps, vdt2 = 32, 8, 8, 6, 0.04
    rng = np.random.default_rng(11)
    cur0 = np.zeros((nz + 2 * h, ny + 2 * h, nx + 2 * h))
    cur0[h:-h, h:-h, h:-h] = rng.random((nz, ny, nx))
    prev0 = np.zeros_like(cur0)
    ref = propagate_reference(cur0, prev0, vdt2, steps)

    subs = decompose(nz, ny, nx, 2, periodic=False)
    local = []
    for sub in subs:
        c = np.zeros((sub.nz + 2 * h, ny + 2 * h, nx + 2 * h))
        c[h:-h] = cur0[h + sub.z0 : h + sub.z0 + sub.nz]
        local.append([c, np.zeros_like(c), np.zeros_like(c)])
    for _ in range(steps):
        lo, hi = local[0][0], local[1][0]
        hi[:h] = lo[-2 * h : -h]
        lo[-h:] = hi[h : 2 * h]
        for sub, slot in zip(subs, local):
            propagate_slab(slot[2], slot[0], slot[1], vdt2, 0, sub.nz)
            slot[1], slot[0], slot[2] = slot[0], slot[2], slot[1]
    got = np.concatenate([local[0][0][h:-h], local[1][0][h:-h]], axis=0)
    err = np.abs(got - ref[h:-h]).max()
    print(f"2 ranks x {steps} steps: max field error = {err:.2e}")
    assert err < 1e-10


def capture_and_replay() -> None:
    print("\n== capture-once/replay-many vs per-step re-enqueue ==")
    h = HALF_ORDER
    nz, ny, nx, steps, vdt2 = 36, 8, 8, 8, 0.04
    rng = np.random.default_rng(11)
    cur0 = np.zeros((nz + 2 * h, ny + 2 * h, nx + 2 * h))
    cur0[h:-h, h:-h, h:-h] = rng.random((nz, ny, nx))
    prev0 = np.zeros_like(cur0)

    def run(replay):
        hs = HStreams(platform=make_platform("HSW", 2), backend="thread",
                      trace=False)
        r = run_rtm(hs, grid=(nz, ny, nx), nranks=2, steps=steps,
                    scheme="async", periodic=False,
                    field=(cur0.copy(), prev0.copy()), vdt2=vdt2,
                    replay=replay)
        scans = sum(s["dep_scan_comparisons"]
                    for s in hs.metrics()["streams"].values())
        hs.fini()
        return r.field, scans

    enq_field, enq_scans = run(replay=False)
    rep_field, rep_scans = run(replay=True)
    assert np.array_equal(rep_field, enq_field), "replay changed the physics"
    print(f"{steps} steps, 2 ranks: replayed field is bit-identical; "
          f"dependence-scan comparisons {enq_scans} -> {rep_scans} "
          f"(only the captured pair scans)")


def performance() -> None:
    print("\n== offload schemes on the simulated platform ==")
    grid, steps = (2048, 512, 512), 12

    def run(ncards, **kw):
        hs = HStreams(platform=make_platform("HSW", max(ncards, 1)),
                      backend="sim", trace=False)
        return run_rtm(hs, grid=grid, steps=steps, **kw)

    host = run(1, scheme="host")
    print(f"{'1 HSW host, no offload':34s}: {host.mpoints_per_s:8.0f} Mpt/s")
    for nranks in (1, 4):
        sync = run(nranks, nranks=nranks, scheme="sync")
        asyn = run(nranks, nranks=nranks, scheme="async")
        print(f"{f'{nranks} rank(s) on {nranks} KNC, sync':34s}: "
              f"{sync.mpoints_per_s:8.0f} Mpt/s "
              f"({sync.mpoints_per_s / host.mpoints_per_s:.2f}x host)")
        print(f"{f'{nranks} rank(s) on {nranks} KNC, async':34s}: "
              f"{asyn.mpoints_per_s:8.0f} Mpt/s "
              f"({asyn.mpoints_per_s / host.mpoints_per_s:.2f}x host, "
              f"+{(asyn.mpoints_per_s / sync.mpoints_per_s - 1) * 100:.0f}% vs sync)")

    print("\n== barrier vs dependence-based exchange (4 ranks) ==")
    for gz, label in [(2048, "deep slabs (low halo ratio)"),
                      (160, "thin slabs (high halo ratio)")]:
        out = {}
        for exchange in ("barrier", "dependence"):
            hs = HStreams(platform=make_platform("HSW", 4), backend="sim",
                          trace=False)
            r = run_rtm(hs, grid=(gz, 512, 512), steps=steps, nranks=4,
                        scheme="async", exchange=exchange)
            out[exchange] = r
        adv = out["dependence"].mpoints_per_s / out["barrier"].mpoints_per_s
        print(f"{label:32s}: halo/interior={out['barrier'].halo_ratio:.3f}, "
              f"dependence-based is {adv:.2f}x the barrier scheme")


if __name__ == "__main__":
    validate_numerics()
    capture_and_replay()
    performance()
