#!/usr/bin/env python3
"""Hetero matrix multiply across the host and multiple cards (Fig. 4/6).

Demonstrates the paper's headline application: A broadcast tile by tile,
B in column panels, C panels owned per domain, transfers pipelined under
compute — and the load-balancing knob that matters on a weak host.

First validates the distributed algorithm numerically on the thread
backend (the answer is really computed through streams and transfers),
then sweeps platform configurations on the sim backend.

Run:  python examples/matmul_hetero.py
"""

import numpy as np

from repro import HStreams, make_platform
from repro.linalg import hetero_matmul


def validate() -> None:
    print("== numerics on the thread backend (HSW + 2 simulated cards) ==")
    hs = HStreams(platform=make_platform("HSW", 2), backend="thread", trace=False)
    rng = np.random.default_rng(7)
    n = 120
    A, B = rng.random((n, n)), rng.random((n, n))
    res = hetero_matmul(hs, n, tile=40, data=(A, B), streams_per_domain=2)
    err = np.abs(res.C - A @ B).max()
    print(f"n={n}, tile=40: C panels owned {res.assignment}, max |err| = {err:.2e}")
    assert err < 1e-10
    hs.fini()


def sweep() -> None:
    print("\n== virtual performance on the simulated Fig. 2 machines ==")
    n = 16000
    configs = [
        ("HSW + 2 KNC", "HSW", 2, True, True),
        ("HSW + 1 KNC", "HSW", 1, True, True),
        ("1 KNC (offload only)", "HSW", 1, False, True),
        ("IVB + 2 KNC, load balanced", "IVB", 2, True, True),
        ("IVB + 2 KNC, naive split", "IVB", 2, True, False),
    ]
    for label, host, ncards, use_host, lb in configs:
        hs = HStreams(platform=make_platform(host, ncards), backend="sim", trace=False)
        res = hetero_matmul(hs, n, tile=2000, use_host=use_host, load_balance=lb)
        print(f"{label:28s}: {res.gflops:7.0f} GFl/s "
              f"(tile columns per domain: {res.assignment})")


if __name__ == "__main__":
    validate()
    sweep()
