#!/usr/bin/env python3
"""OmpSs on top of hStreams: sequential tasks, parallel execution (§IV).

The application below is a plain sequential loop of task invocations
with ``in``/``out``/``inout`` data clauses. The OmpSs runtime detects
the dependences, allocates card storage, inserts transfers, and spreads
independent tasks over its hStreams streams. The same program then runs
over the CUDA-Streams layer, where OmpSs must enforce every dependence
explicitly from the host — the paper's 1.45x gap.

Run:  python examples/ompss_dataflow.py
"""

import numpy as np

from repro import make_platform
from repro.ompss import OmpSsRuntime


def functional_demo() -> None:
    print("== dataflow correctness on the thread backend ==")
    rt = OmpSsRuntime(model="hstreams", platform=make_platform("HSW", 1),
                      backend="thread", trace=False)
    rt.register_kernel("init", fn=lambda x, v: x.fill(v))
    rt.register_kernel("add", fn=lambda z, x, y: np.add(x, y, out=z))
    rt.register_kernel("scale", fn=lambda x, f: np.multiply(x, f, out=x))

    a, b, c = np.zeros(16), np.zeros(16), np.zeros(16)
    # A sequential program; the runtime extracts the parallelism.
    rt.task("init", args=(a, 2.0), outs=[a])
    rt.task("init", args=(b, 3.0), outs=[b])          # independent of the first
    rt.task("add", args=(c, a, b), ins=[a, b], outs=[c])
    rt.task("scale", args=(c, 10.0), inouts=[c])
    rt.taskwait()
    print(f"(2 + 3) * 10 = {c[0]:.0f}  "
          f"[{rt.stats['tasks']} tasks, {rt.stats['transfers']} transfers, "
          f"{rt.stats['dep_edges']} dependence edges]")
    assert np.allclose(c, 50.0)
    rt.fini()


def layer_comparison(n: int = 4096, tiles: int = 4) -> None:
    from repro.ompss.matmul import ompss_matmul

    print(f"\n== the same tiled matmul over both plumbing layers "
          f"({n}^2, {tiles}x{tiles} tiles) ==")
    results = {m: ompss_matmul(m, n, tiles) for m in ("hstreams", "cuda")}
    for model, r in results.items():
        print(f"OmpSs over {model:8s}: {r.elapsed_s * 1e3:7.1f} ms "
              f"({r.gflops:.0f} GFl/s, {r.tasks} tasks, "
              f"{r.dep_edges} dependence edges)")
    adv = results["cuda"].elapsed_s / results["hstreams"].elapsed_s
    print(f"hStreams layer advantage: {adv:.2f}x (paper: 1.45x at 4K)")


if __name__ == "__main__":
    functional_demo()
    layer_comparison()
