#!/usr/bin/env python3
"""Quickstart: the hStreams programming model in one page.

Creates a runtime on the default simulated platform (a Haswell host plus
one KNC card), offloads a round-trip computation through a stream with
the **thread backend** (real execution: the kernel really runs, the
transfers really copy bytes between per-domain address spaces), then
replays the same pattern on the **sim backend** to show virtual-time
pipelining and the schedule trace.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HStreams, OperandMode, XferDirection, make_platform
from repro.sim.kernels import dgemm


def real_execution() -> None:
    print("== thread backend: real execution ==")
    hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)

    # Kernels are registered by name; the sink invokes them with operand
    # arguments resolved to numpy views in its own address space.
    hs.register_kernel("axpy", fn=lambda y, x, a: np.add(y, a * x, out=y))

    # A stream whose sink is the card (domain 1), 30 of its 61 cores.
    stream = hs.stream_create(domain=1, ncores=30)

    x = np.arange(8.0)
    y = np.ones(8)
    bx, by = hs.wrap(x), hs.wrap(y)

    hs.enqueue_xfer(stream, bx)                       # host -> card
    hs.enqueue_xfer(stream, by)
    # x is read-only: declaring IN (the default is INOUT) keeps the
    # dependence footprint honest - an INOUT x would count as a sink
    # write that never returns home (the analyzer's missing-d2h).
    hs.enqueue_compute(stream, "axpy",
                       args=(by.tensor((8,)),
                             bx.tensor((8,), mode=OperandMode.IN), 10.0))
    hs.enqueue_xfer(stream, by, XferDirection.SINK_TO_SRC)  # card -> host
    hs.thread_synchronize()

    print(f"y = 1 + 10*x -> {y}")
    assert np.allclose(y, 1 + 10 * np.arange(8.0))
    hs.fini()


def virtual_time() -> None:
    print("\n== sim backend: virtual-time pipelining ==")
    hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
    hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
    stream = hs.stream_create(domain=1, ncores=61)

    # Eight tiles: each transfer rides under the previous tile's compute
    # because the actions' operands don't overlap (out-of-order execution
    # under the FIFO semantic).
    tiles = [hs.buffer_create(nbytes=8 * 2000 * 2000, domains=[1]) for _ in range(8)]
    t0 = hs.elapsed()
    for b in tiles:
        hs.enqueue_xfer(stream, b)
        hs.enqueue_compute(stream, "gemm", args=(2000, 2000, 2000, b.all_inout()))
    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0

    gflops = 8 * 2 * 2000**3 / elapsed / 1e9
    print(f"8 pipelined 2000^3 DGEMM tiles: {elapsed * 1e3:.1f} ms virtual "
          f"({gflops:.0f} GFl/s on the simulated KNC)")
    print("\nschedule (" + "# compute, = transfer):")
    print(hs.tracer.gantt(width=76))


if __name__ == "__main__":
    real_execution()
    virtual_time()
