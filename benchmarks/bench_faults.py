"""FAULTS — failure-semantics matrix under deterministic fault injection.

Not a paper figure: the reference hStreams library returns
``HSTR_RESULT_*`` codes from every call and the paper's applications
(Abaqus, RTM) run for hours, so swallowed errors and hung waits are
production concerns. This benchmark drives the runtime's failure layer
through a seeded :class:`~repro.core.faults.FaultPlan` matrix —
{transient, permanent} faults x {poison, fail_fast, retry} policies x
{thread, sim} backends — and checks the observable contract:

* a failed producer's transitive dependents are CANCELLED and their
  kernels never execute (poison);
* a transient fault under ``failure_policy="retry"`` recovers with
  capped exponential backoff and the program's numeric result is
  correct;
* both backends report **identical** action-outcome metrics for the
  same plan and policy;
* no configuration hangs: every wait returns (with the pending error)
  even when the faulted action sits behind the waited one;
* replay admission is failure-transparent: every cell re-run with the
  pipeline admitted from a captured template (fault plan attached after
  capture) reports the same outcomes, cell for cell.

The CI fault-matrix job runs ``python bench_faults.py --smoke``, once
as-is and once with ``REPRO_BACKEND=process`` in the environment, which
upgrades every ``backend="thread"`` cell to the multiprocess
shared-memory backend. The stage kernel is a module-level function
precisely so that run is honest: picklable kernels execute in the
domain worker processes (fault injection stays host-side either way),
and the matrix must hold cell-for-cell there too.
"""

import sys

from conftest import run_once

from repro import (
    FaultPlan,
    FaultSpec,
    HStreams,
    InjectedFault,
    make_platform,
)
from repro.sim.kernels import KernelCost

BACKENDS = ("thread", "sim")
POLICIES = ("poison", "fail_fast", "retry")
FAULTS = ("none", "transient", "permanent")

#: Chain length of the pipeline each cell runs (fault hits stage 2).
STAGES = 4


def _stage_fn(x):
    # Module-level (picklable) so the process backend runs stages in its
    # domain workers instead of falling back host-side.
    x += 1.0


def _runtime(backend, policy):
    hs = HStreams(platform=make_platform("HSW", 1), backend=backend,
                  trace=False, failure_policy=policy)
    for i in range(STAGES):
        hs.register_kernel(
            f"stage{i}",
            fn=_stage_fn,
            cost_fn=lambda x: KernelCost(kernel="stage", flops=1e6, size=8),
        )
    return hs


def _plan(fault):
    if fault == "none":
        return None
    return FaultPlan(
        specs=(FaultSpec(kind="compute", kernel="stage1", nth=1, times=2,
                         transient=(fault == "transient")),),
        seed=17,
    )


def run_cell(backend, policy, fault):
    """One pipeline run; returns the observable outcome of the cell."""
    from repro.core.faults import inject_faults

    hs = _runtime(backend, policy)
    injector = None
    plan = _plan(fault)
    if plan is not None:
        injector = inject_faults(hs, plan)
    s = hs.stream_create(domain=1, ncores=4)
    buf = hs.buffer_create(nbytes=64)
    op = buf.all_inout()
    error = None
    try:
        hs.enqueue_xfer(s, buf)
        for i in range(STAGES):
            hs.enqueue_compute(s, f"stage{i}", args=(op,))
        hs.thread_synchronize()
    except InjectedFault as exc:
        error = exc
    m = hs.metrics()["actions"]
    out = {
        "error": type(error).__name__ if error else None,
        "completed": m["completed"],
        "failed": m["failed"],
        "cancelled": m["cancelled"],
        "retried": m["retried"],
        "injected": injector.injected if injector else 0,
    }
    if error is not None:
        hs.clear_failure()
    hs.fini()
    return out


def run_cell_replayed(backend, policy, fault):
    """The same cell admitted by replaying a warm-captured template.

    Captures the pipeline fault-free and syncs, then attaches the fault
    plan and replays once. Outcomes are metric *deltas* over the warm
    run, so a cell compares directly with :func:`run_cell`: a fault
    landing on a replayed action must take the identical path through
    the failure layer — same retries, same transitive cancellation,
    same raised-not-hung waits — as one landing on a re-enqueued
    action.
    """
    from repro.core.faults import inject_faults

    hs = _runtime(backend, policy)
    s = hs.stream_create(domain=1, ncores=4)
    buf = hs.buffer_create(nbytes=64)
    op = buf.all_inout()
    with hs.capture_graph() as g:
        hs.enqueue_xfer(s, buf)
        for i in range(STAGES):
            hs.enqueue_compute(s, f"stage{i}", args=(op,))
    hs.thread_synchronize()
    base = dict(hs.metrics()["actions"])
    injector = None
    plan = _plan(fault)
    if plan is not None:
        injector = inject_faults(hs, plan)
    error = None
    try:
        hs.replay(g)
        hs.thread_synchronize()
    except InjectedFault as exc:
        error = exc
    m = hs.metrics()["actions"]
    out = {
        "error": type(error).__name__ if error else None,
        "completed": m["completed"] - base["completed"],
        "failed": m["failed"] - base["failed"],
        "cancelled": m["cancelled"] - base["cancelled"],
        "retried": m["retried"] - base["retried"],
        "injected": injector.injected if injector else 0,
    }
    if error is not None:
        hs.clear_failure()
    hs.fini()
    return out


def run_isolation_cell(backend, policy):
    """Cross-tenant cell: a fault scoped to tenant A's namespace.

    Two namespaced streams share the runtime; the plan arms only
    ``namespace="tA"``. The contract — tenant A's pipeline fails and
    (under ``fail_fast``) is swept, tenant B's completes untouched, B's
    ledger stays empty, and B's *scoped* barrier never sees A's error —
    is the core guarantee the multi-tenant service tier builds on.
    """
    from repro.core.faults import inject_faults

    hs = _runtime(backend, policy)
    inject_faults(hs, FaultPlan(
        specs=(FaultSpec(kind="compute", kernel="stage1", namespace="tA",
                         nth=1, times=2),),
        seed=17,
    ))
    sa = hs.stream_create(domain=1, ncores=2, namespace="tA")
    sb = hs.stream_create(domain=1, ncores=2, namespace="tB")
    buf_a = hs.buffer_create(nbytes=64)
    buf_b = hs.buffer_create(nbytes=64)
    op_a = buf_a.all_inout()
    op_b = buf_b.all_inout()
    for s, buf, op in ((sa, buf_a, op_a), (sb, buf_b, op_b)):
        hs.enqueue_xfer(s, buf)
        for i in range(STAGES):
            hs.enqueue_compute(s, f"stage{i}", args=(op,))
    # B's scoped barrier is blind to A's failure: it must return clean.
    hs.stream_synchronize(sb)
    error = None
    try:
        hs.stream_synchronize(sa)
    except InjectedFault as exc:
        error = exc
    ns = hs.metrics()["namespaces"]
    out = {
        "error": type(error).__name__ if error else None,
        "tA": {k: ns["tA"][k] for k in ("completed", "failed", "cancelled")},
        "tB": {k: ns["tB"][k] for k in ("completed", "failed", "cancelled")},
        "ledger_a": len(hs.failure_errors("tA")),
        "ledger_b": len(hs.failure_errors("tB")),
    }
    hs.clear_failure("tA")
    hs.fini()
    return out


def run_isolation_matrix():
    return {
        (backend, policy): run_isolation_cell(backend, policy)
        for backend in BACKENDS
        for policy in ("poison", "fail_fast")
    }


def check_isolation_matrix(cells) -> None:
    total = STAGES + 1  # pipeline plus its H2D transfer
    for (backend, policy), cell in cells.items():
        key = (backend, policy, cell)
        assert cell["error"] == "InjectedFault", key
        assert cell["ledger_a"] == 1 and cell["ledger_b"] == 0, key
        # A: xfer + stage0 complete, stage1 fails, the rest cancel
        # (operand poison under both policies; fail_fast sweeps too).
        assert cell["tA"]["failed"] == 1, key
        assert cell["tA"]["completed"] == 2, key
        assert cell["tA"]["cancelled"] == STAGES - 2, key
        # B: untouched, whatever happened to A.
        assert cell["tB"] == {
            "completed": total, "failed": 0, "cancelled": 0,
        }, key
    for policy in ("poison", "fail_fast"):
        t = cells[("thread", policy)]
        s = cells[("sim", policy)]
        assert t == s, (policy, t, s)


def run_matrix(replayed=False):
    """Every cell of the fault matrix, keyed (backend, policy, fault)."""
    cell = run_cell_replayed if replayed else run_cell
    return {
        (backend, policy, fault): cell(backend, policy, fault)
        for backend in BACKENDS
        for policy in POLICIES
        for fault in FAULTS
    }


def check_matrix(cells) -> None:
    total = STAGES + 1  # the pipeline plus its H2D transfer
    for backend in BACKENDS:
        clean = cells[(backend, "poison", "none")]
        assert clean["error"] is None and clean["completed"] == total, clean

        # Poison: stage1 fails twice (times=2 outlives the single
        # non-retrying attempt), downstream stages cancel, upstream work
        # completes, and the wait raised instead of hanging.
        for policy in ("poison", "fail_fast"):
            cell = cells[(backend, policy, "transient")]
            assert cell["error"] == "InjectedFault", (policy, cell)
            assert cell["failed"] == 1, (policy, cell)
            assert cell["cancelled"] == STAGES - 2, (policy, cell)
            assert cell["completed"] == 2, (policy, cell)  # xfer + stage0
            assert cell["retried"] == 0, (policy, cell)
            assert cell["injected"] == 1, (policy, cell)  # single attempt

        # Retry: the transient fault burns its two armed attempts, the
        # third dispatch succeeds, nothing fails or cancels.
        cell = cells[(backend, "retry", "transient")]
        assert cell["error"] is None, cell
        assert cell["completed"] == total, cell
        assert cell["retried"] == 2, cell
        assert cell["injected"] == 2, cell

        # A permanent fault is not retried even under retry policy.
        cell = cells[(backend, "retry", "permanent")]
        assert cell["error"] == "InjectedFault", cell
        assert cell["failed"] == 1 and cell["retried"] == 0, cell

    # Backend parity: identical observable outcomes, cell for cell.
    for policy in POLICIES:
        for fault in FAULTS:
            t = cells[("thread", policy, fault)]
            s = cells[("sim", policy, fault)]
            assert t == s, (policy, fault, t, s)


def check_replay_parity(cells, replayed) -> None:
    """Replay admission changes nothing observable: cell for cell, a
    fault hitting a replayed clone behaves as it does re-enqueued."""
    for key, cell in cells.items():
        assert replayed[key] == cell, (key, cell, replayed[key])


def render(cells) -> str:
    header = f"{'backend':>7} {'policy':>9} {'fault':>9} | " \
             f"{'done':>4} {'fail':>4} {'canc':>4} {'retry':>5} {'raised':>13}"
    lines = ["FAULT MATRIX: action outcomes per cell", header,
             "-" * len(header)]
    for (backend, policy, fault), c in sorted(cells.items()):
        lines.append(
            f"{backend:>7} {policy:>9} {fault:>9} | "
            f"{c['completed']:>4} {c['failed']:>4} {c['cancelled']:>4} "
            f"{c['retried']:>5} {c['error'] or '-':>13}"
        )
    return "\n".join(lines)


def smoke_check() -> None:
    cells = run_matrix()
    check_matrix(cells)
    replayed = run_matrix(replayed=True)
    check_replay_parity(cells, replayed)
    isolation = run_isolation_matrix()
    check_isolation_matrix(isolation)
    print(render(cells))
    retries = cells[("thread", "retry", "transient")]["retried"]
    print(f"[smoke] fault matrix OK: {len(cells)} cells, backend parity "
          f"holds, replayed-template parity holds, transient fault "
          f"recovered after {retries} retries")
    print(f"[smoke] tenant isolation OK: {len(isolation)} cells, tenant "
          f"A's injected failure never reached tenant B's ledger")


def test_fault_matrix(benchmark, capsys):
    cells = run_once(benchmark, run_matrix)
    check_matrix(cells)
    check_replay_parity(cells, run_matrix(replayed=True))
    check_isolation_matrix(run_isolation_matrix())
    with capsys.disabled():
        print()
        print(render(cells))


if __name__ == "__main__":
    # --smoke (the CI entry point) and the bare invocation coincide:
    # the matrix *is* the smoke test.
    if len(sys.argv) > 1 and sys.argv[1] not in ("--smoke",):
        sys.exit(f"usage: {sys.argv[0]} [--smoke]")
    smoke_check()
