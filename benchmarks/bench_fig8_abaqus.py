"""FIG8 — Abaqus/Standard speedups from adding 2 MIC cards.

Runs the eight customer-representative workloads through the sparse
LDL^T solver on IVB and HSW hosts, Xeon-only vs Xeon + 2 KNC, and
derives solver-kernel and whole-application speedups (the application
side scales the non-solver fraction untouched, per workload).

Paper values: IVB up to 2.61x (solver) / 1.99x (app); HSW up to 1.45x /
1.22x — lower "since the HSW peak compute performance is approximately
twice the Ivy Bridge".

Shape claims verified: every workload speeds up on both hosts; IVB
beats HSW per workload; app speedups track solver dominance; the
solver >= app ordering holds everywhere. Our maxima overshoot the
paper's HSW column (~2.2x vs 1.45x) because the front model has no
elimination-tree critical path — recorded in EXPERIMENTS.md.
"""

from conftest import run_once

from repro import HStreams, make_platform
from repro.apps.abaqus import WORKLOADS, solve_workload
from repro.bench.reporting import format_table

PAPER_MAX = {"IVB": (2.61, 1.99), "HSW": (1.45, 1.22)}


def run_suite():
    results = {}
    for host in ("IVB", "HSW"):
        for name, w in WORKLOADS.items():
            hs0 = HStreams(platform=make_platform(host, 2), backend="sim", trace=False)
            base = solve_workload(hs0, w, use_cards=False)
            hs1 = HStreams(platform=make_platform(host, 2), backend="sim", trace=False)
            het = solve_workload(hs1, w, use_cards=True)
            sp_solver = base.elapsed_s / het.elapsed_s
            f = w.solver_fraction
            sp_app = 1.0 / ((1.0 - f) + f / sp_solver)
            results[(host, name)] = (sp_solver, sp_app, w.symmetric)
    return results


def test_fig8_abaqus_speedups(benchmark, capsys):
    results = run_once(benchmark, run_suite)
    rows = []
    for name in WORKLOADS:
        ivb_s, ivb_a, sym = results[("IVB", name)]
        hsw_s, hsw_a, _ = results[("HSW", name)]
        rows.append(
            [name, "sym" if sym else "unsym",
             f"{ivb_s:.2f}x", f"{ivb_a:.2f}x", f"{hsw_s:.2f}x", f"{hsw_a:.2f}x"]
        )
    with capsys.disabled():
        print()
        print("== FIG 8: speedups adding 2 KNC (paper maxima: IVB 2.61/1.99, HSW 1.45/1.22) ==")
        print(format_table(
            ["workload", "kind", "IVB solver", "IVB app", "HSW solver", "HSW app"],
            rows,
        ))

    for name in WORKLOADS:
        ivb_s, ivb_a, _ = results[("IVB", name)]
        hsw_s, hsw_a, _ = results[("HSW", name)]
        # Everything speeds up; solver >= app; IVB > HSW per workload.
        assert ivb_s > 1.0 and hsw_s > 1.0
        assert ivb_s >= ivb_a and hsw_s >= hsw_a
        assert ivb_s > hsw_s and ivb_a > hsw_a
    # The maxima land in plausible ranges of the paper's bars.
    ivb_max = max(results[("IVB", n)][0] for n in WORKLOADS)
    hsw_max = max(results[("HSW", n)][0] for n in WORKLOADS)
    assert 2.0 < ivb_max < 3.6  # paper 2.61
    assert 1.3 < hsw_max < 2.5  # paper 1.45 (we overshoot, see docstring)
    # App speedups spread with solver dominance (A most dominant).
    assert results[("IVB", "A")][1] == max(results[("IVB", n)][1] for n in WORKLOADS)
