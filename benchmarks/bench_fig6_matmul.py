"""FIG6 — hetero matrix-multiply performance.

Sweeps DP matrix size for the paper's eight platform configurations and
compares the curve-end rates against Fig. 6's labels:

    HSW+2KNC 2599 | HSW+1KNC 1622 | 1KNC 982 | HSW native 902
    IVB+2KNC lb 1878 | IVB+2KNC no-lb 1192 | IVB+1KNC 1165 | IVB 475

Shape claims verified: monotone ramp-up; ordering of all eight curves;
>80 % two-card scaling efficiency at large n; the IVB load-balancing gap
(paper 1.58x); load balancing immaterial on HSW.
"""

from conftest import run_once

from repro import HStreams, make_platform
from repro.bench.reporting import ComparisonTable, Series, ascii_plot
from repro.linalg import hetero_matmul
from repro.sim.kernels import dgemm, time_on
from repro.sim.platforms import HSW, IVB

# 24000 is the largest size whose full tile set fits the 16 GB card in
# the single-card offload configuration (3 x 24000^2 x 8B = 13.8 GB);
# the reference code cycles its working set to go further, which this
# sweep does not model.
SIZES = [4000, 8000, 12000, 16000, 20000, 24000]

CONFIGS = [
    # label, paper curve-end GF/s, host, ncards, use_host, load_balance
    ("HSW + 2 KNC", 2599.0, "HSW", 2, True, True),
    ("IVB + 2 KNC, with load bal", 1878.0, "IVB", 2, True, True),
    ("HSW + 1 KNC", 1622.0, "HSW", 1, True, True),
    ("IVB + 2 KNC, no load bal", 1192.0, "IVB", 2, True, False),
    ("IVB + 1 KNC, with load bal", 1165.0, "IVB", 1, True, True),
    ("1 KNC (offload)", 982.0, "HSW", 1, False, True),
    ("HSW native (MKL)", 902.0, "HSW", 0, True, True),
    ("IVB native (MKL)", 475.0, "IVB", 0, True, True),
]


def native_rate(device, n):
    """Host 'MKL' rate: one untiled DGEMM call."""
    cost = dgemm(n, n, n)
    return cost.flops / time_on(device, cost) / 1e9


def run_sweep():
    curves = {}
    for label, paper, host, ncards, use_host, lb in CONFIGS:
        s = Series(label)
        for n in SIZES:
            if ncards == 0:
                dev = HSW if host == "HSW" else IVB
                s.add(n, native_rate(dev, n))
                continue
            hs = HStreams(platform=make_platform(host, ncards), backend="sim",
                          trace=False)
            # Tiling degree is tuned per configuration, as in the paper's
            # companion analysis [32]: the single-card offload favours
            # larger tiles (fewer, closer-to-asymptote DGEMMs), hetero
            # runs favour more tiles for balance across domains.
            tile = max(n // 8 if not use_host else n // 12, 1000)
            res = hetero_matmul(hs, n, tile=tile,
                                use_host=use_host, load_balance=lb)
            s.add(n, res.gflops)
        curves[label] = (paper, s)
    return curves


def run_smoke(eviction_policy: str, transfer_elision: bool = True,
              n: int = 4000, tile: int = 1000):
    """One tiny hetero-matmul run; returns its memory + transfer stats.

    The CI smoke job runs this at small n on both eviction policies to
    catch memory-subsystem regressions without paying for the sweep.
    """
    hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False,
                  eviction_policy=eviction_policy,
                  transfer_elision=transfer_elision)
    res = hetero_matmul(hs, n, tile=tile, use_host=True, load_balance=True)
    m = hs.metrics()
    return {
        "gflops": res.gflops,
        "memory": m["memory"],
        "xfer_exec_s": m["by_kind"]["xfer"]["exec_s"],
    }


def smoke_check() -> None:
    """Assert the memory subsystem's observable wins on a tiny run."""
    for policy in ("manual", "lru"):
        out = run_smoke(policy)
        mem = out["memory"]
        assert mem["eviction_policy"] == policy, mem
        # The tiled schedule re-sends broadcast tiles: elision must fire.
        assert mem["elided_transfers"] > 0, mem
        assert mem["elided_bytes"] > 0, mem
        print(f"[smoke] policy={policy}: {mem['elided_transfers']} transfers "
              f"elided ({mem['elided_bytes'] / 1e9:.2f} GB), "
              f"{out['gflops']:.0f} GFl/s, "
              f"xfer {out['xfer_exec_s']:.3f} virtual s")
    # Elision is a measured win, not bookkeeping: the same schedule with
    # elision off spends strictly more virtual time on transfers.
    on = run_smoke("manual", transfer_elision=True)
    off = run_smoke("manual", transfer_elision=False)
    assert on["xfer_exec_s"] < off["xfer_exec_s"], (on, off)
    print(f"[smoke] transfer seconds {on['xfer_exec_s']:.3f} (elision on) vs "
          f"{off['xfer_exec_s']:.3f} (off)")


def test_fig6_matmul(benchmark, capsys):
    curves = run_once(benchmark, run_sweep)
    table = ComparisonTable("FIG 6: hetero matmul, curve-end GFl/s", unit="GFl/s")
    for label, paper, *_ in CONFIGS:
        table.add(label, paper, curves[label][1].final)
    with capsys.disabled():
        print()
        print(table.render())
        print()
        print(ascii_plot([s for _, s in curves.values()], title="GFl/s vs n"))

    final = {label: s.final for label, (_p, s) in curves.items()}
    # Every curve ends within 20% of the paper's label.
    assert table.max_deviation() < 0.20
    # Full ordering of the eight configurations is preserved.
    order = [label for label, *_ in CONFIGS]
    measured_order = sorted(final, key=lambda k: -final[k])
    assert measured_order == order
    # Ramp-up: every hetero curve grows from small to large n.
    for _label, (_p, s) in curves.items():
        assert s.y[-1] > s.y[0]
    # Fig. 6 call-outs.
    lb_gap = final["IVB + 2 KNC, with load bal"] / final["IVB + 2 KNC, no load bal"]
    assert 1.25 < lb_gap < 1.8  # paper: 1.58x
    eff2 = final["HSW + 2 KNC"] / (902.0 + 2 * 982.0)
    assert eff2 > 0.80  # paper: >85% scaling efficiency
    assert final["HSW + 2 KNC"] > 2.0 * final["HSW native (MKL)"]  # "2x over a host"


if __name__ == "__main__":
    smoke_check()
