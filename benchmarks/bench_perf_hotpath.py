#!/usr/bin/env python
"""Hot-path perf microbenchmarks → BENCH_perf.json (+ CI regression gate).

Thin CLI over :mod:`repro.bench.perf`: runs the enqueue/dispatch suite,
writes ``BENCH_perf.json`` (schema: bench, metric, value, unit, n,
backend), and optionally gates deterministic counters against a
committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py \
        --check benchmarks/baselines/BENCH_perf.json

Refresh the baseline after an intentional change with
``--write-baseline`` (then commit the diff)::

    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py --write-baseline

Wall-clock rows are informational only; regressions are judged solely on
deterministic counters (scan candidates/comparisons, allocations,
unelided transfers), so the gate is stable on shared CI runners.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import perf  # noqa: E402

BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_perf.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--quick", action="store_true", help="CI-smoke sizes")
    parser.add_argument(
        "--json", default="BENCH_perf.json", help="output path ('-' for stdout)"
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=f"gate gated counters against a baseline (e.g. {BASELINE})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=perf.DEFAULT_TOLERANCE,
        help="relative allowance for gated counters",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"also refresh the committed baseline at {BASELINE}",
    )
    args = parser.parse_args(argv)

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    forwarded += ["--json", args.json]
    if args.check:
        forwarded += ["--check", args.check, "--tolerance", str(args.tolerance)]
    status = perf.main(forwarded)

    if args.write_baseline and args.json not in ("-", str(BASELINE)):
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(Path(args.json).read_text())
        print(f"refreshed baseline {BASELINE}")
    return status


if __name__ == "__main__":
    sys.exit(main())
