"""RTM — the Petrobras reverse-time-migration evaluation.

Paper claims reproduced:

* asynchronous pipelining gains 3-10 % over synchronous offload;
* optimized code: 1.52x speedup from one KNC over the Haswell host, and
  6.02x for 4 ranks on 4 MICs;
* unoptimized code: lower speedups (1.13x-4.53x) because the scalar
  kernels hurt the 512-bit card far more than the host;
* the §V scheme analysis: the dependence-based exchange matches the
  FIFO-barrier scheme while bulk work dominates, and pulls ahead as the
  halo/interior ratio grows (small subdomains / high-order stencils).
"""

from conftest import run_once

from repro import HStreams, make_platform
from repro.apps.rtm import run_rtm
from repro.bench.reporting import format_table

GRID = (2048, 512, 512)
STEPS = 16


def _run(ncards, **kw):
    hs = HStreams(platform=make_platform("HSW", max(ncards, 1)), backend="sim",
                  trace=False)
    return run_rtm(hs, grid=GRID, steps=STEPS, **kw)


def run_all():
    out = {}
    for opt in (True, False):
        host = _run(1, scheme="host", optimized=opt)
        out[("host", opt)] = host.mpoints_per_s
        for nranks in (1, 2, 4):
            sync = _run(nranks, nranks=nranks, scheme="sync", optimized=opt)
            asyn = _run(nranks, nranks=nranks, scheme="async", optimized=opt)
            out[("sync", opt, nranks)] = sync.mpoints_per_s
            out[("async", opt, nranks)] = asyn.mpoints_per_s
    # Scheme comparison at a high halo/interior ratio (thin slabs).
    thin = (160, 512, 512)
    for exchange in ("dependence", "barrier"):
        hs = HStreams(platform=make_platform("HSW", 4), backend="sim", trace=False)
        r = run_rtm(hs, grid=thin, steps=STEPS, nranks=4, scheme="async",
                    exchange=exchange)
        out[("thin", exchange)] = r.mpoints_per_s
        out[("thin", "ratio")] = r.halo_ratio
    return out


def test_rtm(benchmark, capsys):
    r = run_once(benchmark, run_all)
    rows = []
    for opt in (True, False):
        tag = "optimized" if opt else "unoptimized"
        for nranks in (1, 2, 4):
            asyn, sync = r[("async", opt, nranks)], r[("sync", opt, nranks)]
            host = r[("host", opt)]
            rows.append([
                f"{tag}, {nranks} rank(s)",
                f"{sync / host:.2f}x", f"{asyn / host:.2f}x",
                f"{(asyn / sync - 1) * 100:+.1f}%",
            ])
    with capsys.disabled():
        print()
        print("== RTM: speedup vs 1 HSW host (paper: opt 1.52x/6.02x, unopt 1.13x/4.53x; async gain 3-10%) ==")
        print(format_table(["configuration", "sync offload", "async pipelined", "async gain"], rows))
        print(f"\nthin-slab scheme comparison (halo/interior = {r[('thin', 'ratio')]:.2f}): "
              f"dependence {r[('thin', 'dependence')]:.0f} vs barrier "
              f"{r[('thin', 'barrier')]:.0f} Mpt/s "
              f"({r[('thin', 'dependence')] / r[('thin', 'barrier')]:.2f}x)")

    host_o = r[("host", True)]
    # Optimized: 1 card ~1.5x, 4 ranks ~6x (paper 1.52 / 6.02).
    assert 1.3 < r[("async", True, 1)] / host_o < 1.8
    assert 4.5 < r[("async", True, 4)] / host_o < 7.0
    # Async pipelining gains a single-digit-to-teens percentage.
    for nranks in (1, 2, 4):
        gain = r[("async", True, nranks)] / r[("sync", True, nranks)]
        assert 1.0 < gain < 1.25
    # Unoptimized code: speedups drop (paper 1.13x / 4.53x).
    host_u = r[("host", False)]
    assert r[("async", False, 1)] / host_u < r[("async", True, 1)] / host_o
    assert r[("async", False, 4)] / host_u < r[("async", True, 4)] / host_o
    # The dependence scheme wins once halos dominate.
    assert r[("thin", "dependence")] > 1.05 * r[("thin", "barrier")]
