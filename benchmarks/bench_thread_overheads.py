"""THREAD-OVH — measured wall-clock overheads of the *thread* backend.

DESIGN.md's honesty clause: a pure-Python runtime cannot claim the C
library's 20-30 us costs, so the real backend's own overheads are
measured and reported here (these are wall-clock numbers on whatever
machine runs the suite — the only non-deterministic benchmark in the
harness).

Measured quantities:

* enqueue latency — source-side cost of one ``enqueue_compute`` call;
* round-trip latency — enqueue + execute + synchronize of a no-op;
* pipeline throughput — actions/second through one stream;
* dependence analysis scaling — enqueue cost with a deep conflicting
  history vs an empty one;
* scheduling overheads — the scheduler's own lifecycle decomposition
  (dependence stall, dispatch stall, execution) from ``HStreams.metrics()``.
"""

import numpy as np

from repro import HStreams, make_platform


def make_runtime():
    hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
    hs.register_kernel("noop", fn=lambda *a: None)
    return hs


def test_enqueue_latency(benchmark):
    hs = make_runtime()
    s = hs.stream_create(domain=1, ncores=4)
    buf = hs.buffer_create(nbytes=64)
    op = buf.all_inout()

    def enqueue():
        hs.enqueue_compute(s, "noop", args=(op,))

    benchmark.pedantic(enqueue, rounds=200, iterations=1)
    hs.thread_synchronize()
    hs.fini()


def test_noop_round_trip(benchmark):
    hs = make_runtime()
    s = hs.stream_create(domain=1, ncores=4)
    buf = hs.buffer_create(nbytes=64)
    op = buf.all_inout()

    def round_trip():
        ev = hs.enqueue_compute(s, "noop", args=(op,))
        ev.wait()

    benchmark.pedantic(round_trip, rounds=100, iterations=1)
    hs.fini()


def test_pipeline_throughput(benchmark):
    hs = make_runtime()
    s = hs.stream_create(domain=1, ncores=4)
    bufs = [hs.buffer_create(nbytes=64) for _ in range(64)]

    def burst():
        for b in bufs:
            hs.enqueue_compute(s, "noop", args=(b.all_inout(),))
        hs.stream_synchronize(s)

    benchmark.pedantic(burst, rounds=20, iterations=1)
    hs.fini()


def test_transfer_round_trip(benchmark):
    hs = make_runtime()
    s = hs.stream_create(domain=1, ncores=4)
    data = np.zeros(1 << 16)  # 512 KB
    buf = hs.wrap(data)

    def xfer():
        ev = hs.enqueue_xfer(s, buf)
        ev.wait()

    benchmark.pedantic(xfer, rounds=100, iterations=1)
    hs.fini()


def test_dependence_scan_with_deep_history(benchmark):
    """Enqueue cost against a stream holding a long in-flight window."""
    hs = make_runtime()
    hs.register_kernel("slow", fn=lambda *a: __import__("time").sleep(0.2))
    s = hs.stream_create(domain=1, ncores=4)
    blocker = hs.buffer_create(nbytes=8)
    target = hs.buffer_create(nbytes=8 * 512)
    # One long-running head + many in-flight dependents.
    hs.enqueue_compute(s, "slow", args=(blocker.all_inout(),))
    for i in range(256):
        hs.enqueue_compute(
            s, "noop",
            args=(blocker.all_inout(), target.range(8 * (i % 512), 8)),
        )

    def enqueue_against_window():
        hs.enqueue_compute(s, "noop", args=(target.range(0, 8),))

    benchmark.pedantic(enqueue_against_window, rounds=100, iterations=1)
    hs.thread_synchronize()
    hs.fini()


def test_scheduling_overhead_decomposition(benchmark):
    """Drive a dependent chain and report the scheduler's lifecycle
    decomposition as benchmark extra_info: where time went between
    enqueue and completion (dependence stall vs dispatch stall vs
    execution), straight from ``HStreams.metrics()``."""
    hs = make_runtime()
    s = hs.stream_create(domain=1, ncores=4)
    buf = hs.buffer_create(nbytes=64)
    op = buf.all_inout()

    def chain():
        for _ in range(32):  # conflicting ops: a pure dependence chain
            hs.enqueue_compute(s, "noop", args=(op,))
        hs.stream_synchronize(s)

    benchmark.pedantic(chain, rounds=20, iterations=1)
    m = hs.metrics()
    done = max(m["actions"]["completed"], 1)
    benchmark.extra_info["dep_stall_us_per_action"] = (
        1e6 * m["lifecycle"]["dep_stall_s"] / done
    )
    benchmark.extra_info["dispatch_stall_us_per_action"] = (
        1e6 * m["lifecycle"]["dispatch_stall_s"] / done
    )
    benchmark.extra_info["exec_us_per_action"] = 1e6 * m["lifecycle"]["exec_s"] / done
    benchmark.extra_info["max_queue_depth"] = max(
        st["max_depth"] for st in m["streams"].values()
    )
    hs.fini()
