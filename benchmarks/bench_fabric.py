"""FABRIC — offload over fabric: the §III configuration the paper
exercised but could not report.

"We exercised hStreams running on top of COI between Xeon nodes, but
don't report results since this COI feature is still in development."
This reproduction's fabric layer is complete, so the numbers the paper
omitted are generated here: the same offload program against a PCIe
card vs fabric-attached remote Xeon nodes, the hetero matmul scaling
over a small fabric cluster, and — on the contention-aware cluster
fabric — planned collectives fanning one payload out to dozens of
nodes, where the pipelined multicast chain beats the serial
host-rooted loop by the §III overhead model's margin.

Runnable directly (``python bench_fabric.py``) for the CI smoke
subset, or through pytest-benchmark for the full tables.
"""

from conftest import run_once

from repro import HStreams
from repro.bench.reporting import format_table
from repro.bench.runner import sweep
from repro.linalg import hetero_matmul
from repro.sim.engine import Engine
from repro.sim.kernels import dgemm
from repro.sim.platforms import (
    make_cluster_platform,
    make_fabric_platform,
    make_platform,
)

#: Fraction of the aggregate model DGEMM rate the cluster matmul must
#: reach. Transfers, tiling remainders, and the serial host panel all
#: eat into the aggregate; the measured sweep lands around 0.66.
PARALLEL_EFFICIENCY_FLOOR = 0.60

#: The collectives fan-out: domains, payload, and the acceptance bar —
#: pipelined multicast in at most half the serial loop's virtual time.
COLLECTIVE_NODES = 32
COLLECTIVE_BYTES = 16 << 20
MULTICAST_VS_SERIAL_BAR = 0.5


def offload_time(platform, n=6000) -> float:
    hs = HStreams(platform=platform, backend="sim", trace=False)
    hs.register_kernel("gemm", cost_fn=lambda m, nn, k, *a: dgemm(m, nn, k))
    dom = hs.domain(1)
    s = hs.stream_create(domain=1, ncores=dom.device.total_cores)
    b = hs.buffer_create(nbytes=8 * n * n, domains=[1])
    t0 = hs.elapsed()
    hs.enqueue_xfer(s, b)
    hs.enqueue_compute(s, "gemm", args=(n, n, n, b.all_inout()))
    from repro import XferDirection

    hs.enqueue_xfer(s, b, XferDirection.SINK_TO_SRC)
    hs.thread_synchronize()
    return hs.elapsed() - t0


def cluster_peak_gflops(nnodes: int, tile: int) -> float:
    """Aggregate model DGEMM rate of host + nodes at the sweep's tile size.

    This is the derived bound the scaling assert compares against — the
    platform's own device curves, not a hard-coded rate.
    """
    plat = make_fabric_platform("HSW", nnodes=nnodes, node="HSW")
    return sum(dev.gflops("dgemm", tile) for dev in plat.devices)


def broadcast_time(
    schedule: str,
    nnodes: int = COLLECTIVE_NODES,
    nbytes: int = COLLECTIVE_BYTES,
):
    """(virtual time, fabric metrics) for one broadcast under ``schedule``.

    Instances are pre-created so the measurement is pure fabric time,
    not host-side allocation.
    """
    plat = make_cluster_platform(nnodes=nnodes)
    hs = HStreams(platform=plat, backend="sim", trace=False)
    doms = list(range(1, nnodes + 1))
    buf = hs.buffer_create(nbytes=nbytes, domains=doms, name="payload")
    hs.thread_synchronize()
    t0 = hs.elapsed()
    hs.broadcast(buf, doms, schedule=schedule)
    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    fabric = hs.metrics()["fabric"]
    hs.fini()
    return elapsed, fabric


def serial_model_time(nnodes: int, nbytes: int) -> float:
    """What the serial loop costs by construction: N payloads through
    the host root complex, one at a time."""
    plat = make_cluster_platform(nnodes=nnodes)
    link = plat.make_links(Engine())[1].h2d
    return nnodes * link.transfer_time(nbytes)


def run_collectives():
    out = {}
    for sched in ("serial", "ring", "tree", "multicast"):
        out[sched] = broadcast_time(sched)
    return out


def run_all():
    out = {
        "pcie-knc": offload_time(make_platform("HSW", 1)),
        "fabric-hsw": offload_time(make_fabric_platform("HSW", 1, node="HSW")),
        "fabric-ivb": offload_time(make_fabric_platform("HSW", 1, node="IVB")),
    }
    cluster = sweep(
        "matmul over fabric nodes",
        lambda nodes: hetero_matmul(
            HStreams(
                platform=make_fabric_platform("HSW", nnodes=int(nodes), node="HSW"),
                backend="sim", trace=False,
            ),
            16000, tile=2000, streams_per_domain=2,
        ).gflops,
        [1, 2, 3],
    )
    out["cluster"] = cluster
    out["collectives"] = run_collectives()
    return out


def smoke_check() -> None:
    """The CI subset: collectives on the contention-aware cluster fabric."""
    times = run_collectives()
    serial, _ = times["serial"]
    model = serial_model_time(COLLECTIVE_NODES, COLLECTIVE_BYTES)
    print(f"[smoke] broadcast {COLLECTIVE_BYTES >> 20} MiB to "
          f"{COLLECTIVE_NODES} nodes:")
    for sched, (t, fabric) in times.items():
        print(f"[smoke]   {sched:10s} {t * 1e3:8.2f} ms  "
              f"({t / serial:.2f}x serial, peer transfers "
              f"{fabric['peer_transfers']})")
    # The serial loop really serializes on the host bus: its time is the
    # platform model's N back-to-back payloads, not a magic constant.
    assert 0.95 * model < serial < 1.3 * model, (serial, model)
    # Serial pays for the bus in queueing, visible in the metrics.
    _, serial_fabric = times["serial"]
    assert serial_fabric["host_bus_wait_s"] > 0, serial_fabric
    assert serial_fabric["peer_transfers"] == 0, serial_fabric
    # Store-and-forward ring moves the same bytes hop by hop: no win.
    ring, _ = times["ring"]
    assert ring > 0.8 * serial, (ring, serial)
    # The pipelined schedules genuinely win in virtual time.
    tree, tree_fabric = times["tree"]
    multicast, multi_fabric = times["multicast"]
    assert multi_fabric["peer_transfers"] > 0, multi_fabric
    assert tree < 0.5 * serial, (tree, serial)
    assert multicast <= MULTICAST_VS_SERIAL_BAR * serial, (multicast, serial)
    print(f"[smoke] multicast/serial = {multicast / serial:.3f} "
          f"(bar {MULTICAST_VS_SERIAL_BAR})")


def test_fabric_offload(benchmark, capsys):
    r = run_once(benchmark, run_all)
    cluster = r["cluster"]
    coll = r["collectives"]
    with capsys.disabled():
        print()
        print("== FABRIC: one offload round trip, 6000^2 DGEMM ==")
        print(format_table(
            ["target", "round trip (ms)"],
            [["KNC card over PCIe", f"{r['pcie-knc'] * 1e3:.1f}"],
             ["remote HSW over fabric", f"{r['fabric-hsw'] * 1e3:.1f}"],
             ["remote IVB over fabric", f"{r['fabric-ivb'] * 1e3:.1f}"]],
        ))
        print("\n== FABRIC: hetero matmul across host + N remote HSW nodes ==")
        print(format_table(
            ["remote nodes", "GFl/s", "vs 1x HSW DGEMM"],
            [[int(x), f"{y:.0f}", f"{y / 902.0:.2f}x"]
             for x, y in zip(cluster.x, cluster.y)],
        ))
        serial = coll["serial"][0]
        print(f"\n== FABRIC: broadcast {COLLECTIVE_BYTES >> 20} MiB to "
              f"{COLLECTIVE_NODES} nodes ==")
        print(format_table(
            ["schedule", "virtual ms", "vs serial"],
            [[s, f"{t * 1e3:.2f}", f"{t / serial:.2f}x"]
             for s, (t, _f) in coll.items()],
        ))

    # The remote HSW computes slower than the KNC card on DGEMM but is
    # reachable through the identical program.
    assert r["fabric-hsw"] > r["pcie-knc"]
    assert r["fabric-ivb"] > r["fabric-hsw"]
    # Cluster scaling: each added node increases throughput, and the
    # largest cluster reaches the model-derived efficiency floor of its
    # own aggregate DGEMM rate (no magic constants).
    assert cluster.y[0] < cluster.y[1] < cluster.y[2]
    peak = cluster_peak_gflops(nnodes=3, tile=2000)
    assert cluster.y[2] > PARALLEL_EFFICIENCY_FLOOR * peak, (cluster.y[2], peak)
    # Collectives: pipelined multicast meets the acceptance bar.
    assert coll["multicast"][0] <= MULTICAST_VS_SERIAL_BAR * serial


if __name__ == "__main__":
    smoke_check()
