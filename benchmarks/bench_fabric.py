"""FABRIC — offload over fabric: the §III configuration the paper
exercised but could not report.

"We exercised hStreams running on top of COI between Xeon nodes, but
don't report results since this COI feature is still in development."
This reproduction's fabric layer is complete, so the numbers the paper
omitted are generated here: the same offload program against a PCIe
card vs fabric-attached remote Xeon nodes, and the hetero matmul
scaling over a small fabric cluster.
"""

from conftest import run_once

from repro import HStreams
from repro.bench.reporting import format_table
from repro.bench.runner import sweep
from repro.linalg import hetero_matmul
from repro.sim.kernels import dgemm
from repro.sim.platforms import make_fabric_platform, make_platform


def offload_time(platform, n=6000) -> float:
    hs = HStreams(platform=platform, backend="sim", trace=False)
    hs.register_kernel("gemm", cost_fn=lambda m, nn, k, *a: dgemm(m, nn, k))
    dom = hs.domain(1)
    s = hs.stream_create(domain=1, ncores=dom.device.total_cores)
    b = hs.buffer_create(nbytes=8 * n * n, domains=[1])
    t0 = hs.elapsed()
    hs.enqueue_xfer(s, b)
    hs.enqueue_compute(s, "gemm", args=(n, n, n, b.all_inout()))
    from repro import XferDirection

    hs.enqueue_xfer(s, b, XferDirection.SINK_TO_SRC)
    hs.thread_synchronize()
    return hs.elapsed() - t0


def run_all():
    out = {
        "pcie-knc": offload_time(make_platform("HSW", 1)),
        "fabric-hsw": offload_time(make_fabric_platform("HSW", 1, node="HSW")),
        "fabric-ivb": offload_time(make_fabric_platform("HSW", 1, node="IVB")),
    }
    cluster = sweep(
        "matmul over fabric nodes",
        lambda nodes: hetero_matmul(
            HStreams(
                platform=make_fabric_platform("HSW", nnodes=int(nodes), node="HSW"),
                backend="sim", trace=False,
            ),
            16000, tile=2000, streams_per_domain=2,
        ).gflops,
        [1, 2, 3],
    )
    out["cluster"] = cluster
    return out


def test_fabric_offload(benchmark, capsys):
    r = run_once(benchmark, run_all)
    cluster = r["cluster"]
    with capsys.disabled():
        print()
        print("== FABRIC: one offload round trip, 6000^2 DGEMM ==")
        print(format_table(
            ["target", "round trip (ms)"],
            [["KNC card over PCIe", f"{r['pcie-knc'] * 1e3:.1f}"],
             ["remote HSW over fabric", f"{r['fabric-hsw'] * 1e3:.1f}"],
             ["remote IVB over fabric", f"{r['fabric-ivb'] * 1e3:.1f}"]],
        ))
        print("\n== FABRIC: hetero matmul across host + N remote HSW nodes ==")
        print(format_table(
            ["remote nodes", "GFl/s", "vs 1x HSW DGEMM"],
            [[int(x), f"{y:.0f}", f"{y / 902.0:.2f}x"]
             for x, y in zip(cluster.x, cluster.y)],
        ))

    # The remote HSW computes slower than the KNC card on DGEMM but is
    # reachable through the identical program.
    assert r["fabric-hsw"] > r["pcie-knc"]
    assert r["fabric-ivb"] > r["fabric-hsw"]
    # Cluster scaling: each added node increases throughput.
    assert cluster.y[0] < cluster.y[1] < cluster.y[2]
    assert cluster.y[2] > 2.4 * 902.0  # 4 HSW-class domains working
