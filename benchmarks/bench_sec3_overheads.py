"""SEC3-OVH — the §III layering-overhead analysis.

Reproduced claims:

* hStreams adds 20-30 us of overhead to transfers under 128 KB;
* transfer overhead drops under 5 % for multi-MB payloads;
* COI overheads are negligible when the 2 MB buffer pool is enabled and
  significant when it is not (the OmpSs configuration);
* OmpSs induces 15-50 % overhead on top of hand-written hStreams for
  Cholesky at n = 4800-10000.
"""

from conftest import run_once

from repro import HStreams, RuntimeConfig, make_platform
from repro.bench.reporting import format_table
from repro.linalg import hetero_cholesky
from repro.ompss.cholesky import ompss_cholesky


def transfer_overhead_sweep():
    """Measured end-to-end transfer time vs raw wire time per size."""
    rows = []
    for nbytes in [4 << 10, 32 << 10, 128 << 10, 1 << 20, 4 << 20, 32 << 20]:
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=nbytes, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        total = hs.elapsed() - t0
        wire = nbytes / (hs.platform.pcie_bandwidth_gbs * 1e9) + hs.platform.pcie_latency_s
        rows.append((nbytes, total, total - wire, (total - wire) / total))
    return rows


def buffer_pool_effect():
    """Re-allocation cost with and without the COI 2 MB pool."""
    out = {}
    for pooled in (True, False):
        cfg = RuntimeConfig(use_buffer_pool=pooled)
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
        # Warm one allocation, release it, then measure 16 re-allocations.
        warm = hs.buffer_create(nbytes=2 << 20, domains=[1])
        hs.buffer_destroy(warm)
        t0 = hs.elapsed()
        bufs = []
        for _ in range(16):
            b = hs.buffer_create(nbytes=2 << 20, domains=[1])
            bufs.append(b)
            hs.buffer_destroy(b)
        out[pooled] = hs.elapsed() - t0
    return out


def ompss_overhead_sweep():
    """OmpSs-over-hStreams vs hand-written hStreams Cholesky."""
    rows = []
    for n in [6000, 8000, 10000]:
        o = ompss_cholesky(n, tile=max(n // 10, 1200))
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        h = hetero_cholesky(hs, n, tile=max(n // 20, 700), host_streams=4)
        rows.append((n, h.gflops, o.gflops, h.gflops / o.gflops - 1.0))
    return rows


def run_all():
    return {
        "transfer": transfer_overhead_sweep(),
        "pool": buffer_pool_effect(),
        "ompss": ompss_overhead_sweep(),
    }


def test_sec3_overheads(benchmark, capsys):
    res = run_once(benchmark, run_all)
    with capsys.disabled():
        print()
        print("== SEC3: transfer overhead vs size (paper: 20-30us small, <5% above ~MBs) ==")
        print(format_table(
            ["bytes", "total us", "overhead us", "overhead %"],
            [[f"{b:,}", f"{t * 1e6:.1f}", f"{o * 1e6:.1f}", f"{f * 100:.1f}%"]
             for b, t, o, f in res["transfer"]],
        ))
        pooled, unpooled = res["pool"][True], res["pool"][False]
        print(f"\n16x 2MB re-allocations: pooled {pooled * 1e3:.3f} ms, "
              f"no pool {unpooled * 1e3:.3f} ms "
              f"({unpooled / max(pooled, 1e-12):.0f}x)")
        print("\n== SEC3: OmpSs overhead on top of hStreams, Cholesky "
              "(paper: 15-50% at n=4800-10000) ==")
        print(format_table(
            ["n", "hStreams GF/s", "OmpSs GF/s", "overhead"],
            [[n, f"{h:.0f}", f"{o:.0f}", f"{ov * 100:.0f}%"]
             for n, h, o, ov in res["ompss"]],
        ))

    # Small transfers: fixed overhead in the paper's 20-30 us bracket.
    for nbytes, _total, ovh, _frac in res["transfer"]:
        if nbytes <= 128 << 10:
            assert 15e-6 < ovh < 35e-6
    # Large transfers: overhead fraction under 5 %.
    assert res["transfer"][-1][3] < 0.05
    # The buffer pool makes re-allocation ~free.
    assert res["pool"][True] < 0.05 * res["pool"][False]
    # OmpSs conveniences cost 15-50 % in the paper's size bracket.
    for _n, _h, _o, ovh in res["ompss"]:
        assert 0.10 < ovh < 0.55
