"""ABL — ablations of the design choices DESIGN.md calls out.

1. **Dependence relaxation** (the contribution's heart): the same
   matmul schedule on strict-FIFO streams vs hStreams' operand-relaxed
   streams.
2. **Tiling degree and stream count** (§VI "the best degree of tiling
   and number of streams depends on the matrix size"): a parameter grid
   over tile size and streams-per-domain.
3. **COI buffer pool** on/off for an allocation-heavy task stream.
4. **Host-as-target** on/off: what the host's streams contribute.
5. **LU placement and tiling** (§VI: DGETRF runs better on the host;
   an untiled scheme wins below ~4K).
"""

from conftest import run_once

from repro import HStreams, RuntimeConfig, make_platform
from repro.bench.reporting import format_table
from repro.linalg import hetero_lu, hetero_matmul
from repro.linalg.host_blas import register_blas
from repro.sim.kernels import dgemm, dgetrf, time_on
from repro.sim.platforms import HSW, KNC_7120A


def relaxation_ablation():
    """Pipelined tile stream on relaxed vs strict FIFO streams."""
    out = {}
    for strict in (False, True):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        register_blas(hs)
        s = hs.stream_create(domain=1, ncores=61, strict_fifo=strict)
        tiles = [hs.buffer_create(nbytes=8 * 2000 * 2000, domains=[1]) for _ in range(8)]
        t0 = hs.elapsed()
        for b in tiles:
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "dgemm", args=(2000, 2000, 2000),
                               operands=(b.all_inout(),),
                               cost=dgemm(2000, 2000, 2000))
        hs.thread_synchronize()
        out["strict" if strict else "relaxed"] = hs.elapsed() - t0
    return out


def tiling_grid(n=16000):
    """GFl/s over (tile size, streams per domain) — the §VI tuning."""
    grid = {}
    for tile in (1000, 2000, 4000):
        for spd in (2, 4, 6):
            hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
            res = hetero_matmul(hs, n, tile=tile, streams_per_domain=spd)
            grid[(tile, spd)] = res.gflops
    return grid


def pool_ablation():
    """A stream of short-lived card buffers, pool on vs off."""
    out = {}
    for pooled in (True, False):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      config=RuntimeConfig(use_buffer_pool=pooled), trace=False)
        register_blas(hs)
        s = hs.stream_create(domain=1, ncores=61)
        t0 = hs.elapsed()
        for _ in range(24):
            b = hs.buffer_create(nbytes=4 << 20, domains=[1])
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "dgemm", args=(512, 512, 512),
                               operands=(b.all_inout(),),
                               cost=dgemm(512, 512, 512))
            hs.thread_synchronize()
            hs.buffer_destroy(b)
        out["pool" if pooled else "no pool"] = hs.elapsed() - t0
    return out


def host_target_ablation(n=16000):
    """Matmul with and without host-as-target streams."""
    out = {}
    for use_host in (True, False):
        hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
        out[use_host] = hetero_matmul(hs, n, tile=2000, use_host=use_host).gflops
    return out


def lu_ablation():
    """§VI: "DGETRF runs better on the host than the coprocessor, and an
    untiled scheme works best for sizes smaller than 4K"."""
    out = {}
    for n in (2000, 4000, 8000):
        cost = dgetrf(n, n)
        out[("untiled-host", n)] = cost.flops / time_on(HSW, cost) / 1e9
        out[("untiled-knc", n)] = cost.flops / time_on(KNC_7120A, cost) / 1e9
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        res = hetero_lu(hs, n, tile=max(n // 10, 500), host_streams=3)
        out[("tiled-hetero", n)] = res.gflops
    return out


def run_all():
    return {
        "relax": relaxation_ablation(),
        "grid": tiling_grid(),
        "pool": pool_ablation(),
        "host": host_target_ablation(),
        "lu": lu_ablation(),
    }


def test_ablations(benchmark, capsys):
    r = run_once(benchmark, run_all)
    with capsys.disabled():
        print()
        print("== ABL 1: dependence relaxation (1-stream pipelined tiles) ==")
        print(f"relaxed {r['relax']['relaxed'] * 1e3:.1f} ms vs strict "
              f"{r['relax']['strict'] * 1e3:.1f} ms "
              f"({r['relax']['strict'] / r['relax']['relaxed']:.2f}x slower strict)")
        print("\n== ABL 2: tiling degree x stream count (GFl/s, n=16000, HSW+1KNC) ==")
        spds = (2, 4, 6)
        print(format_table(
            ["tile \\ streams"] + [str(s) for s in spds],
            [[t] + [f"{r['grid'][(t, s)]:.0f}" for s in spds] for t in (1000, 2000, 4000)],
        ))
        print("\n== ABL 3: COI buffer pool (24 short-lived card buffers) ==")
        print(f"pool {r['pool']['pool'] * 1e3:.1f} ms vs no pool "
              f"{r['pool']['no pool'] * 1e3:.1f} ms")
        print("\n== ABL 4: host-as-target streams (matmul, HSW+2KNC) ==")
        print(f"with host {r['host'][True]:.0f} GFl/s vs cards-only "
              f"{r['host'][False]:.0f} GFl/s")
        print("\n== ABL 5: LU (DGETRF) placement and tiling (GFl/s) ==")
        print(format_table(
            ["n", "untiled host", "untiled KNC", "tiled hetero"],
            [[n,
              f"{r['lu'][('untiled-host', n)]:.0f}",
              f"{r['lu'][('untiled-knc', n)]:.0f}",
              f"{r['lu'][('tiled-hetero', n)]:.0f}"] for n in (2000, 4000, 8000)],
        ))

    # 1. Strict FIFO serializes transfers against computes: slower.
    assert r["relax"]["strict"] > 1.1 * r["relax"]["relaxed"]
    # 2. Tuning matters: the best cell beats the worst by a real margin.
    best, worst = max(r["grid"].values()), min(r["grid"].values())
    assert best > 1.15 * worst
    # 3. The pool pays off once buffers recycle.
    assert r["pool"]["no pool"] > r["pool"]["pool"]
    # 4. Host streams add roughly a host's worth of throughput.
    assert r["host"][True] > 1.25 * r["host"][False]
    # 5. DGETRF runs better on the host than the coprocessor at every
    #    size, and the untiled host scheme beats tiled-hetero below 4K.
    for n in (2000, 4000, 8000):
        assert r["lu"][("untiled-host", n)] > r["lu"][("untiled-knc", n)]
    assert r["lu"][("untiled-host", 2000)] > r["lu"][("tiled-hetero", 2000)]
    assert r["lu"][("tiled-hetero", 8000)] > r["lu"][("untiled-host", 8000)]
