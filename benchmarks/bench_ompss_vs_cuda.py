"""OMPSS-CUDA — hStreams vs CUDA Streams as the OmpSs plumbing layer.

The same OmpSs task program (tiled matmul with in/out/inout clauses)
runs over both layers on the same card. Paper claims: the hStreams-based
implementation was **1.45x faster** for a 4K x 4K matmul, and **1.4x**
for a 6K x 6K 2x2-tiled multiply; the primary contributor is that OmpSs
must explicitly compute and enforce dependences for CUDA Streams, which
is unnecessary within hStreams (operand-derived, out-of-order).

Timing starts before region registration, so the CUDA layer's eager
device allocations count — matching the paper's OmpSs configuration
whose COI allocation overheads were significant (no buffer pool).
"""

from conftest import run_once

from repro.bench.reporting import format_table
from repro.ompss.matmul import ompss_matmul


def matmul(model: str, n: int, tiles: int) -> float:
    return ompss_matmul(model, n, tiles).elapsed_s


CASES = [
    # label, paper advantage, n, tiles
    ("4K x 4K, 4x4 tiles", 1.45, 4096, 4),
    ("6K x 6K, 2x2 tiles", 1.40, 6144, 2),
    ("8K x 8K, 4x4 tiles", None, 8192, 4),
]


def run_all():
    out = {}
    for label, paper, n, tiles in CASES:
        t_h = matmul("hstreams", n, tiles)
        t_c = matmul("cuda", n, tiles)
        out[label] = (paper, t_h, t_c, t_c / t_h)
    return out


def test_ompss_hstreams_vs_cuda(benchmark, capsys):
    results = run_once(benchmark, run_all)
    rows = []
    for label, (paper, t_h, t_c, adv) in results.items():
        rows.append([
            label, f"{t_h * 1e3:.0f} ms", f"{t_c * 1e3:.0f} ms",
            f"{adv:.2f}x", f"{paper}x" if paper else "-",
        ])
    with capsys.disabled():
        print()
        print("== OmpSs over hStreams vs over CUDA Streams ==")
        print(format_table(
            ["matmul", "hStreams layer", "CUDA layer", "hStr advantage", "paper"],
            rows,
        ))

    # The hStreams layer wins at 4K (paper: 1.45x; we land ~1.2-1.6x).
    adv_4k = results["4K x 4K, 4x4 tiles"][3]
    assert 1.15 < adv_4k < 1.8
    # It never loses on the larger cases.
    assert results["8K x 8K, 4x4 tiles"][3] > 1.0
    # The 2x2 6K case: the paper reports 1.4x; with only 8 coarse tasks
    # our CUDA layer's work-conserving device model recovers most of the
    # gap, so we only require parity-or-better there (see EXPERIMENTS.md).
    assert results["6K x 6K, 2x2 tiles"][3] > 0.95
