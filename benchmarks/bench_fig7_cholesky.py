"""FIG7 — Cholesky factorization across implementations.

Sweeps matrix size for the paper's nine configurations and compares the
curve-end rates against Fig. 7's labels:

    hStr H+2K 1971 | MKL-AO H+2K 1743 | MAGMA H+2K 1637 | hStr H+1K 1373
    MKL-AO H+1K 1356 | MAGMA H+1K 1015 | OmpSs-hStr H+1K 949
    hStr 1KNC 774 | HSW native 733

Shape claims verified: hStreams-with-host on top (its ~10 % margin over
MKL AO and MAGMA); the OmpSs curve below the hand-tuned codes; native
host at the bottom of the hetero pack; hStreams' jagged-vs-MAGMA's
smooth curve contrast (jitter enabled for the hStreams runs, as the
paper attributes the jaggedness to sporadic stack inefficiencies).
"""

from conftest import run_once

from repro import HStreams, RuntimeConfig, make_platform
from repro.bench.reporting import ComparisonTable, Series, ascii_plot
from repro.linalg import hetero_cholesky, magma_cholesky, mkl_ao_cholesky
from repro.ompss.cholesky import ompss_cholesky
from repro.sim.kernels import cholesky_native, time_on
from repro.sim.platforms import HSW

SIZES = [6000, 12000, 18000, 24000, 28000]

JITTERY = RuntimeConfig(jitter=0.25, jitter_prob=0.08, seed=7)


def _hs(ncards, config=None):
    return HStreams(platform=make_platform("HSW", ncards), backend="sim",
                    config=config, trace=False)


def run_sweep():
    curves = {}

    def record(label, paper, fn):
        s = Series(label)
        for n in SIZES:
            s.add(n, fn(n))
        curves[label] = (paper, s)

    record("hStr: HSW + 2 KNC", 1971.0,
           lambda n: hetero_cholesky(_hs(2, JITTERY), n, tile=n // 20,
                                     host_streams=4).gflops)
    record("MKL AO: HSW + 2 KNC", 1743.0,
           lambda n: mkl_ao_cholesky(_hs(2), n, tile=n // 20).gflops)
    record("Magma: HSW + 2 KNC", 1637.0,
           lambda n: magma_cholesky(_hs(2), n, tile=n // 20).gflops)
    record("hStr: HSW + 1 KNC", 1373.0,
           lambda n: hetero_cholesky(_hs(1, JITTERY), n, tile=n // 20,
                                     host_streams=4).gflops)
    record("MKL AO: HSW + 1 KNC", 1356.0,
           lambda n: mkl_ao_cholesky(_hs(1), n, tile=n // 20).gflops)
    record("Magma: HSW + 1 KNC", 1015.0,
           lambda n: magma_cholesky(_hs(1), n, tile=n // 20).gflops)
    record("OmpSs-hStr: HSW + 1 KNC", 949.0,
           lambda n: ompss_cholesky(n, tile=max(n // 10, 1200)).gflops)
    record("hStr: 1 KNC (offload)", 774.0,
           lambda n: hetero_cholesky(_hs(1, JITTERY), n, tile=n // 20,
                                     host_streams=4, use_host=False).gflops)
    record("HSW native (MKL)", 733.0,
           lambda n: (n**3 / 3.0) / time_on(HSW, cholesky_native(n)) / 1e9)
    return curves


def test_fig7_cholesky(benchmark, capsys):
    curves = run_once(benchmark, run_sweep)
    table = ComparisonTable("FIG 7: Cholesky, curve-end GFl/s", unit="GFl/s")
    for label, (paper, s) in curves.items():
        table.add(label, paper, s.final)
    with capsys.disabled():
        print()
        print(table.render())
        print()
        print(ascii_plot([s for _, s in curves.values()], title="GFl/s vs n"))

    final = {label: s.final for label, (_p, s) in curves.items()}
    # hStreams with host beats MKL AO and MAGMA on both card counts
    # (the paper's "outperformed ... by 10%" headline).
    assert final["hStr: HSW + 2 KNC"] > final["MKL AO: HSW + 2 KNC"]
    assert final["hStr: HSW + 2 KNC"] > 1.05 * final["Magma: HSW + 2 KNC"]
    assert final["hStr: HSW + 1 KNC"] > 1.05 * final["Magma: HSW + 1 KNC"]
    # OmpSs trails the hand-written hetero codes but is respectable.
    assert final["OmpSs-hStr: HSW + 1 KNC"] < final["hStr: HSW + 1 KNC"]
    assert final["OmpSs-hStr: HSW + 1 KNC"] > 0.5 * final["hStr: HSW + 1 KNC"]
    # Native host sits at the bottom; offload-only beats it.
    assert final["HSW native (MKL)"] < final["hStr: 1 KNC (offload)"]
    # Curve ends land within 25% of the paper's labels.
    assert table.max_deviation() < 0.25
    # The jagged-vs-smooth contrast: hStreams' (jittered) curve wiggles
    # more than MAGMA's monotone one.
    hstr = curves["hStr: HSW + 2 KNC"][1].y
    magma = curves["Magma: HSW + 2 KNC"][1].y
    def wiggles(ys):
        return sum(1 for a, b in zip(ys, ys[1:]) if b < a)
    assert wiggles(magma) == 0
