"""FIG9 — the standalone supernode test program.

Factorizes one representative dense supernode on the paper's three
targets with the paper's stream configurations:

    KNC offload (4 streams x 60 threads)      paper: 2.35 s
    HSW host-as-target (3 streams x 9 threads) paper: 2.24 s
    IVB host-as-target (3 streams x 7 threads) paper: 4.27 s

Shape claims verified: KNC and HSW near parity (the paper's "relative
run times correlate pretty well with the relative peak performance");
IVB roughly 2x the HSW time.
"""

from conftest import run_once

from repro import HStreams, make_platform
from repro.apps.abaqus.supernode import factorize_supernode
from repro.bench.reporting import ComparisonTable

#: The representative supernode: sized so its LDL^T work matches the
#: paper's seconds-scale runtimes on the calibrated devices.
NROWS, NCOLS, PANEL = 28672, 7168, 1024

CONFIGS = [
    ("KNC offload (4 streams)", 2.35, "HSW", 1, 4),
    ("HSW host-as-target (3 streams)", 2.24, "HSW", 0, 3),
    ("IVB host-as-target (3 streams)", 4.27, "IVB", 0, 3),
]


def run_all():
    out = {}
    for label, paper, host, domain, nstreams in CONFIGS:
        hs = HStreams(platform=make_platform(host, 1), backend="sim", trace=False)
        total = hs.domain(domain).device.total_cores
        wide = hs.stream_create(domain=domain, cpu_mask=range(total), name="panel")
        res = factorize_supernode(
            hs, NROWS, NCOLS, panel=PANEL, domain=domain, nstreams=nstreams,
            panel_stream=wide,
        )
        out[label] = (paper, res.elapsed_s, res.gflops)
    return out


def test_fig9_supernode_runtimes(benchmark, capsys):
    results = run_once(benchmark, run_all)
    table = ComparisonTable("FIG 9: standalone supernode runtimes", unit="seconds")
    for label, (paper, measured, _gf) in results.items():
        table.add(label, paper, measured)
    with capsys.disabled():
        print()
        print(table.render())

    t = {label: v[1] for label, v in results.items()}
    knc = t["KNC offload (4 streams)"]
    hsw = t["HSW host-as-target (3 streams)"]
    ivb = t["IVB host-as-target (3 streams)"]
    # Near parity between the card and the newer host (paper 1.05x).
    assert 0.8 < knc / hsw < 1.45
    # The older host is roughly twice as slow (paper 1.91x).
    assert 1.5 < ivb / hsw < 2.3
    # Absolute runtimes are seconds-scale like the paper's.
    assert all(0.5 < v < 10.0 for v in t.values())
