#!/usr/bin/env python
"""SERVICE LOAD — million-session admission replay → BENCH_service.json.

Thin CLI over :mod:`repro.service.loadgen`: generates the deterministic
synthetic trace, replays it through the real
:class:`~repro.service.admission.AdmissionController` in virtual time,
drives a smaller slice end-to-end through the real
:class:`~repro.service.server.StreamService` on the sim backend, and
optionally gates the deterministic counters (p50/p99 admission latency
in virtual µs, weighted fairness, reject/incomplete counts) against a
committed baseline::

    PYTHONPATH=src python benchmarks/bench_service_load.py \
        --check benchmarks/baselines/BENCH_service.json

``--smoke`` shrinks the trace for quick local runs (its rows are NOT
baseline-comparable — the bench label carries the trace shape, so a
smoke run against the full baseline fails on missing counters rather
than silently passing). Refresh the baseline after an intentional
admission-policy change with ``--write-baseline`` (then commit the
diff).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import loadgen  # noqa: E402

BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_service.json"

#: The CI trace: one million sessions, eight tenants (half premium).
FULL = ["--sessions", "1000000", "--tenants", "8", "--seed", "42"]
SMOKE = ["--sessions", "20000", "--tenants", "8", "--seed", "42"]

#: End-to-end slice through the real service (sessions driven over the
#: asyncio front-end on the sim backend; asserts its own invariants).
E2E = "300"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--smoke", action="store_true", help="small trace")
    parser.add_argument(
        "--json", default="BENCH_service.json",
        help="rows output path ('-' for stdout)",
    )
    parser.add_argument(
        "--report", default=None,
        help="full replay report (per-tenant detail) output path",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=f"gate gated counters against a baseline (e.g. {BASELINE})",
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"also refresh the committed baseline at {BASELINE}",
    )
    args = parser.parse_args(argv)

    forwarded = list(SMOKE if args.smoke else FULL)
    forwarded += ["--e2e", E2E, "--json", args.json]
    if args.report:
        forwarded += ["--report", args.report]
    if args.check:
        forwarded += ["--check", args.check, "--tolerance", str(args.tolerance)]
    status = loadgen.main(forwarded)

    if args.write_baseline and args.json not in ("-", str(BASELINE)):
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(Path(args.json).read_text())
        print(f"refreshed baseline {BASELINE}")
    return status


if __name__ == "__main__":
    sys.exit(main())
