"""FIG3 — the coding comparison.

Counts the additional offload source lines (per application phase),
unique APIs, and total API calls in six runnable matmul implementations,
and *measures* the GFl/s column on the simulated platform. The paper's
published values print alongside.

Shape claims verified: hStreams needs roughly half the code and APIs of
CUDA and OpenCL; OmpSs needs almost none; OpenMP 4.0 is one construct
but pays >2x in performance (and its tiled variant is under half its
untiled rate); clBLAS-based OpenCL collapses to tens of GFl/s.
"""

from conftest import run_once

from repro.bench.coding import IMPLEMENTATIONS, PAPER_FIG3, analyze
from repro.bench.reporting import format_table

N = 10000


def omp40_tiled(n: int, tile: int) -> float:
    """The paper's '180 GFl/s' variant: tiled but fully synchronous
    OpenMP 4.0 — every tile transfer and target region blocks the host."""
    from repro.bench.coding import SizedData
    from repro.models.openmp import OpenMPRuntime
    from repro.sim import kernels as K
    from repro.sim.platforms import make_platform

    T = -(-n // tile)
    omp = OpenMPRuntime(platform=make_platform("HSW", 1), backend="sim",
                        spec="4.0", trace=False)
    omp.register_kernel("mm_tile", cost_fn=lambda *a: None)
    A = [[SizedData(8 * tile * tile) for _ in range(T)] for _ in range(T)]
    B = [[SizedData(8 * tile * tile) for _ in range(T)] for _ in range(T)]
    C = [[SizedData(8 * tile * tile) for _ in range(T)] for _ in range(T)]
    t0 = omp.elapsed()
    for i in range(T):
        for j in range(T):
            for k in range(T):
                # `map(to: A,B) map(tofrom: C)` on the construct: without
                # a surrounding data region, every target re-transfers its
                # operands — the idiomatic (and slow) OpenMP 4.0 tiling.
                omp.target_enter_data(0, [A[i][k], B[k][j], C[i][j]])  # blocks
                omp.target(0, "mm_tile",
                           cost=K.dgemm(tile, tile, tile, kernel="dgemm_target"))
                omp.target_exit_data(0, [C[i][j]])  # blocks
    elapsed = omp.elapsed() - t0
    omp.fini()
    return elapsed


def run_all():
    out = {}
    for model, fn in IMPLEMENTATIONS.items():
        metrics = analyze(model)
        elapsed = fn(n=N, tile=2500)
        out[model] = (metrics, 2.0 * N**3 / elapsed / 1e9)
    # The paper's OpenMP 4.0 row also quotes the *tiled* rate (180).
    out["OMP 4.0 tiled"] = (None, 2.0 * N**3 / omp40_tiled(N, 2500) / 1e9)
    return out


def test_fig3_coding_comparison(benchmark, capsys):
    results = run_once(benchmark, run_all)
    rows = []
    for model in IMPLEMENTATIONS:
        metrics, gflops = results[model]
        paper = PAPER_FIG3[model]
        rows.append(
            [
                model,
                f"{metrics.total_lines} ({paper[0]})",
                f"{metrics.unique_apis} ({paper[1]})",
                f"{metrics.total_api_calls} ({paper[2]})",
                str(metrics.support_variables),
                f"{gflops:.0f} ({paper[3]:.0f})" if paper[3] else f"{gflops:.0f} (-)",
            ]
        )
    rows.append(
        ["OMP 4.0 tiled", "-", "-", "-", "-",
         f"{results['OMP 4.0 tiled'][1]:.0f} (180)"]
    )
    with capsys.disabled():
        print()
        print("== FIG 3: coding comparison, measured (paper) ==")
        print(format_table(
            ["model", "extra lines", "uniq APIs", "total APIs",
             "support vars", "GFl/s"],
            rows,
        ))

    m = {k: v[0] for k, v in results.items() if v[0] is not None}
    perf = {k: v[1] for k, v in results.items()}
    # Code-volume shape: hStreams far leaner than CUDA and OpenCL.
    assert m["hStreams"].total_lines < 0.8 * m["CUDA"].total_lines
    assert m["hStreams"].unique_apis < 0.7 * m["CUDA"].unique_apis
    assert m["hStreams"].total_api_calls < m["CUDA"].total_api_calls
    assert m["hStreams"].unique_apis < m["OpenCL"].unique_apis
    # Fig. 3's middle block: hStreams carries 1 support matrix (events),
    # CUDA carries 5 (streams, events, three per-device address grids).
    assert m["hStreams"].support_variables == 1
    assert m["CUDA"].support_variables == 5
    # OmpSs and OpenMP 4.0 are nearly free at the source level.
    assert m["OmpSs"].total_lines <= 4
    assert m["OMP 4.0"].total_lines <= 2
    # Performance shape: hStreams on top, OpenMP half-ish, clBLAS ~35.
    assert perf["hStreams"] > 1.6 * perf["OMP 4.0"]
    # Paper: "a tiled implementation has less than half of the
    # performance: 180 vs 460". Our per-construct re-mapping model loses
    # ~30% rather than ~60% (we do not model the per-region provisioning
    # overheads the compiler path pays); direction preserved.
    assert perf["OMP 4.0 tiled"] < 0.80 * perf["OMP 4.0"]
    assert perf["OpenCL"] < 60
    assert abs(perf["OpenCL"] - 35) / 35 < 0.4
    assert perf["OmpSs"] < perf["hStreams"] * 1.1
