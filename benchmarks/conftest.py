"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation and
prints a paper-vs-measured comparison (run with ``-s`` to see the
tables). The pytest-benchmark fixture times the headline configuration
of each experiment once (``rounds=1``) — these are simulations, not
micro-kernels, so statistical repetition adds nothing.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(autouse=True)
def _print_blank_line(capsys):
    """Keep the comparison tables readable between benchmarks."""
    yield
