"""FIG2 — the machine-configuration table.

Regenerates the paper's Fig. 2 from the platform presets and checks the
architectural arithmetic (core counts, SIMD widths, peaks, memory sizes)
against the published specification.
"""

from conftest import run_once

from repro.bench.reporting import format_table
from repro.sim.platforms import HSW, IVB, K40X, KNC_7120A


def build_table():
    rows = []
    for dev in (IVB, HSW, KNC_7120A, K40X):
        rows.append(
            [
                dev.name,
                f"{dev.sockets}S,{dev.cores_per_socket}C,{dev.threads_per_core}T",
                f"{dev.sp_flops_per_cycle:.0f}/{dev.dp_flops_per_cycle:.0f}",
                f"{dev.clock_ghz:g}",
                f"{dev.ram_gb:g}",
                f"{dev.peak_dp_gflops:.0f}",
            ]
        )
    return rows


def test_fig2_machine_configuration(benchmark, capsys):
    rows = run_once(benchmark, build_table)
    with capsys.disabled():
        print()
        print("== FIG 2: machine configuration ==")
        print(
            format_table(
                ["device", "skt,core,thr", "SP/DP fl/cyc", "GHz", "RAM GB", "peak DP GF/s"],
                rows,
            )
        )
    # Fig. 2's published values.
    assert IVB.total_cores == 24 and IVB.clock_ghz == 2.7
    assert HSW.total_cores == 28 and HSW.clock_ghz == 2.6
    assert KNC_7120A.total_cores == 61 and KNC_7120A.threads_per_core == 4
    assert KNC_7120A.ram_gb == 16 and K40X.ram_gb == 12
    # Architectural peaks implied by the table.
    assert abs(IVB.peak_dp_gflops - 518.4) < 1
    assert abs(HSW.peak_dp_gflops - 1164.8) < 1
    assert abs(KNC_7120A.peak_dp_gflops - 1298.1) < 1
