"""Tiled Cholesky written as OmpSs tasks (the Fig. 7 "OmpSs-hStr" curve).

The application code is just a sequential loop of task invocations with
``in``/``out``/``inout`` clauses — no streams, no transfers, no events.
The OmpSs runtime detects dependences, allocates card data, moves tiles,
and schedules over its hStreams streams. Panel factorizations are SMP
tasks (the host), everything else offloads — matching how the BSC port
reached MAGMA-level rates at large sizes in offload mode.

The conveniences cost 15-50 % over the hand-written hStreams code at
n = 4800-10000 (paper §III): task instantiation overhead, whole-tile
dependence granularity, and the disabled COI buffer pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.properties import RuntimeConfig
from repro.ompss.runtime import OmpSsConfig, OmpSsRuntime
from repro.sim import kernels as K
from repro.sim.platforms import Platform, make_platform

__all__ = ["OmpSsCholeskyResult", "ompss_cholesky"]


@dataclass
class OmpSsCholeskyResult:
    """Outcome of one OmpSs Cholesky run."""

    n: int
    tile: int
    elapsed_s: float
    gflops: float
    tasks: int
    transfers: int


def ompss_cholesky(
    n: int,
    tile: Optional[int] = None,
    platform: Optional[Platform] = None,
    backend: str = "sim",
    config: Optional[OmpSsConfig] = None,
    runtime_config: Optional[RuntimeConfig] = None,
) -> OmpSsCholeskyResult:
    """Factor an n x n SPD matrix through OmpSs tasks (1 MIC, offload)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    tile = tile if tile is not None else max(n // 10, 1)
    T = -(-n // tile)

    oss = OmpSsRuntime(
        model="hstreams",
        platform=platform if platform is not None else make_platform("HSW", 1),
        backend=backend,
        config=config,
        runtime_config=runtime_config,
        trace=False,
    )
    noop = lambda *a: None  # noqa: E731 - cost-only tasks under sim
    for name in ("potrf", "trsm", "syrk", "gemm"):
        oss.register_kernel(name, fn=noop, cost_fn=None)

    def b(i: int) -> int:  # edge tiles may be short
        return min(tile, n - i * tile)

    t0 = oss.elapsed()
    A = [
        [oss.register(8 * b(i) * b(j), name=f"A{i}_{j}") for j in range(i + 1)]
        for i in range(T)
    ]
    for k in range(T):
        oss.task(
            "potrf", inouts=[A[k][k]], device="host",
            cost=K.dpotrf(b(k)), label=f"potrf{k}",
        )
        for i in range(k + 1, T):
            oss.task(
                "trsm", ins=[A[k][k]], inouts=[A[i][k]],
                cost=K.dtrsm(b(i), b(k)), label=f"trsm{i}.{k}",
            )
        for i in range(k + 1, T):
            for j in range(k + 1, i + 1):
                if j == i:
                    oss.task(
                        "syrk", ins=[A[i][k]], inouts=[A[i][i]],
                        cost=K.dsyrk(b(i), b(k)), label=f"syrk{i}.{k}",
                    )
                else:
                    oss.task(
                        "gemm", ins=[A[i][k], A[j][k]], inouts=[A[i][j]],
                        cost=K.dgemm(b(i), b(j), b(k)), label=f"gemm{i}{j}.{k}",
                    )
    oss.taskwait()
    elapsed = oss.elapsed() - t0
    stats = dict(oss.stats)
    oss.fini()
    return OmpSsCholeskyResult(
        n=n,
        tile=tile,
        elapsed_s=elapsed,
        gflops=(n**3 / 3.0) / elapsed / 1e9 if elapsed > 0 else float("inf"),
        tasks=stats["tasks"],
        transfers=stats["transfers"],
    )
