"""The OmpSs runtime: dynamic dependence detection, data management,
and scheduling over an hStreams or CUDA-Streams plumbing layer."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.actions import OperandMode, XferDirection
from repro.core.events import HEvent
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.models.cuda_streams import (
    MEMCPY_DEVICE_TO_HOST,
    MEMCPY_HOST_TO_DEVICE,
    CudaRuntime,
)
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform

__all__ = ["OmpSsConfig", "DataRegion", "TaskHandle", "OmpSsRuntime"]

_region_ids = itertools.count()
_task_ids = itertools.count()


@dataclass
class OmpSsConfig:
    """OmpSs runtime knobs.

    ``task_overhead_s`` is the host-side cost of fully dynamic task
    instantiation and scheduling (the paper's explanation for OmpSs'
    small-problem penalty). ``dep_overhead_s`` is the *additional*
    per-dependence-edge cost paid only on the CUDA layer, where OmpSs
    must explicitly compute and enforce dependences. The COI buffer pool
    is disabled by default because the paper's OmpSs configuration ran
    without it ("the COI allocation overheads were significant").
    """

    nstreams: int = 4
    task_overhead_s: float = 2.5e-5
    dep_overhead_s: float = 8.0e-6
    #: "locality": stick to the producer's stream (minimizes cross-stream
    #: edges; dependence chains stay in one FIFO). "balanced": least
    #: cumulative work — sound because all streams share the card's
    #: memory, so data placement is per-*device*, not per-stream.
    #: "round_robin": naive spreading.
    schedule: str = "locality"
    use_buffer_pool: bool = False
    flush_on_taskwait: bool = True

    def __post_init__(self) -> None:
        if self.nstreams < 1:
            raise ValueError("nstreams must be >= 1")
        if self.schedule not in ("balanced", "locality", "round_robin"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.task_overhead_s < 0 or self.dep_overhead_s < 0:
            raise ValueError("overheads must be >= 0")


class DataRegion:
    """One datum OmpSs manages: location tracking + dependence anchors."""

    def __init__(self, nbytes: int, array: Optional[np.ndarray] = None, name: str = ""):
        self.id = next(_region_ids)
        self.nbytes = nbytes
        self.array = array
        self.name = name or f"r{self.id}"
        #: Domains holding a valid copy; the host is domain 0.
        self.valid: Set[int] = {0}
        #: (event, stream_index) of the last writer, if in flight.
        self.last_write: Optional[Tuple[HEvent, int]] = None
        #: Readers since the last write: list of (event, stream_index).
        self.readers: List[Tuple[HEvent, int]] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataRegion {self.name} {self.nbytes}B valid={sorted(self.valid)}>"


class TaskHandle:
    """Returned by :meth:`OmpSsRuntime.task`; resolves at ``taskwait``."""

    def __init__(self, task_id: int, event: HEvent, stream_index: int):
        self.id = task_id
        self.event = event
        self.stream_index = stream_index

    def is_complete(self) -> bool:
        """Non-blocking completion poll."""
        return self.event.is_complete()


class OmpSsRuntime:
    """The OmpSs front end over one device.

    The paper evaluates OmpSs in offload mode with one MIC; this runtime
    matches that: all tasks run on device domain 1, spread over
    ``config.nstreams`` streams.
    """

    def __init__(
        self,
        model: str = "hstreams",
        platform: Optional[Platform] = None,
        backend: str = "sim",
        config: Optional[OmpSsConfig] = None,
        runtime_config: Optional[RuntimeConfig] = None,
        trace: bool = True,
    ):
        if model not in ("hstreams", "cuda"):
            raise ValueError(f"model must be 'hstreams' or 'cuda', got {model!r}")
        self.model = model
        self.config = config if config is not None else OmpSsConfig()
        platform = platform if platform is not None else make_platform("HSW", 1)
        rcfg = runtime_config
        if rcfg is None:
            rcfg = RuntimeConfig(use_buffer_pool=self.config.use_buffer_pool)
        self._regions: Dict[int, DataRegion] = {}
        self._by_array: Dict[int, DataRegion] = {}
        self._handles: List[TaskHandle] = []
        self.stats = {"tasks": 0, "transfers": 0, "dep_edges": 0, "cross_stream_syncs": 0}

        if model == "hstreams":
            self._hs = HStreams(platform=platform, backend=backend, config=rcfg, trace=trace)
            ncores = self._hs.domain(1).device.total_cores
            width = ncores // self.config.nstreams
            self._streams = [
                self._hs.stream_create(domain=1, ncores=width, name=f"ompss{i}")
                for i in range(self.config.nstreams)
            ]
            # SMP tasks (device="host") run here, machine-wide.
            self._host_stream = self._hs.stream_create(
                domain=0,
                cpu_mask=range(self._hs.domain(0).device.total_cores),
                name="ompss-smp",
            )
            self._cuda = None
        else:
            self._cuda = CudaRuntime(
                platform=platform, backend=backend, config=rcfg, trace=trace
            )
            self._hs = self._cuda.hstreams
            self._streams = [self._cuda.stream_create() for _ in range(self.config.nstreams)]
            self._dev_ptrs: Dict[int, Any] = {}  # region id -> DevicePtr
        self._rr = 0
        self._stream_load = [0.0] * len(self._streams)

    # -- data management ---------------------------------------------------------

    def register(self, data: Union[np.ndarray, int], name: str = "") -> DataRegion:
        """Register a datum (an array, or a byte count under the sim
        backend). Arrays are registered implicitly on first use."""
        if isinstance(data, np.ndarray):
            key = data.__array_interface__["data"][0]
            region = self._by_array.get(key)
            if region is None:
                region = DataRegion(data.nbytes, array=data, name=name)
                self._by_array[key] = region
                self._attach_storage(region)
            return region
        region = DataRegion(int(data), name=name)
        self._attach_storage(region)
        return region

    def _attach_storage(self, region: DataRegion) -> None:
        self._regions[region.id] = region
        if self.model == "hstreams":
            if region.array is not None:
                region._buffer = self._hs.wrap(region.array, name=region.name)
            else:
                region._buffer = self._hs.buffer_create(
                    nbytes=region.nbytes, name=region.name
                )
        else:
            # CUDA: automatic device allocation — one device pointer per
            # region (per-device addresses the user would otherwise juggle).
            self._dev_ptrs[region.id] = self._cuda.malloc(region.nbytes)

    def _as_region(self, item: Union[DataRegion, np.ndarray]) -> DataRegion:
        if isinstance(item, DataRegion):
            return item
        if isinstance(item, np.ndarray):
            return self.register(item)
        raise TypeError(f"expected DataRegion or ndarray, got {type(item).__name__}")

    # -- scheduling -----------------------------------------------------------------

    def _pick_stream(self, ins: Sequence[DataRegion], est: float) -> int:
        mode = self.config.schedule
        if mode == "locality" and ins:
            # Prefer the stream that produced the most input bytes.
            score: Dict[int, int] = {}
            for r in ins:
                if r.last_write is not None:
                    score[r.last_write[1]] = score.get(r.last_write[1], 0) + r.nbytes
            if score:
                idx = max(sorted(score), key=lambda k: score[k])
                self._stream_load[idx] += est
                return idx
        if mode == "balanced":
            idx = min(range(len(self._streams)), key=lambda i: self._stream_load[i])
            self._stream_load[idx] += est
            return idx
        idx = self._rr
        self._rr = (self._rr + 1) % len(self._streams)
        self._stream_load[idx] += est
        return idx

    # -- tasks -----------------------------------------------------------------------

    def register_kernel(self, name: str, fn=None, cost_fn=None) -> None:
        """Register a task body by name."""
        self._hs.register_kernel(name, fn=fn, cost_fn=cost_fn)

    def task(
        self,
        kernel: str,
        args: Sequence = (),
        ins: Sequence = (),
        outs: Sequence = (),
        inouts: Sequence = (),
        cost: Optional[KernelCost] = None,
        label: str = "",
        device: str = "card",
    ) -> TaskHandle:
        """Submit one task; dependences derive from its data clauses.

        Region arguments inside ``args`` are positional placeholders that
        resolve to the sink-side views of the corresponding data.
        ``device="host"`` pins the task to the SMP device (OmpSs supports
        heterogeneous task targets), available on the hStreams layer.
        """
        cfg = self.config
        if device not in ("card", "host"):
            raise ValueError(f"device must be 'card' or 'host', got {device!r}")
        if device == "host" and self.model != "hstreams":
            raise ValueError("SMP tasks require the hstreams layer")
        self._hs.backend.advance_host(cfg.task_overhead_s)  # instantiation
        r_ins = [self._as_region(r) for r in ins]
        r_outs = [self._as_region(r) for r in outs]
        r_inouts = [self._as_region(r) for r in inouts]
        reads = r_ins + r_inouts
        writes = r_outs + r_inouts
        est = cost.flops if cost is not None else float(sum(r.nbytes for r in reads + writes) or 1)
        sidx = -1 if device == "host" else self._pick_stream(reads, est)

        # 1. Dependence detection from the dynamic data-access history:
        #    (event, producer stream, region carrying the edge) triples.
        dep_edges: List[Tuple[HEvent, int, DataRegion]] = []
        for r in reads:
            if r.last_write is not None:
                dep_edges.append((*r.last_write, r))
        for r in writes:
            if r.last_write is not None:
                dep_edges.append((*r.last_write, r))
            dep_edges.extend((ev, s, r) for ev, s in r.readers)
        self.stats["dep_edges"] += len(dep_edges)

        # 2. Dependence enforcement. On the hStreams layer only
        #    *cross-stream* edges need action (a scoped sync); same-stream
        #    edges are implicit in the FIFO + operand semantics. On the
        #    CUDA layer OmpSs must explicitly enforce *every* edge from
        #    the host — it cannot see operand-level dependences device-
        #    side — which stalls the submission pipeline and exposes the
        #    consumer's transfers (the paper's "primary contributor").
        if self.model == "hstreams":
            cross = [
                (ev, r) for ev, s, r in dep_edges if s != sidx and not ev.is_complete()
            ]
            if cross:
                # Scope the sync to exactly the regions carrying edges, so
                # this task's unrelated prefetch transfers flow past it.
                self._enforce_cross_deps(
                    sidx,
                    [ev for ev, _ in cross],
                    list({r.id: r for _, r in cross}.values()),
                )
        else:
            pending = [ev for ev, _, _ in dep_edges if not ev.is_complete()]
            if pending:
                self._enforce_cross_deps(sidx, pending, reads + writes)

        # 3. Data movement: ensure every read datum is valid where the
        #    task runs (host tasks pull dirty data home).
        if device == "host":
            for r in reads:
                if 0 not in r.valid:
                    self._transfer_d2h(r)
        else:
            for r in reads:
                if 1 not in r.valid:
                    self._transfer_h2d(r, sidx)

        # 4. Launch.
        ev = self._launch(kernel, args, r_ins, r_outs, r_inouts, sidx, cost, label)

        # 5. Update the access history and location map.
        for r in writes:
            r.last_write = (ev, sidx)
            r.readers = []
            r.valid = {0} if device == "host" else {1}
        for r in r_ins:
            r.readers.append((ev, sidx))
        handle = TaskHandle(next(_task_ids), ev, sidx)
        self._handles.append(handle)
        self.stats["tasks"] += 1
        return handle

    # -- backend-specific pieces --------------------------------------------------------

    def _transfer_h2d(self, region: DataRegion, sidx: int) -> None:
        self.stats["transfers"] += 1
        if self.model == "hstreams":
            self._hs.enqueue_xfer(
                self._streams[sidx], region._buffer, label=f"to({region.name})"
            )
        else:
            ptr = self._dev_ptrs[region.id]
            host = region.array if region.array is not None else None
            if host is None:
                host = np.empty(0)  # sim backend: no real bytes
            self._cuda.memcpy_async(
                ptr, host, region.nbytes, MEMCPY_HOST_TO_DEVICE, self._streams[sidx]
            )
        region.valid.add(1)

    def _transfer_d2h(self, region: DataRegion) -> None:
        self.stats["transfers"] += 1
        sidx = region.last_write[1] if region.last_write is not None else 0
        if self.model == "hstreams":
            self._hs.enqueue_xfer(
                self._streams[sidx],
                region._buffer,
                XferDirection.SINK_TO_SRC,
                label=f"from({region.name})",
            )
        else:
            ptr = self._dev_ptrs[region.id]
            host = region.array if region.array is not None else np.empty(0)
            self._cuda.memcpy_async(
                host, ptr, region.nbytes, MEMCPY_DEVICE_TO_HOST, self._streams[sidx]
            )
        region.valid.add(0)

    def _enforce_cross_deps(self, sidx: int, events: List[HEvent], regions) -> None:
        self.stats["cross_stream_syncs"] += 1
        if self.model == "hstreams":
            # One scoped sync action; operands limit what it orders.
            operands = [r._buffer.all_inout() for r in regions]
            self._hs.event_stream_wait(self._stream_at(sidx), events, operands=operands)
        else:
            # CUDA: OmpSs must explicitly compute and enforce dependences
            # (the paper's "primary contributor" to the gap). The classic
            # Nanos GPU backend enforces a cross-stream edge by waiting on
            # the producer's event from the *host* before submitting the
            # consumer, stalling the submission pipeline, and pays
            # bookkeeping per edge.
            self._hs.backend.advance_host(
                self.config.dep_overhead_s * max(len(events), 1)
            )
            self._hs.event_wait(events)

    def _launch(
        self, kernel, args, r_ins, r_outs, r_inouts, sidx, cost, label
    ) -> HEvent:
        mode_of: Dict[int, OperandMode] = {}
        for r in r_ins:
            mode_of[r.id] = OperandMode.IN
        for r in r_outs:
            mode_of[r.id] = OperandMode.OUT
        for r in r_inouts:
            mode_of[r.id] = OperandMode.INOUT
        if self.model == "hstreams":
            resolved = []
            for a in args:
                if isinstance(a, (DataRegion, np.ndarray)):
                    r = self._as_region(a)
                    resolved.append(r._buffer.all(mode_of.get(r.id, OperandMode.INOUT)))
                else:
                    resolved.append(a)
            extra = [
                r._buffer.all(mode_of[r.id])
                for r in r_ins + r_outs + r_inouts
            ]
            return self._hs.enqueue_compute(
                self._stream_at(sidx), kernel, args=resolved, operands=extra,
                cost=cost, label=label or kernel,
            )
        resolved = []
        for a in args:
            if isinstance(a, (DataRegion, np.ndarray)):
                r = self._as_region(a)
                resolved.append(self._dev_ptrs[r.id])
            else:
                resolved.append(a)
        stream = self._streams[sidx]
        self._cuda.launch(stream, kernel, args=resolved, cost=cost)
        # The task's completion anchor: an event recorded behind it.
        cuda_ev = self._cuda.event_create()
        self._cuda.event_record(cuda_ev, stream)
        return cuda_ev._recorded

    def _stream_at(self, sidx: int):
        """Worker stream by index; -1 is the host SMP stream."""
        return self._host_stream if sidx == -1 else self._streams[sidx]

    # -- synchronization ------------------------------------------------------------------

    def taskwait(self, flush: Optional[bool] = None) -> None:
        """Wait for every submitted task; optionally copy dirty data home."""
        flush = self.config.flush_on_taskwait if flush is None else flush
        if flush:
            for r in self._regions.values():
                if 0 not in r.valid:
                    self._transfer_d2h(r)
        self._hs.thread_synchronize()
        if self.model == "cuda":
            self._cuda._flush_readbacks()
        self._handles.clear()

    def elapsed(self) -> float:
        """Virtual (sim) or wall (thread) seconds since init."""
        return self._hs.elapsed()

    def metrics(self) -> Dict[str, Any]:
        """Scheduling observability snapshot of the plumbing runtime."""
        return self._hs.metrics()

    @property
    def tracer(self):
        """The underlying trace recorder."""
        return self._hs.tracer

    @property
    def hstreams(self) -> HStreams:
        """Escape hatch to the plumbing runtime (used by tests)."""
        return self._hs

    def fini(self) -> None:
        """Tear down."""
        self.taskwait(flush=False)
        if self._cuda is not None:
            self._cuda.fini()
        else:
            self._hs.fini()
