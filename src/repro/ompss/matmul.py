"""Tiled matmul written as OmpSs tasks — the §IV layer-comparison app.

The same task program runs over the hStreams or CUDA-Streams plumbing
layer (the ``model`` argument); the paper's 1.45x hStreams advantage at
4K x 4K comes out of the comparison. Used by the OMPSS-CUDA benchmark,
the dataflow example, and the layer tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.properties import RuntimeConfig
from repro.ompss.runtime import OmpSsConfig, OmpSsRuntime
from repro.sim.kernels import dgemm
from repro.sim.platforms import Platform, make_platform

__all__ = ["OmpSsMatmulResult", "ompss_matmul"]


@dataclass
class OmpSsMatmulResult:
    """Outcome of one OmpSs matmul run."""

    model: str
    n: int
    tiles: int
    elapsed_s: float
    gflops: float
    tasks: int
    transfers: int
    dep_edges: int


def ompss_matmul(
    model: str,
    n: int,
    tiles: int,
    platform: Optional[Platform] = None,
    backend: str = "sim",
    config: Optional[OmpSsConfig] = None,
    runtime_config: Optional[RuntimeConfig] = None,
) -> OmpSsMatmulResult:
    """C = A B as OmpSs tasks over the chosen plumbing layer.

    Timing starts before region registration so the CUDA layer's eager
    device allocations count, matching the paper's no-buffer-pool OmpSs
    configuration.
    """
    if n < 1 or tiles < 1 or n % tiles:
        raise ValueError(f"need n divisible by tiles >= 1, got {n}/{tiles}")
    rt = OmpSsRuntime(
        model=model,
        platform=platform if platform is not None else make_platform("HSW", 1),
        backend=backend,
        config=config,
        runtime_config=runtime_config,
        trace=False,
    )
    rt.register_kernel("gemm", fn=lambda *a: None, cost_fn=None)
    b = n // tiles
    t0 = rt.elapsed()
    A = [[rt.register(8 * b * b, name=f"A{i}_{j}") for j in range(tiles)]
         for i in range(tiles)]
    B = [[rt.register(8 * b * b, name=f"B{i}_{j}") for j in range(tiles)]
         for i in range(tiles)]
    C = [[rt.register(8 * b * b, name=f"C{i}_{j}") for j in range(tiles)]
         for i in range(tiles)]
    for i in range(tiles):
        for j in range(tiles):
            for k in range(tiles):
                rt.task(
                    "gemm",
                    cost=dgemm(b, b, b),
                    ins=[A[i][k], B[k][j]],
                    inouts=[C[i][j]],
                    label=f"gemm{i}{j}.{k}",
                )
    rt.taskwait()
    elapsed = rt.elapsed() - t0
    stats = dict(rt.stats)
    rt.fini()
    return OmpSsMatmulResult(
        model=model,
        n=n,
        tiles=tiles,
        elapsed_s=elapsed,
        gflops=2.0 * n**3 / elapsed / 1e9 if elapsed > 0 else float("inf"),
        tasks=stats["tasks"],
        transfers=stats["transfers"],
        dep_edges=stats["dep_edges"],
    )
