"""OmpSs: a task-dataflow programming model layered on hStreams.

OmpSs (paper §II/§IV) lets sequential task invocations run in parallel:
the runtime detects dependences dynamically from each task's declared
``in``/``out``/``inout`` data, allocates device data automatically, moves
it as needed, and schedules tasks over the device streams — the
"conveniences it offers" that cost 15–50 % over raw hStreams in the
paper's Cholesky measurements.

The same front end runs over two plumbing layers, mirroring the BSC
team's comparative port:

* ``model="hstreams"`` — dependences inside a stream are *implicit*
  (operand-derived, out-of-order execution), cross-stream dependences are
  scoped ``event_stream_wait`` actions, and a single proxy address per
  datum suffices.
* ``model="cuda"`` — strict FIFO streams; OmpSs must explicitly create,
  record and wait events for every cross-stream dependence and keep
  per-device addresses, paying host-side overhead per dependence edge.
"""

from repro.ompss.cholesky import OmpSsCholeskyResult, ompss_cholesky
from repro.ompss.matmul import OmpSsMatmulResult, ompss_matmul
from repro.ompss.runtime import DataRegion, OmpSsConfig, OmpSsRuntime, TaskHandle

__all__ = [
    "DataRegion",
    "OmpSsConfig",
    "OmpSsRuntime",
    "TaskHandle",
    "OmpSsCholeskyResult",
    "ompss_cholesky",
    "OmpSsMatmulResult",
    "ompss_matmul",
]
