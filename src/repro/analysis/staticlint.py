"""staticlint: AST-level enforcement of the rtsan lock discipline.

The dynamic sanitizer (:mod:`repro.core.sync`) checks the lock
discipline on the interleavings that actually run; this pass checks it
*lexically*, over every path in the source, so a guarded field touched
outside its lock is caught even if no test ever executes that branch.

Model: guarded state is declared per class with
``@guarded_by("_lock", "field", ...)``; an access to ``self.<field>``
is legal when it is lexically inside ``with self._lock:`` (or a ``with``
on a condition variable built over that lock), or when the enclosing
method is allowlisted — ``__init__`` (construction happens-before
publication) or ``@caller_locked("_lock")`` (the documented contract
that every caller already holds the lock; the dynamic sanitizer
verifies it at runtime).

Rules (ids are what ``rtsan: ignore[rule]`` waiver comments name):

* ``guarded-field`` — a ``@guarded_by`` attribute accessed outside the
  owning lock's lexical scope;
* ``cv-without-lock`` — ``wait``/``notify`` on a condition attribute
  outside a ``with`` on it (or its underlying lock);
* ``reentrant-with`` — nested ``with`` on the same non-reentrant lock
  (self-deadlock);
* ``lock-in-hot-path`` — a lock/CV constructed outside ``__init__`` /
  ``attach`` / module scope (locks are topology, not per-operation
  state);
* ``wall-clock-in-sim`` — ``time.time``/``time.monotonic`` under
  ``sim/`` (the simulator owns virtual time; wall-clock reads there
  break determinism);
* ``manual-broadcast-loop`` — a loop that ``enqueue_xfer``s the *same*
  operand to a per-iteration stream: a hand-rolled broadcast that
  serializes through the host root instead of riding a planned
  collective's pipelined schedule.

CLI: ``python -m repro.analysis.staticlint [paths...] [--json]``, exit
codes matching hsan (2 errors / 1 warnings / 0 clean).
"""

from __future__ import annotations

import ast
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Rule, Severity
from repro.analysis.waivers import parse_waivers

__all__ = [
    "STATIC_RULES",
    "Finding",
    "LintReport",
    "format_rule_catalog",
    "lint_paths",
    "lint_source",
    "main",
]

#: The static rule catalog. ``cv-without-lock`` shares its id with the
#: dynamic rule on purpose: same discipline, two enforcement points.
STATIC_RULES: Dict[str, Rule] = {
    r.id: r
    for r in [
        Rule(
            "guarded-field",
            Severity.ERROR,
            "an attribute declared @guarded_by(lock) is accessed outside "
            "a lexical `with self.<lock>:` scope and the method is not "
            "allowlisted as caller-locked",
            "wrap the access in `with self.<lock>:`, or decorate the "
            "method with @caller_locked('<lock>') if every caller "
            "already holds it",
        ),
        Rule(
            "cv-without-lock",
            Severity.ERROR,
            "wait/notify on a condition variable outside a `with` on the "
            "condition (or its underlying lock) — wakeups can be lost",
            "wrap the wait/notify in `with self.<condition>:`",
        ),
        Rule(
            "reentrant-with",
            Severity.ERROR,
            "nested `with` on the same non-reentrant lock — the inner "
            "acquire self-deadlocks",
            "make the lock reentrant (make_lock(..., reentrant=True)) "
            "or restructure so the inner scope takes no lock",
        ),
        Rule(
            "lock-in-hot-path",
            Severity.WARNING,
            "a lock or condition variable is constructed outside "
            "__init__/attach/module scope — per-operation lock creation "
            "defeats ownership tracking and costs allocation on a hot "
            "path",
            "create the lock once in __init__ (or the backend's attach) "
            "and reuse it",
        ),
        Rule(
            "wall-clock-in-sim",
            Severity.WARNING,
            "time.time()/time.monotonic() called under sim/ — the "
            "simulator owns virtual time, and wall-clock reads there "
            "make virtual schedules nondeterministic",
            "use the engine's virtual now() (backend.now()) instead",
        ),
        Rule(
            "manual-broadcast-loop",
            Severity.WARNING,
            "a loop enqueue_xfers a loop-invariant operand to a "
            "per-iteration stream — a hand-rolled broadcast that "
            "serializes every replica through the host root",
            "replace the loop with one planned collective "
            "(hs.broadcast / FlowContext.broadcast), which pipelines "
            "over peer-routable fabrics and degrades to the serial "
            "loop elsewhere; waive sites that are intentionally serial",
        ),
    ]
}

#: Methods whose body may touch guarded fields without the lock: object
#: construction happens-before any concurrent publication.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__"}

#: Scopes allowed to *create* locks: topology setup (construction, a
#: backend's ``attach``, module scope), not per-operation state.
_LOCK_CREATION_METHODS = _CONSTRUCTION_METHODS | {"attach", "<module>"}

_LOCK_FACTORIES = {"Lock", "RLock", "make_lock"}
_CV_FACTORIES = {"Condition", "make_condition"}
_CV_METHODS = {"wait", "wait_for", "notify", "notify_all"}
_WALL_CLOCK = {"time", "monotonic"}


@dataclass(frozen=True)
class Finding:
    """One static finding, pointing at a source line."""

    rule: str
    path: str
    line: int
    message: str

    @property
    def severity(self) -> Severity:
        return STATIC_RULES[self.rule].severity

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": STATIC_RULES[self.rule].hint,
        }

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity.value}"
            f"[{self.rule}]: {self.message}"
        )


# -- per-class lock model --------------------------------------------------------


def _call_name(node: ast.expr) -> Optional[str]:
    """The bare callee name of a call: ``Lock`` for ``threading.Lock``
    and plain ``Lock`` alike; None for anything more exotic."""
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name):
            return fn.id
        if isinstance(fn, ast.Attribute):
            return fn.attr
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``; otherwise None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _ClassModel:
    """What the lint knows about one class's synchronization."""

    #: field name -> owning lock attribute (from @guarded_by).
    guards: Dict[str, str] = field(default_factory=dict)
    #: lock attribute -> is it reentrant.
    locks: Dict[str, bool] = field(default_factory=dict)
    #: condition attribute -> underlying lock attribute (or None when
    #: the CV owns a private lock).
    conditions: Dict[str, Optional[str]] = field(default_factory=dict)


def _model_class(cls: ast.ClassDef) -> _ClassModel:
    model = _ClassModel()
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call) and _call_name(deco) == "guarded_by":
            args = [
                a.value
                for a in deco.args
                if isinstance(a, ast.Constant) and isinstance(a.value, str)
            ]
            if args:
                lock_attr, *fields = args
                for f in fields:
                    model.guards[f] = lock_attr
    # Lock/CV attributes are discovered from `self.X = <factory>(...)`
    # anywhere in the class body (usually __init__ or attach).
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        callee = _call_name(node.value)
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if callee in _LOCK_FACTORIES:
                model.locks[attr] = _lock_is_reentrant(node.value, callee)
            elif callee in _CV_FACTORIES:
                model.conditions[attr] = _cv_lock_attr(node.value)
    return model


def _lock_is_reentrant(call: ast.Call, callee: str) -> bool:
    if callee == "RLock":
        return True
    if callee == "make_lock":
        for kw in call.keywords:
            if (
                kw.arg == "reentrant"
                and isinstance(kw.value, ast.Constant)
            ):
                return bool(kw.value.value)
    return False


def _bound_names(node: ast.AST) -> Set[str]:
    """Every name bound anywhere inside ``node``: loop targets, plain
    assignments (aliases like ``s = streams[d]``), with-as names,
    walrus targets, comprehension variables."""
    bound: Set[str] = set()
    for n in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(n, (ast.For, ast.AsyncFor)):
            targets.append(n.target)
        elif isinstance(n, ast.Assign):
            targets.extend(n.targets)
        elif isinstance(n, (ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
            targets.append(n.target)
        elif isinstance(n, ast.withitem) and n.optional_vars is not None:
            targets.append(n.optional_vars)
        elif isinstance(n, ast.comprehension):
            targets.append(n.target)
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return bound


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _cv_lock_attr(call: ast.Call) -> Optional[str]:
    """The ``self.X`` a condition was built over, if any."""
    candidates: List[ast.expr] = []
    if call.args:
        candidates.append(call.args[0])
    candidates.extend(kw.value for kw in call.keywords if kw.arg == "lock")
    for cand in candidates:
        attr = _self_attr(cand)
        if attr is not None:
            return attr
    return None


# -- the per-file linter ---------------------------------------------------------


class _FileLinter:
    def __init__(self, path: str, in_sim: bool) -> None:
        self.path = path
        self.in_sim = in_sim
        self.findings: List[Finding] = []
        #: call positions already reported as manual broadcasts — nested
        #: loops both inspect the same call and must not double-report.
        self._mb_flagged: Set[Tuple[int, int]] = set()

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 0), message)
        )

    def lint_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._lint_class(node)
            else:
                self._lint_scope(node, _ClassModel(), set(), in_function=False)

    # -- classes ---------------------------------------------------------------

    def _lint_class(self, cls: ast.ClassDef) -> None:
        model = _model_class(cls)
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._lint_method(stmt, model)
            elif isinstance(stmt, ast.ClassDef):
                self._lint_class(stmt)

    def _lint_method(
        self, fn: ast.FunctionDef, model: _ClassModel
    ) -> None:
        held: Set[str] = set()
        exempt = fn.name in _CONSTRUCTION_METHODS
        for deco in fn.decorator_list:
            if isinstance(deco, ast.Call) and _call_name(deco) == "caller_locked":
                for a in deco.args:
                    if isinstance(a, ast.Constant) and isinstance(a.value, str):
                        held.add(a.value)
        self._walk(fn.body, model, held, fn.name, exempt)

    # -- statement walk with a lexical held-set --------------------------------

    def _walk(
        self,
        body: Sequence[ast.stmt],
        model: _ClassModel,
        held: Set[str],
        method: str,
        exempt: bool,
    ) -> None:
        for stmt in body:
            self._visit_stmt(stmt, model, held, method, exempt)

    def _visit_stmt(
        self,
        stmt: ast.stmt,
        model: _ClassModel,
        held: Set[str],
        method: str,
        exempt: bool,
    ) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_manual_broadcast(stmt)
        if isinstance(stmt, ast.With):
            entered: Set[str] = set()
            for item in stmt.items:
                self._check_expr(item.context_expr, model, held, method, exempt)
                attr = _self_attr(item.context_expr)
                if attr is None:
                    continue
                if attr in model.locks:
                    if attr in held and not model.locks[attr]:
                        self.emit(
                            "reentrant-with",
                            stmt,
                            f"nested `with self.{attr}:` on a "
                            "non-reentrant lock (self-deadlock)",
                        )
                    entered.add(attr)
                elif attr in model.conditions:
                    entered.add(attr)
                    under = model.conditions[attr]
                    if under is not None:
                        entered.add(under)
                    # Entering a CV built over an already-held
                    # non-reentrant lock is the same self-deadlock.
                    if (
                        under is not None
                        and under in held
                        and not model.locks.get(under, True)
                    ):
                        self.emit(
                            "reentrant-with",
                            stmt,
                            f"`with self.{attr}:` re-acquires "
                            f"non-reentrant self.{under} already held",
                        )
                elif attr in model.guards.values():
                    # A guard lock with no visible construction in this
                    # class — e.g. a property aliasing the owning
                    # scheduler's lock. Entering it still satisfies the
                    # guarded-field discipline (reentrancy unknown, so
                    # no reentrant-with check).
                    entered.add(attr)
            inner = held | entered
            self._walk(stmt.body, model, inner, method, exempt)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def may run after the enclosing `with` exited:
            # it inherits nothing. caller_locked still applies.
            self._lint_method(stmt, model)
            return
        if isinstance(stmt, ast.ClassDef):
            self._lint_class(stmt)
            return
        # Generic statement: check expressions, then recurse into any
        # nested statement lists (if/for/while/try bodies).
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._check_expr(node, model, held, method, exempt)
        for fname in ("body", "orelse", "finalbody", "handlers", "cases"):
            sub = getattr(stmt, fname, None)
            if not sub:
                continue
            for entry in sub:
                if isinstance(entry, ast.stmt):
                    self._visit_stmt(entry, model, held, method, exempt)
                elif hasattr(entry, "body"):  # ExceptHandler / match_case
                    self._walk(entry.body, model, held, method, exempt)

    # -- expression checks -----------------------------------------------------

    def _check_expr(
        self,
        expr: ast.expr,
        model: _ClassModel,
        held: Set[str],
        method: str,
        exempt: bool,
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue  # deferred execution; dynamic pass covers it
            if isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if (
                    attr is not None
                    and not exempt
                    and attr in model.guards
                    and model.guards[attr] not in held
                    and not self._held_via_condition(
                        model.guards[attr], model, held
                    )
                ):
                    self.emit(
                        "guarded-field",
                        node,
                        f"self.{attr} is @guarded_by("
                        f"{model.guards[attr]!r}) but "
                        f"self.{model.guards[attr]} is not held here",
                    )
            if isinstance(node, ast.Call):
                self._check_call(node, model, held, method, exempt)

    def _held_via_condition(
        self, lock_attr: str, model: _ClassModel, held: Set[str]
    ) -> bool:
        return any(
            model.conditions.get(c) == lock_attr for c in held
        )

    def _check_call(
        self,
        call: ast.Call,
        model: _ClassModel,
        held: Set[str],
        method: str,
        exempt: bool,
    ) -> None:
        fn = call.func
        # CV discipline: self.<cond>.wait()/notify() needs the CV (or
        # its lock) lexically held.
        if isinstance(fn, ast.Attribute) and fn.attr in _CV_METHODS:
            cond = _self_attr(fn.value)
            if cond is not None and cond in model.conditions and not exempt:
                under = model.conditions[cond]
                if cond not in held and (under is None or under not in held):
                    self.emit(
                        "cv-without-lock",
                        call,
                        f"self.{cond}.{fn.attr}() outside "
                        f"`with self.{cond}:`",
                    )
        # Lock construction outside topology-setup scope.
        callee = _call_name(call)
        if (
            callee in (_LOCK_FACTORIES | _CV_FACTORIES)
            and method not in _LOCK_CREATION_METHODS
        ):
            self.emit(
                "lock-in-hot-path",
                call,
                f"{callee}() constructed in {method}() — locks belong "
                "in __init__/attach or at module scope",
            )
        # Wall-clock reads under sim/.
        if (
            self.in_sim
            and isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "time"
            and fn.attr in _WALL_CLOCK
        ):
            self.emit(
                "wall-clock-in-sim",
                call,
                f"time.{fn.attr}() under sim/ — use the engine's "
                "virtual clock",
            )

    # -- manual broadcast loops ------------------------------------------------

    def _check_manual_broadcast(self, loop: ast.stmt) -> None:
        """Flag ``enqueue_xfer`` calls inside ``loop`` whose *stream*
        varies with the iteration while the *operand* does not.

        Per-iteration names are the loop's own targets plus everything
        bound in the body (``s = streams[d]`` aliases, nested loop
        targets, comprehension variables); an operand touching none of
        them is the same payload re-sent every iteration — a broadcast
        written by hand. Nested function bodies are skipped (deferred
        execution), and a call flagged by an inner loop is not
        re-reported by its enclosing loops.
        """
        dep = _bound_names(loop)
        stack: List[ast.AST] = [loop]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (isinstance(fn, ast.Attribute) and fn.attr == "enqueue_xfer"):
                continue
            stream_arg = node.args[0] if node.args else None
            op_arg = node.args[1] if len(node.args) > 1 else None
            for kw in node.keywords:
                if kw.arg == "stream":
                    stream_arg = kw.value
                elif kw.arg == "operand":
                    op_arg = kw.value
            if stream_arg is None or op_arg is None:
                continue
            if _names_in(stream_arg) & dep and not _names_in(op_arg) & dep:
                key = (node.lineno, node.col_offset)
                if key in self._mb_flagged:
                    continue
                self._mb_flagged.add(key)
                self.emit(
                    "manual-broadcast-loop",
                    node,
                    "enqueue_xfer of a loop-invariant operand to a "
                    "per-iteration stream — use a planned collective "
                    "(hs.broadcast) instead of a manual send loop",
                )

    # Module-level (non-class) statements reuse the same machinery with
    # an empty model; only lock-creation and wall-clock rules can fire.
    def _lint_scope(
        self,
        stmt: ast.stmt,
        model: _ClassModel,
        held: Set[str],
        in_function: bool,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk(stmt.body, model, set(), stmt.name, False)
            return
        self._visit_stmt(stmt, model, held, "<module>" if not in_function else "?", True)


# -- report ---------------------------------------------------------------------


@dataclass
class LintReport:
    """The result of linting a set of files."""

    files: int = 0
    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self) -> int:
        """CLI convention shared with hsan: 2/1/0."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files": self.files,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "waived": len(self.waived),
            "findings": [f.to_dict() for f in self.findings],
        }

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        verdict = (
            f"staticlint: {self.files} file(s): {len(self.errors)} "
            f"error(s), {len(self.warnings)} warning(s)"
            + (f", {len(self.waived)} waived" if self.waived else "")
        )
        lines.append(verdict)
        return "\n".join(lines)


def lint_source(
    source: str, path: str = "<string>", in_sim: bool = False
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one source string: ``(findings, waived)``."""
    waivers = parse_waivers(source, "rtsan", STATIC_RULES)
    linter = _FileLinter(path, in_sim)
    linter.lint_module(ast.parse(source, filename=path))
    kept: List[Finding] = []
    waived: List[Finding] = []
    for finding in linter.findings:
        rules = waivers.get(finding.line, ...)
        if rules is not ... and (rules is None or finding.rule in rules):
            waived.append(finding)
        else:
            kept.append(finding)
    return kept, waived


def _iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, files in os.walk(p):
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield p


def lint_paths(paths: Sequence[str]) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    report = LintReport()
    for path in _iter_py_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        in_sim = f"{os.sep}sim{os.sep}" in os.path.abspath(path)
        findings, waived = lint_source(source, path, in_sim=in_sim)
        report.files += 1
        report.findings.extend(findings)
        report.waived.extend(waived)
    report.findings.sort(
        key=lambda f: (f.severity is not Severity.ERROR, f.path, f.line)
    )
    return report


# -- CLI ------------------------------------------------------------------------


def format_rule_catalog(title: str, rules: Dict[str, Rule]) -> str:
    """One-line-per-rule catalog listing (shared with the hsan CLI)."""
    lines = [title]
    width = max(len(rid) for rid in rules)
    for rule in rules.values():
        lines.append(
            f"  {rule.id:<{width}}  {rule.severity.value:<7}  {rule.summary}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.staticlint",
        description="Statically lint the runtime's lock discipline.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package sources)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report to stdout"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the static rule catalog and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(format_rule_catalog("staticlint rules:", STATIC_RULES))
        return 0
    paths = args.paths
    if not paths:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    report = lint_paths(paths)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return report.exit_code()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
