"""Structured diagnostics and the hazard-rule catalog.

Every finding of the hazard analyzer — a data race, a lifetime lint, a
dangling wait — is a :class:`Diagnostic` carrying a stable rule id from
:data:`RULES`, a severity, the offending actions (by their
:attr:`~repro.core.actions.Action.display` labels and source sites), and
a fix hint. Rule ids are what ``# hsan: ignore[rule]`` waivers name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.sites import user_site

__all__ = ["Severity", "Rule", "RULES", "ActionRef", "Diagnostic"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe programs whose results are
    nondeterministic or wrong on a real platform; ``WARNING`` findings
    describe patterns that are almost always mistakes but can be benign.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    id: str
    severity: Severity
    summary: str
    hint: str


#: The rule catalog. Ids are stable: tests, waivers, and CI reference
#: them verbatim (see DESIGN.md for the prose catalog).
RULES: Dict[str, Rule] = {
    r.id: r
    for r in [
        Rule(
            "stream-race",
            Severity.ERROR,
            "cross-stream accesses to overlapping buffer ranges are not "
            "ordered by any event, sync, or barrier",
            "order the streams with event_stream_wait on the producing "
            "action's event, or synchronize between the accesses",
        ),
        Rule(
            "read-before-init",
            Severity.ERROR,
            "a compute task reads a buffer range that no transfer or "
            "earlier task ever wrote (uninitialized sink read)",
            "enqueue_xfer the range to the sink (or write it with an "
            "OUT-operand task) before reading it",
        ),
        Rule(
            "stale-read",
            Severity.WARNING,
            "a sink task reads a host-initialized buffer whose data was "
            "never transferred to the sink domain (reads zeros, not the "
            "host's values)",
            "enqueue_xfer(stream, buf) host-to-sink after the host "
            "writes and before the sink reads",
        ),
        Rule(
            "use-after-evict",
            Severity.ERROR,
            "a sink task reads a buffer range in a domain whose instance "
            "was evicted, with no re-transfer since (the re-instantiated "
            "range is zeros)",
            "enqueue_xfer the range back to the sink after buffer_evict "
            "before reading it again",
        ),
        Rule(
            "use-after-destroy",
            Severity.ERROR,
            "an action's operand references a buffer that was already "
            "destroyed",
            "move buffer_destroy after the last action touching the "
            "buffer (and a synchronization covering it)",
        ),
        Rule(
            "evict-in-flight",
            Severity.WARNING,
            "buffer_evict runs while earlier actions touching the "
            "instance may still be in flight (no host synchronization "
            "orders them before the evict); a real run raises "
            "HStreamsBusy here",
            "stream_synchronize (or wait the touching actions' events) "
            "before evicting",
        ),
        Rule(
            "missing-d2h",
            Severity.WARNING,
            "a sink task wrote a host-visible (wrapped) buffer but the "
            "result was never transferred back before the program ended "
            "(the host sees stale data)",
            "enqueue_xfer(stream, buf, XferDirection.SINK_TO_SRC) after "
            "the last sink write",
        ),
        Rule(
            "unwaited-event",
            Severity.WARNING,
            "an action's completion is never observed: no later action "
            "depends on it and no host synchronization covers it "
            "(fire-and-forget work)",
            "wait the returned event, synchronize the stream, or call "
            "thread_synchronize before the program ends",
        ),
        Rule(
            "deadlock",
            Severity.ERROR,
            "a wait can never be satisfied: it names an event that no "
            "action of this program fires, or the dependence graph "
            "contains a cycle",
            "only wait on events returned by this runtime's enqueue "
            "calls; break the cyclic wait",
        ),
        Rule(
            "failed-action",
            Severity.ERROR,
            "an action raised during execution (or timed out); its "
            "writes were rolled back and its dependents were poisoned",
            "inspect the recorded error, fix the kernel or mark the "
            "error transient and run under failure_policy='retry'; call "
            "clear_failure() before reusing the runtime",
        ),
        Rule(
            "cancelled-action",
            Severity.WARNING,
            "an action was cancelled without running because an "
            "upstream action it depends on (or conflicts with) failed",
            "fix the root failure named in the message; cancelled work "
            "must be re-enqueued after clear_failure()",
        ),
        Rule(
            "zero-length-operand",
            Severity.WARNING,
            "an operand covers zero bytes, so it imposes no ordering at "
            "all (empty ranges never conflict) — likely a size "
            "arithmetic bug",
            "check the offset/nbytes arithmetic; drop the operand if "
            "the empty range is intentional",
        ),
        # -- rtsan: the runtime's own lock-discipline sanitizer --------
        # (dynamic rules; see repro.core.sync and DESIGN.md §10)
        Rule(
            "lock-order-inversion",
            Severity.ERROR,
            "two runtime locks were acquired in both nesting orders on "
            "different paths (or a non-reentrant lock was re-acquired "
            "by its holder) — a potential deadlock",
            "pick one global acquisition order for the two locks and "
            "restructure the inverted path to follow it",
        ),
        Rule(
            "unguarded-access",
            Severity.ERROR,
            "a field declared @guarded_by(lock) was read or written "
            "without the owning lock held — a torn read or lost update "
            "under concurrency",
            "take the owning lock around the access, or mark the "
            "containing method @caller_locked if every caller already "
            "holds it",
        ),
        Rule(
            "cv-without-lock",
            Severity.ERROR,
            "a condition variable was waited on or notified without "
            "holding its lock — wakeups can be lost",
            "wrap the wait/notify in `with <the condition>:`",
        ),
        Rule(
            "blocking-under-lock",
            Severity.WARNING,
            "a blocking call (time.sleep, Event.wait) ran while holding "
            "a scheduler lock, stalling every thread that needs it",
            "move the blocking call outside the critical section, or "
            "wait on a condition variable tied to the lock instead",
        ),
        Rule(
            "invariant-violation",
            Severity.ERROR,
            "a scheduler deep-check failed after a transition: the "
            "conflict index, in-flight counters, or node lifecycle "
            "states disagree with a from-scratch recomputation",
            "this is a runtime bug, not a program bug — report it with "
            "the message's recomputation diff",
        ),
    ]
}


@dataclass(frozen=True)
class ActionRef:
    """A diagnostic's pointer at one offending action (or lifecycle op).

    ``site`` is the user-code source location of the enqueue (or
    buffer/sync call) when capture could determine one.
    """

    label: str
    seq: int = -1
    stream: Optional[str] = None
    site: Optional[Tuple[str, int]] = None

    @classmethod
    def from_action(
        cls, action, site: Optional[Tuple[str, int]] = None
    ) -> "ActionRef":
        """Ref for a live :class:`~repro.core.actions.Action`.

        Without an explicit ``site``, the shared
        :func:`repro.core.sites.user_site` frame walk attributes the
        *calling* user frame — ``None`` when there is none (e.g. a
        completion callback on a backend worker thread).
        """
        return cls(
            label=action.display,
            seq=action.seq,
            stream=action.stream.name if action.stream is not None else None,
            site=site if site is not None else user_site(),
        )

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"label": self.label, "seq": self.seq}
        if self.stream is not None:
            d["stream"] = self.stream
        if self.site is not None:
            d["file"], d["line"] = self.site
        return d

    def __str__(self) -> str:
        loc = f" ({self.site[0]}:{self.site[1]})" if self.site else ""
        lane = f" in {self.stream}" if self.stream else ""
        return f"{self.label}{lane}{loc}"


@dataclass
class Diagnostic:
    """One analyzer finding."""

    rule: str
    message: str
    actions: List[ActionRef] = field(default_factory=list)
    buffer: Optional[str] = None
    #: How many further occurrences were folded into this diagnostic
    #: (races on the same stream pair / buffer repeat per iteration).
    occurrences: int = 1

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    @property
    def hint(self) -> str:
        return RULES[self.rule].hint

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "buffer": self.buffer,
            "occurrences": self.occurrences,
            "actions": [a.to_dict() for a in self.actions],
            "hint": self.hint,
        }

    def format(self) -> str:
        """Human-readable multi-line rendering for the CLI."""
        lines = [f"{self.severity.value}[{self.rule}]: {self.message}"]
        for ref in self.actions:
            lines.append(f"    at {ref}")
        if self.occurrences > 1:
            lines.append(f"    ({self.occurrences} occurrences folded)")
        lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)
