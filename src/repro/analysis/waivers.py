"""Shared ``# <tag>: ignore[rule]`` waiver parsing.

Both analyzers use the same comment syntax with different tags: hsan
(:mod:`repro.analysis.checker`) reads ``# hsan: ignore[...]`` from
checked *programs*; staticlint (:mod:`repro.analysis.staticlint`) reads
``# rtsan: ignore[...]`` from the runtime's own sources. A bare
``ignore`` waives every rule on that line; ``ignore[rule-a, rule-b]``
waives only the named rules (and rejects unknown ids so stale waivers
can't linger silently).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Optional, Set

__all__ = ["parse_waivers"]

_WAIVER_TEMPLATE = r"#\s*{tag}:\s*ignore(?:\[([a-zA-Z0-9_,\- ]*)\])?"


def parse_waivers(
    source: str, tag: str, known_rules: Iterable[str]
) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to waived rule sets (``None`` = all).

    ``tag`` names the analyzer (``"hsan"`` or ``"rtsan"``);
    ``known_rules`` is its rule catalog — naming a rule outside it in a
    waiver raises ``ValueError``.
    """
    pattern = re.compile(_WAIVER_TEMPLATE.format(tag=re.escape(tag)))
    known = set(known_rules)
    waivers: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = pattern.search(line)
        if not m:
            continue
        if m.group(1) is None:
            waivers[lineno] = None
        else:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            unknown = rules - known
            if unknown:
                raise ValueError(
                    f"line {lineno}: unknown rule(s) in {tag} waiver: "
                    + ", ".join(sorted(unknown))
                )
            waivers[lineno] = rules
    return waivers
