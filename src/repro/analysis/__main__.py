"""CLI entry point: ``python -m repro.analysis <program.py> ...``.

Checks each program with :func:`~repro.analysis.checker.check_program`
and exits 2 if any program has error-severity findings, 1 if the worst
finding is a warning, 0 when everything is clean. ``--json`` emits one
machine-readable report object per program instead of prose.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.checker import check_program


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "hsan: capture-run hStreams programs and report stream "
            "races, buffer-lifetime hazards, and unsatisfiable waits"
        ),
    )
    parser.add_argument("programs", nargs="*", help="program file(s) to check")
    parser.add_argument(
        "--json", action="store_true", help="emit JSON reports instead of prose"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogs (hsan dynamic rules and the "
        "staticlint lock-discipline rules) and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.analysis.diagnostics import RULES
        from repro.analysis.staticlint import STATIC_RULES, format_rule_catalog

        print(format_rule_catalog("hsan rules (dynamic, per program):", RULES))
        print()
        print(
            format_rule_catalog(
                "staticlint rules (static, over runtime sources):",
                STATIC_RULES,
            )
        )
        return 0
    if not args.programs:
        parser.error("the following arguments are required: programs")

    worst = 0
    for path in args.programs:
        try:
            report = check_program(path)
        except (OSError, ValueError) as exc:
            print(f"hsan: {path}: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.format())
        worst = max(worst, report.exit_code())
    return worst


if __name__ == "__main__":
    sys.exit(main())
