"""Happens-before hazard analyzer for hStreams programs (``hsan``).

The analyzer answers the question the relaxed streaming model makes
easy to get wrong: *which pairs of actions are actually ordered?* It
capture-runs a program (recording the full action graph without
dispatching any work), builds the happens-before relation from the
recorded dependence edges, events, and host synchronizations, and
reports:

- ``stream-race`` — conflicting cross-stream accesses with no ordering;
- buffer-lifetime lints — ``read-before-init``, ``stale-read``,
  ``use-after-evict``, ``use-after-destroy``, ``evict-in-flight``,
  ``missing-d2h``;
- program-shape lints — ``unwaited-event``, ``deadlock``,
  ``zero-length-operand``.

Entry points: :func:`check_program` / the ``python -m repro.analysis``
CLI for whole programs, :func:`analyze_trace` for captured traces, and
:func:`attach_checker` for online checking during real execution. See
DESIGN.md ("Happens-before model and the hazard analyzer") for the
model and the full rule catalog.
"""

from repro.analysis.capture import (
    ActionEvent,
    BufferEvent,
    CaptureBackend,
    ProgramCapture,
    ProgramTrace,
    StreamEvent,
    SyncEvent,
    capture_session,
)
from repro.analysis.checker import (
    OnlineChecker,
    Report,
    RuleEngine,
    analyze_trace,
    attach_checker,
    check_program,
)
from repro.analysis.diagnostics import RULES, ActionRef, Diagnostic, Rule, Severity
from repro.analysis.hb import HOST, HBState, RaceDetector, VectorClock
from repro.analysis.lints import IntervalSet

__all__ = [
    "ActionEvent",
    "ActionRef",
    "BufferEvent",
    "CaptureBackend",
    "Diagnostic",
    "HBState",
    "HOST",
    "IntervalSet",
    "OnlineChecker",
    "ProgramCapture",
    "ProgramTrace",
    "RaceDetector",
    "Report",
    "RULES",
    "Rule",
    "RuleEngine",
    "Severity",
    "StreamEvent",
    "SyncEvent",
    "VectorClock",
    "analyze_trace",
    "attach_checker",
    "capture_session",
    "check_program",
]
