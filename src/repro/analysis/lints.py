"""Buffer-lifetime and program-state lint passes over a captured trace.

Where the happens-before engine answers "can these two accesses
reorder?", the lints answer "does this access even make sense given the
life of the buffer instance it touches?" — reads of never-written
ranges, reads of evicted instances, writes that never make it back to
the host, completions nobody ever observes, and waits that can never be
satisfied. Each lint consumes the same program-ordered event feed the
HB engine does and emits :class:`~repro.analysis.diagnostics.Diagnostic`
objects through a shared deduplicating sink.

The lints deliberately judge the program in *capture order* (the one
interleaving the source thread actually produced); pairs of actions the
runtime could reorder are the race detector's jurisdiction, so the two
layers are complementary rather than overlapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.capture import ActionEvent, BufferEvent
from repro.analysis.diagnostics import ActionRef, Diagnostic
from repro.analysis.hb import HBState, instance_accesses
from repro.core.actions import ActionKind

# Re-exported for compatibility: the interval algebra and the coherence
# state machine now live in the runtime's memory subsystem, and the
# lints replay the very same committed transitions the live
# MemoryManager performs (see repro.core.memory).
from repro.core.memory import (  # noqa: F401  (IntervalSet re-export)
    BufferCoherence,
    IntervalSet,
    apply_action_writes,
)

__all__ = [
    "IntervalSet",
    "LintPass",
    "BufferStateLint",
    "UnwaitedEventLint",
    "DeadlockLint",
    "ZeroLengthOperandLint",
]


class LintPass:
    """A rule pass over the program-ordered event feed.

    ``emit(diagnostic, key)`` routes findings through the engine's
    deduplicating sink; ``key=None`` always appends.
    """

    def __init__(self, emit) -> None:
        self._emit = emit

    def feed(self, event, hb: HBState) -> None:
        """Incorporate one trace event."""

    def finish(self, hb: HBState) -> None:
        """Emit end-of-program findings."""


def _ref(event: ActionEvent) -> ActionRef:
    action = event.action
    return ActionRef(
        label=action.display,
        seq=action.seq,
        stream=action.stream.name if action.stream else None,
        site=event.site,
    )


class _BufState:
    """Per-buffer lint state: a replayed coherence record plus the
    lint-only bookkeeping (destroy site, touchers, last sink write)."""

    __slots__ = (
        "coh",
        "destroyed_site",
        "touchers",
        "last_sink_write",
    )

    def __init__(self, buffer) -> None:
        #: The shared coherence state machine, replayed in capture
        #: order (the live MemoryManager commits the same transitions
        #: at completion time).
        self.coh = BufferCoherence(buffer)
        self.destroyed_site: Optional[Tuple[str, int]] = None
        #: domain -> [(seq, ActionRef)] of actions touching the instance
        #: (pruned of host-observed entries at each evict).
        self.touchers: Dict[int, List[Tuple[int, ActionRef]]] = {}
        self.last_sink_write: Optional[ActionRef] = None

    @property
    def buffer(self):
        return self.coh.buffer

    @property
    def wrapped(self) -> bool:
        return self.coh.wrapped

    @property
    def lost(self) -> Dict[int, IntervalSet]:
        return self.coh.lost

    def valid_in(self, domain: int) -> IntervalSet:
        return self.coh.valid_in(domain)


class BufferStateLint(LintPass):
    """Buffer-lifetime rules: ``read-before-init``, ``stale-read``,
    ``use-after-evict``, ``use-after-destroy``, ``evict-in-flight``,
    and ``missing-d2h``."""

    def __init__(self, emit) -> None:
        super().__init__(emit)
        self._bufs: Dict[int, _BufState] = {}

    def _state(self, buffer) -> _BufState:
        st = self._bufs.get(buffer.uid)
        if st is None:
            st = self._bufs[buffer.uid] = _BufState(buffer)
        return st

    # -- event feed ------------------------------------------------------------

    def feed(self, event, hb: HBState) -> None:
        if isinstance(event, BufferEvent):
            self._feed_buffer(event, hb)
        elif isinstance(event, ActionEvent):
            self._feed_action(event)

    def _feed_buffer(self, ev: BufferEvent, hb: HBState) -> None:
        st = self._state(ev.buffer)
        if ev.kind == "destroy":
            st.destroyed_site = ev.site
        elif ev.kind == "evict":
            domain = ev.domain
            inflight = [
                (seq, ref)
                for seq, ref in st.touchers.get(domain, [])
                if not hb.host_observed(seq)
            ]
            st.touchers[domain] = []
            if inflight:
                refs = [ref for _, ref in inflight[:4]]
                self._emit(
                    Diagnostic(
                        rule="evict-in-flight",
                        message=(
                            f"buffer_evict({st.buffer.name!r}, domain "
                            f"{domain}) at "
                            + (f"{ev.site[0]}:{ev.site[1]}" if ev.site else "?")
                            + f" while {len(inflight)} earlier action(s) "
                            "touching the instance are not covered by any "
                            "host synchronization"
                        ),
                        actions=refs,
                        buffer=st.buffer.name,
                    ),
                    key=("evict-in-flight", st.buffer.uid, domain),
                )
            # Whatever was valid at the sink is gone; a later implicit
            # re-instantiation starts from zeros. (Dirty ranges stay:
            # the unretrieved result is still missing at the host.)
            st.coh.note_evict(domain)

    def _feed_action(self, ev: ActionEvent) -> None:
        action = ev.action
        for op in action.operands:
            st = self._state(op.buffer)
            if st.destroyed_site is not None:
                where = st.destroyed_site
                self._emit(
                    Diagnostic(
                        rule="use-after-destroy",
                        message=(
                            f"{action.display!r} references buffer "
                            f"{st.buffer.name!r}, destroyed at "
                            + (f"{where[0]}:{where[1]}" if where else "?")
                        ),
                        actions=[_ref(ev)],
                        buffer=st.buffer.name,
                    ),
                    key=("use-after-destroy", st.buffer.uid, action.seq),
                )
        # Reads are judged against the state *before* this action's own
        # writes land (an INOUT operand does not initialize itself).
        accesses = list(instance_accesses(action))
        for domain, op, reads, _writes in accesses:
            st = self._state(op.buffer)
            st.touchers.setdefault(domain, []).append((action.seq, _ref(ev)))
            if reads and action.kind is ActionKind.COMPUTE and op.nbytes > 0:
                self._check_read(ev, st, domain, op)
        # Write-side transitions are the memory subsystem's committed
        # state machine, replayed here in capture order.
        apply_action_writes(lambda b: self._state(b).coh, action)
        for domain, op, _reads, writes in accesses:
            if (
                writes
                and action.kind is ActionKind.COMPUTE
                and domain != 0
                and self._state(op.buffer).wrapped
            ):
                self._state(op.buffer).last_sink_write = _ref(ev)

    def _check_read(self, ev: ActionEvent, st: _BufState, domain, op) -> None:
        if domain == 0:
            # Host instances are allocated zeroed by the runtime and, in
            # the simulation benchmarks, deliberately carry synthetic
            # data nobody initializes; the hazard this family describes
            # is the *sink* read of data that never left the host.
            return
        if st.valid_in(domain).covers(op.offset, op.end):
            return
        where = f"[{op.offset}, {op.end})"
        if domain in st.lost and st.lost[domain].intersects(op.offset, op.end):
            self._emit(
                Diagnostic(
                    rule="use-after-evict",
                    message=(
                        f"{ev.action.display!r} reads buffer "
                        f"{st.buffer.name!r} {where} in domain {domain}, "
                        "but the instance was evicted and the range never "
                        "re-transferred (it re-instantiates as zeros)"
                    ),
                    actions=[_ref(ev)],
                    buffer=st.buffer.name,
                ),
                key=("use-after-evict", st.buffer.uid, domain),
            )
        elif st.wrapped and domain != 0:
            self._emit(
                Diagnostic(
                    rule="stale-read",
                    message=(
                        f"{ev.action.display!r} reads buffer "
                        f"{st.buffer.name!r} {where} in domain {domain}, "
                        "but the host-initialized data was never "
                        "transferred there (the sink instance is zeros)"
                    ),
                    actions=[_ref(ev)],
                    buffer=st.buffer.name,
                ),
                key=("stale-read", st.buffer.uid, domain),
            )
        else:
            self._emit(
                Diagnostic(
                    rule="read-before-init",
                    message=(
                        f"{ev.action.display!r} reads buffer "
                        f"{st.buffer.name!r} {where} in domain {domain}, "
                        "but no transfer or earlier task ever wrote that "
                        "range (uninitialized read)"
                    ),
                    actions=[_ref(ev)],
                    buffer=st.buffer.name,
                ),
                key=("read-before-init", st.buffer.uid, domain),
            )

    # -- end of program --------------------------------------------------------

    def finish(self, hb: HBState) -> None:
        for st in self._bufs.values():
            dirty = st.coh.dirty_union()
            if st.wrapped and dirty:
                spans = ", ".join(f"[{s}, {e})" for s, e in dirty.spans()[:4])
                self._emit(
                    Diagnostic(
                        rule="missing-d2h",
                        message=(
                            f"buffer {st.buffer.name!r} wraps host memory "
                            f"and was written at the sink ({spans}), but "
                            "the result was never transferred back — the "
                            "host array still holds pre-offload data"
                        ),
                        actions=(
                            [st.last_sink_write] if st.last_sink_write else []
                        ),
                        buffer=st.buffer.name,
                    ),
                    key=("missing-d2h", st.buffer.uid),
                )


class UnwaitedEventLint(LintPass):
    """``unwaited-event``: completions the program never observes.

    An action's completion is observed when a later action depends on
    its event, or a host synchronization (explicit wait, stream
    synchronize, thread synchronize) covers it — directly or through a
    dependent. Only the *tail* of an unobserved chain is reported.
    """

    def __init__(self, emit) -> None:
        super().__init__(emit)
        self._actions: List[ActionEvent] = []

    def feed(self, event, hb: HBState) -> None:
        if isinstance(event, ActionEvent):
            self._actions.append(event)

    def finish(self, hb: HBState) -> None:
        by_stream: Dict[str, List[ActionEvent]] = {}
        for ev in self._actions:
            seq = ev.action.seq
            if hb.host_observed(seq) or seq in hb.has_dependent:
                continue
            lane = ev.action.stream.name if ev.action.stream else "?"
            by_stream.setdefault(lane, []).append(ev)
        for lane, evs in by_stream.items():
            diag = Diagnostic(
                rule="unwaited-event",
                message=(
                    f"{len(evs)} action(s) in stream {lane} complete "
                    "unobserved: nothing waits their events and no host "
                    "synchronization covers them before the program ends"
                ),
                actions=[_ref(e) for e in evs[:4]],
            )
            diag.occurrences = len(evs)
            self._emit(diag, key=None)


class DeadlockLint(LintPass):
    """``deadlock``: waits that can never be satisfied.

    The enqueue order of a single runtime is a topological order of its
    dependence graph, so a *true* in-runtime cycle cannot be expressed
    through the public API (see DESIGN.md); what programs actually
    write is the degenerate cycle — a wait on an event no action of
    this program fires (a bare event, or one from another runtime whose
    work is mutually waiting). Defensively, a back edge in a hand-built
    trace is reported as a cycle too.
    """

    def feed(self, event, hb: HBState) -> None:
        if not isinstance(event, ActionEvent):
            return
        if event.dangling:
            names = ", ".join(event.dangling)
            self._emit(
                Diagnostic(
                    rule="deadlock",
                    message=(
                        f"{event.action.display!r} waits on {names}: no "
                        "action of this program fires that event, so the "
                        "wait can never be satisfied (cyclic or dangling "
                        "cross-stream wait)"
                    ),
                    actions=[_ref(event)],
                ),
                key=("deadlock", event.action.seq),
            )
        for dep in event.dep_seqs:
            if dep >= event.action.seq:
                self._emit(
                    Diagnostic(
                        rule="deadlock",
                        message=(
                            f"dependence cycle: {event.action.display!r} "
                            f"(seq {event.action.seq}) waits on seq {dep}, "
                            "which does not precede it in enqueue order"
                        ),
                        actions=[_ref(event)],
                    ),
                    key=("deadlock-cycle", event.action.seq, dep),
                )


class ZeroLengthOperandLint(LintPass):
    """``zero-length-operand``: empty ranges order nothing."""

    def feed(self, event, hb: HBState) -> None:
        if not isinstance(event, ActionEvent):
            return
        for op in event.action.operands:
            if op.nbytes == 0:
                self._emit(
                    Diagnostic(
                        rule="zero-length-operand",
                        message=(
                            f"{event.action.display!r} declares a "
                            f"zero-length operand on buffer "
                            f"{op.buffer.name!r} at offset {op.offset}: "
                            "empty ranges never conflict, so this operand "
                            "imposes no ordering at all"
                        ),
                        actions=[_ref(event)],
                        buffer=op.buffer.name,
                    ),
                    key=("zero-length-operand", event.site or event.action.seq),
                )
