"""The happens-before engine: vector clocks over streams, events, and
host syncs, plus the cross-stream data-race detector.

Ordering in an hStreams program comes from exactly three mechanisms:

1. **intra-stream FIFO policy** — a stream orders a new action after its
   conflicting predecessors (relaxed) or its immediate predecessor
   (strict FIFO); the scheduler resolves these into explicit dependence
   edges at admission, which capture records per action;
2. **events** — ``event_stream_wait`` adds cross-stream edges from the
   waited actions to the sync action;
3. **host synchronization** — once the source thread blocks on work
   (``event_wait`` / ``stream_synchronize`` / ``thread_synchronize``),
   everything it observed happens-before every action it enqueues
   afterwards.

:class:`HBState` assigns every action a :class:`VectorClock` with one
component per stream (plus the host): the clock is the join of the
clocks of its dependence edges and of the host's clock at enqueue time,
ticked in the action's own stream component. Note the subtlety of the
relaxed FIFO semantic: two non-conflicting actions of the *same* stream
are genuinely unordered (they may execute and complete out of order),
so a stream's component counts admissions but a larger count does *not*
imply ordering over smaller ones. The clocks are therefore the
reporting/observability layer, while the authoritative happens-before
relation is the exact transitive closure of the recorded edges, kept as
per-action ancestor bitmasks (a dense equivalent of one clock component
per action): :meth:`HBState.happens_before` is sound *and* complete
with respect to the captured edges.

:class:`RaceDetector` consumes the same event feed: every pair of
actions in different streams with conflicting operand ranges on the
same buffer *instance* (same domain) where neither happens-before the
other is a ``stream-race`` diagnostic — the runtime is free to reorder
them, so the program's result depends on scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.capture import ActionEvent, SyncEvent
from repro.analysis.diagnostics import ActionRef, Diagnostic

# Re-exported for compatibility: the physical-access enumeration moved
# into the runtime's memory subsystem, which shares it with the live
# coherence state machine (see repro.core.memory).
from repro.core.memory import instance_accesses  # noqa: F401

__all__ = ["HOST", "VectorClock", "HBState", "RaceDetector", "instance_accesses"]

#: Clock component of the source (host) thread.
HOST = -1


class VectorClock:
    """An immutable mapping from stream id (or :data:`HOST`) to count."""

    __slots__ = ("_c",)

    def __init__(self, comps: Optional[Dict[int, int]] = None):
        self._c: Dict[int, int] = dict(comps) if comps else {}

    def get(self, key: int) -> int:
        return self._c.get(key, 0)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum."""
        if not other._c:
            return self
        if not self._c:
            return other
        merged = dict(self._c)
        for k, v in other._c.items():
            if v > merged.get(k, 0):
                merged[k] = v
        return VectorClock(merged)

    def tick(self, key: int, value: int) -> "VectorClock":
        """A copy with component ``key`` set to ``value``."""
        merged = dict(self._c)
        merged[key] = value
        return VectorClock(merged)

    def dominates(self, other: "VectorClock") -> bool:
        """True when every component is >= the other's."""
        return all(self.get(k) >= v for k, v in other._c.items())

    def as_dict(self) -> Dict[int, int]:
        return dict(self._c)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{'host' if k == HOST else f's{k}'}:{v}"
            for k, v in sorted(self._c.items())
        )
        return "{" + inner + "}"


class HBState:
    """Incremental happens-before over a captured (or live) event feed.

    Feed :class:`~repro.analysis.capture.ActionEvent` and
    :class:`~repro.analysis.capture.SyncEvent` objects in program order
    via :meth:`feed`; query with :meth:`happens_before` /
    :meth:`ordered` / :meth:`host_observed` at any point.
    """

    def __init__(self) -> None:
        self._bit: Dict[int, int] = {}  # action seq -> bitmask bit
        self._anc: Dict[int, int] = {}  # action seq -> ancestor closure
        self._clock: Dict[int, VectorClock] = {}
        self._nbits = 0
        self._host_anc = 0
        self._host_clock = VectorClock()
        self._host_ticks = 0
        self._stream_anc: Dict[int, int] = {}
        self._stream_clock: Dict[int, VectorClock] = {}
        self._stream_count: Dict[int, int] = {}
        self._all_anc = 0
        #: Seqs that appear as a dependence of some later action.
        self.has_dependent: set = set()

    # -- construction ----------------------------------------------------------

    def feed(self, event) -> None:
        """Incorporate one trace event (others are ignored)."""
        if isinstance(event, ActionEvent):
            self._feed_action(event)
        elif isinstance(event, SyncEvent):
            self._feed_sync(event)

    def _feed_action(self, ev: ActionEvent) -> None:
        action = ev.action
        seq = action.seq
        sid = action.stream.id if action.stream is not None else HOST
        bit = 1 << self._nbits
        self._nbits += 1
        # Enqueue happens after every host sync so far: the host's
        # observations order before this action.
        mask = bit | self._host_anc
        clock = self._host_clock
        for dep in ev.dep_seqs:
            dep_anc = self._anc.get(dep)
            if dep_anc is not None:
                mask |= dep_anc
                clock = clock.join(self._clock[dep])
                self.has_dependent.add(dep)
        idx = self._stream_count.get(sid, 0) + 1
        self._stream_count[sid] = idx
        clock = clock.tick(sid, idx)
        self._bit[seq] = bit
        self._anc[seq] = mask
        self._clock[seq] = clock
        self._stream_anc[sid] = self._stream_anc.get(sid, 0) | mask
        self._stream_clock[sid] = (
            self._stream_clock.get(sid, VectorClock()).join(clock)
        )
        self._all_anc |= mask

    def _feed_sync(self, ev: SyncEvent) -> None:
        if ev.kind == "event_wait":
            for seq in ev.seqs:
                anc = self._anc.get(seq)
                if anc is not None:
                    self._host_anc |= anc
                    self._host_clock = self._host_clock.join(self._clock[seq])
        elif ev.kind == "stream_synchronize":
            sid = ev.stream_id
            self._host_anc |= self._stream_anc.get(sid, 0)
            self._host_clock = self._host_clock.join(
                self._stream_clock.get(sid, VectorClock())
            )
        elif ev.kind == "thread_synchronize":
            self._host_anc |= self._all_anc
            for clock in self._stream_clock.values():
                self._host_clock = self._host_clock.join(clock)
        self._host_ticks += 1
        self._host_clock = self._host_clock.tick(HOST, self._host_ticks)

    # -- queries ---------------------------------------------------------------

    def knows(self, seq: int) -> bool:
        """Whether an action with this seq was fed."""
        return seq in self._bit

    def happens_before(self, a_seq: int, b_seq: int) -> bool:
        """True when action ``a`` is ordered before action ``b``."""
        bit = self._bit.get(a_seq)
        if bit is None or a_seq == b_seq:
            return False
        return bool(self._anc.get(b_seq, 0) & bit)

    def ordered(self, a_seq: int, b_seq: int) -> bool:
        """True when the two actions are ordered either way."""
        return self.happens_before(a_seq, b_seq) or self.happens_before(
            b_seq, a_seq
        )

    def host_observed(self, seq: int) -> bool:
        """Whether a host sync so far covers this action's completion."""
        return bool(self._host_anc & self._bit.get(seq, 0))

    def clock(self, seq: int) -> VectorClock:
        """The action's vector clock (empty if unknown)."""
        return self._clock.get(seq, VectorClock())


class _Access:
    """One recorded instance access, for race pairing."""

    __slots__ = ("seq", "stream_id", "offset", "end", "writes", "ref")

    def __init__(self, seq, stream_id, offset, end, writes, ref):
        self.seq = seq
        self.stream_id = stream_id
        self.offset = offset
        self.end = end
        self.writes = writes
        self.ref = ref


class RaceDetector:
    """Pairs conflicting unordered cross-stream accesses into
    ``stream-race`` diagnostics.

    History is pruned FastTrack-style: an access identical in (stream,
    range, mode) to an older one that happens-before it *supersedes*
    the older entry — any future race with the superseded access is
    also a race with its successor, so iterative pipelines keep the
    history bounded by (streams x distinct ranges), not program length.
    """

    def __init__(self, emit) -> None:
        #: ``emit(diagnostic, key)`` sink (deduplicates + counts).
        self._emit = emit
        # (buffer uid, domain) -> {(stream, off, end, writes): [_Access]}
        self._hist: Dict[Tuple[int, int], Dict[tuple, List[_Access]]] = {}

    def feed(self, event, hb: HBState) -> None:
        if not isinstance(event, ActionEvent):
            return
        action = event.action
        ref = ActionRef(
            label=action.display,
            seq=action.seq,
            stream=action.stream.name if action.stream else None,
            site=event.site,
        )
        for domain, op, _reads, writes in instance_accesses(action):
            if op.nbytes == 0:
                continue  # flagged separately as zero-length-operand
            acc = _Access(
                action.seq, action.stream.id, op.offset, op.end, writes, ref
            )
            buckets = self._hist.setdefault((op.buffer.uid, domain), {})
            self._check(acc, op, domain, buckets, hb)
            self._insert(acc, buckets, hb)

    def finish(self, hb: HBState) -> None:
        """Races are emitted incrementally; nothing to flush."""

    def _check(self, acc, op, domain, buckets, hb: HBState) -> None:
        for key, entries in buckets.items():
            _, o_off, o_end, o_writes = key
            if not (o_writes or acc.writes):
                continue  # read/read never races
            if not (o_off < acc.end and acc.offset < o_end):
                continue  # disjoint ranges
            for prior in entries:
                if prior.stream_id == acc.stream_id:
                    continue  # FIFO policy orders same-stream conflicts
                if hb.happens_before(prior.seq, acc.seq):
                    continue
                if prior.writes and acc.writes:
                    kind = "WAW"
                elif prior.writes:
                    kind = "RAW"
                else:
                    kind = "WAR"
                lo = max(o_off, acc.offset)
                hi = min(o_end, acc.end)
                diag = Diagnostic(
                    rule="stream-race",
                    message=(
                        f"{kind} race on buffer {op.buffer.name!r} bytes "
                        f"[{lo}, {hi}) in domain {domain}: "
                        f"{prior.ref.label!r} (stream {prior.ref.stream}, "
                        f"clock {hb.clock(prior.seq)}) and "
                        f"{acc.ref.label!r} (stream {acc.ref.stream}, "
                        f"clock {hb.clock(acc.seq)}) are unordered"
                    ),
                    actions=[prior.ref, acc.ref],
                    buffer=op.buffer.name,
                )
                self._emit(
                    diag,
                    key=(
                        "stream-race",
                        op.buffer.uid,
                        domain,
                        min(prior.stream_id, acc.stream_id),
                        max(prior.stream_id, acc.stream_id),
                        kind,
                    ),
                )

    def _insert(self, acc: _Access, buckets, hb: HBState) -> None:
        key = (acc.stream_id, acc.offset, acc.end, acc.writes)
        entries = buckets.setdefault(key, [])
        # Supersede entries ordered before the newcomer (sound: see
        # class docstring); keep genuinely concurrent ones.
        entries[:] = [e for e in entries if not hb.happens_before(e.seq, acc.seq)]
        entries.append(acc)
