"""Back-compat import path for the capture machinery.

The capture primitives (:class:`CaptureBackend`, the shadow-window
policy replay, the :class:`ProgramTrace` event records) moved to
:mod:`repro.core.capture` when graph replay (:mod:`repro.core.replay`)
started sharing them — ``core`` cannot depend on ``analysis``. This
module re-exports everything so existing analyzer-facing imports keep
working unchanged.
"""

from __future__ import annotations

from repro.core.capture import (
    ActionEvent,
    BufferEvent,
    CaptureBackend,
    ProgramCapture,
    ProgramTrace,
    StreamEvent,
    SyncEvent,
    capture_session,
    policy_dep_seqs,
)
from repro.core.capture import _ShadowWindow  # noqa: F401  (checker/tests)
from repro.core.sites import user_site as _user_site  # noqa: F401

__all__ = [
    "ActionEvent",
    "SyncEvent",
    "BufferEvent",
    "StreamEvent",
    "ProgramTrace",
    "ProgramCapture",
    "CaptureBackend",
    "capture_session",
    "policy_dep_seqs",
]
