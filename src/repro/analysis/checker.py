"""The hazard checker: rule engine, program checker, and online mode.

:class:`RuleEngine` wires the happens-before engine, the race detector,
and the lint passes behind one deduplicating diagnostic sink;
:func:`analyze_trace` runs it over a captured
:class:`~repro.analysis.capture.ProgramTrace`.

:func:`check_program` is the whole pipeline for a program file: run it
inside :func:`~repro.analysis.capture.capture_session` (so every runtime
it constructs records instead of executing), analyze every captured
trace, and apply ``# hsan: ignore[rule]`` waivers from the program
source. It backs the CLI (``python -m repro.analysis``).

:class:`OnlineChecker` feeds the same rule engine from live scheduler
callbacks during a *real* run — hazards surface as the program executes,
at the cost of only seeing the interleaving that actually happened.
"""

from __future__ import annotations

import contextlib
import runpy
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import RULES, ActionRef, Diagnostic, Severity
from repro.analysis.waivers import parse_waivers as parse_shared_waivers
from repro.analysis.hb import HBState, RaceDetector
from repro.analysis.lints import (
    BufferStateLint,
    DeadlockLint,
    UnwaitedEventLint,
    ZeroLengthOperandLint,
)
from repro.core.capture import (
    ActionEvent,
    BufferEvent,
    ProgramTrace,
    SyncEvent,
    capture_session,
    policy_dep_seqs,
)
from repro.core.scheduler import SchedulerObserver
from repro.core.sites import user_site as _user_site

__all__ = [
    "RuleEngine",
    "analyze_trace",
    "Report",
    "check_program",
    "OnlineChecker",
    "attach_checker",
]


class RuleEngine:
    """All rule passes behind one deduplicating diagnostic sink.

    Passes emit through :meth:`_emit` with an optional dedup key; a
    repeat of a live key folds into the first diagnostic's
    ``occurrences`` count instead of producing a new entry (iterative
    pipelines would otherwise report the same race once per iteration).
    """

    def __init__(self) -> None:
        self.hb = HBState()
        self.diagnostics: List[Diagnostic] = []
        self._by_key: Dict[tuple, Diagnostic] = {}
        self._passes = [
            RaceDetector(self._emit),
            BufferStateLint(self._emit),
            UnwaitedEventLint(self._emit),
            DeadlockLint(self._emit),
            ZeroLengthOperandLint(self._emit),
        ]

    def _emit(self, diag: Diagnostic, key: Optional[tuple] = None) -> None:
        if key is not None:
            prior = self._by_key.get(key)
            if prior is not None:
                prior.occurrences += 1
                return
            self._by_key[key] = diag
        self.diagnostics.append(diag)

    def feed(self, event: Any) -> None:
        """Incorporate one trace event, in program order."""
        # HB first: the passes query orderings *including* this event.
        self.hb.feed(event)
        for rule_pass in self._passes:
            rule_pass.feed(event, self.hb)

    def finish(self) -> List[Diagnostic]:
        """Run end-of-program rules and return all diagnostics."""
        for rule_pass in self._passes:
            rule_pass.finish(self.hb)
        self.diagnostics.sort(
            key=lambda d: (d.severity is not Severity.ERROR, d.rule)
        )
        return self.diagnostics


def analyze_trace(trace: ProgramTrace) -> List[Diagnostic]:
    """Run every hazard rule over a captured trace."""
    engine = RuleEngine()
    for event in trace:
        engine.feed(event)
    return engine.finish()


# -- program checking ----------------------------------------------------------


def parse_waivers(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to waived rule sets (``None`` = all).

    ``# hsan: ignore`` waives everything on the line;
    ``# hsan: ignore[rule-a, rule-b]`` waives only the named rules.
    The syntax (and this parser) is shared with staticlint's
    ``# rtsan: ignore`` waivers — see :mod:`repro.analysis.waivers`.
    """
    return parse_shared_waivers(source, "hsan", RULES)


def _is_waived(
    diag: Diagnostic, path: str, waivers: Dict[int, Optional[Set[str]]]
) -> bool:
    """A waiver matches when any offending action sits on a waived line
    of the checked program and the waiver covers the diagnostic's rule."""
    for ref in diag.actions:
        if ref.site is None or ref.site[0] != path:
            continue
        rules = waivers.get(ref.site[1], ...)
        if rules is ...:
            continue
        if rules is None or diag.rule in rules:
            return True
    return False


@dataclass
class Report:
    """The result of checking one program."""

    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    waived: List[Diagnostic] = field(default_factory=list)
    #: Traceback summary if the program raised during capture. Numeric
    #: assertions are *expected* to fail under capture (nothing
    #: executes); the captured prefix is still analyzed.
    program_error: Optional[str] = None
    runtimes: int = 0
    actions: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def exit_code(self) -> int:
        """CLI convention: 2 on errors, 1 on warnings only, 0 clean."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "runtimes": self.runtimes,
            "actions": self.actions,
            "program_error": self.program_error,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "waived": len(self.waived),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def format(self) -> str:
        lines = [
            f"hsan: {self.path}: captured {self.actions} action(s) across "
            f"{self.runtimes} runtime(s)"
        ]
        if self.program_error is not None:
            lines.append(
                "hsan: note: program raised under capture (numeric checks "
                f"cannot pass when nothing executes): {self.program_error}"
            )
        lines.extend(d.format() for d in self.diagnostics)
        verdict = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
            + (f", {len(self.waived)} waived" if self.waived else "")
        )
        lines.append(f"hsan: {self.path}: {verdict}")
        return "\n".join(lines)


def check_program(path: str) -> Report:
    """Capture-run a program file and analyze everything it enqueued."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    waivers = parse_waivers(source)
    report = Report(path=path)
    with capture_session() as runtimes:
        try:
            # The checked program's own prints go to stderr: stdout is
            # the report stream (--json output must stay parseable).
            with contextlib.redirect_stdout(sys.stderr):
                runpy.run_path(path, run_name="__main__")
        except SystemExit as exc:  # a program's sys.exit is not a crash
            if exc.code not in (None, 0):
                report.program_error = f"SystemExit: {exc.code}"
        except Exception as exc:
            report.program_error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
    report.runtimes = len(runtimes)
    for hs in runtimes:
        trace = hs.capture.trace
        report.actions += len(trace.actions())
        for diag in analyze_trace(trace):
            if _is_waived(diag, path, waivers):
                report.waived.append(diag)
            else:
                report.diagnostics.append(diag)
    report.diagnostics.sort(
        key=lambda d: (d.severity is not Severity.ERROR, d.rule)
    )
    return report


# -- online checking -----------------------------------------------------------


class OnlineChecker(SchedulerObserver):
    """Feed the rule engine from live scheduler callbacks.

    Attach to a *real* (executing) runtime via :func:`attach_checker`;
    call :meth:`finish` after the program's final synchronization to
    collect end-of-program findings. Unlike capture mode, an online
    checker never claims dangling waits — the scheduler's normal
    ``HStreamsBadArgument`` behavior is preserved.
    """

    def __init__(self) -> None:
        self.engine = RuleEngine()
        self._pos = 0
        self._shadows: Dict[int, Any] = {}
        self._finished: Optional[List[Diagnostic]] = None

    def _next_pos(self) -> int:
        self._pos += 1
        return self._pos

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.engine.diagnostics

    # -- scheduler callbacks ---------------------------------------------------

    def on_enqueue(self, action, deps, dangling) -> None:
        seqs = {d.seq for d in deps}
        seqs.update(policy_dep_seqs(self._shadows, action))
        self.engine.feed(
            ActionEvent(
                pos=self._next_pos(),
                action=action,
                dep_seqs=tuple(sorted(seqs)),
                dangling=(),
                site=_user_site(),
            )
        )

    def on_host_sync(self, kind, stream=None, events: Sequence = ()) -> None:
        self.engine.feed(
            SyncEvent(
                pos=self._next_pos(),
                kind=kind,
                stream_id=stream.id if stream is not None else None,
                seqs=tuple(
                    ev.action.seq for ev in events if ev.action is not None
                ),
                site=_user_site(),
            )
        )

    def on_buffer(self, kind, buf, domain=None) -> None:
        self.engine.feed(
            BufferEvent(
                pos=self._next_pos(),
                kind=kind,
                buffer=buf,
                domain=domain,
                site=_user_site(),
            )
        )

    def on_action_complete(self, action, record) -> None:
        # Failure-path findings only exist online: capture mode never
        # executes, so nothing can fail or be cancelled there. Repeats
        # of the same (rule, kernel, stream) fold into one diagnostic.
        if record.state not in ("failed", "cancelled"):
            return
        rule = "failed-action" if record.state == "failed" else "cancelled-action"
        ref = ActionRef.from_action(action)
        detail = f": {record.error}" if record.error else ""
        retried = f" after {record.retries} retr{'y' if record.retries == 1 else 'ies'}"
        self.engine._emit(
            Diagnostic(
                rule=rule,
                message=(
                    f"{action.display} {record.state}"
                    + (retried if record.retries else "")
                    + detail
                ),
                actions=[ref],
            ),
            key=(rule, action.kind.value, action.kernel, ref.stream),
        )

    # -- results ---------------------------------------------------------------

    def finish(self) -> List[Diagnostic]:
        """Run end-of-program rules (idempotent) and return findings."""
        if self._finished is None:
            self._finished = self.engine.finish()
        return self._finished


def attach_checker(runtime) -> OnlineChecker:
    """Attach an :class:`OnlineChecker` to an executing runtime."""
    checker = OnlineChecker()
    # The observer list is guarded state: executor threads iterate it
    # under the scheduler lock on every completion.
    with runtime.scheduler._lock:
        runtime.scheduler.observers.append(checker)
    return checker
