"""Multi-tenant async streaming service front-end.

The service tier turns one :class:`~repro.core.runtime.HStreams`
runtime — a shared pool of domains, streams, and buffers — into a
front-end that thousands of concurrent client sessions can share
safely:

* each session's streams live in its tenant's *namespace* (see
  ``HStreams.stream_create(namespace=...)``): one tenant's poisoned
  graph never cancels another's, failures ledger per tenant, and
  ``metrics()["namespaces"]`` reports tenants separately;
* admission control in front of the scheduler — per-tenant concurrency
  windows, weighted fair queuing across tenants, and bounded deferral
  queues whose overflow is an HTTP-429-style
  :class:`~repro.service.admission.TenantRejected`;
* a scheduler-side namespace quota as the backstop behind the
  admission window, so a buggy bypass still cannot monopolize the
  runtime.

Layering: :mod:`repro.service.admission` is the pure, backend-free
weighted-fair-queuing core (also driven standalone by the
million-session load replay in :mod:`repro.service.loadgen`);
:mod:`repro.service.session` binds admission tickets to namespaced
streams; :mod:`repro.service.server` is the asyncio front-end plus a
JSON-lines Unix-socket transport.
"""

from repro.service.admission import (
    AdmissionController,
    ServiceError,
    SessionClosed,
    TenantRejected,
    Ticket,
)
from repro.service.server import StreamService, serve_unix
from repro.service.session import Session, Submission

__all__ = [
    "AdmissionController",
    "ServiceError",
    "SessionClosed",
    "TenantRejected",
    "Ticket",
    "StreamService",
    "serve_unix",
    "Session",
    "Submission",
]
