"""Synthetic load traces and the million-session virtual-time replay.

CI cannot stand up a million real client connections, but it does not
need to: admission behavior at traffic scale — p99 admission latency,
cross-tenant fairness, 429 volume — is a property of the
:class:`~repro.service.admission.AdmissionController` under a given
arrival/service process, and both sides of that are deterministic here.
The replay drives the *real* controller (the same object the asyncio
front-end uses, not a model of it) with a heap-based discrete-event
simulation in virtual time: a million sessions replay in seconds of
CPU and zero wall-clock waiting, and every reported number is exactly
reproducible from the seed.

Two modes:

* :func:`replay` — the full-scale admission replay described above;
  emits ``BENCH_perf.json``-schema rows whose deterministic counters
  (p50/p99 admission latency in virtual µs, weighted max/min fairness,
  reject/complete counts) gate in CI via the existing
  :func:`repro.bench.perf.check_rows` checker against a committed
  baseline.
* :func:`replay_end_to_end` — a smaller slice of the same trace driven
  through the real :class:`~repro.service.server.StreamService` on the
  sim backend: sessions, namespaced streams, the scheduler, quotas, and
  the completion bridge all in the loop, still in virtual time. Its
  rows are informational (asyncio interleaving is not a counter), but
  the run asserts the service-level invariants — everything admitted
  completes, no tenant's ledger leaks into another's.

The offered load deliberately exceeds capacity (~35 % overload at the
defaults): fairness and tail latency only mean something under
contention, and a saturated WFQ system reaches a deterministic steady
state that makes stable gated counters.

CLI::

    python -m repro.service.loadgen [--sessions 1000000] [--tenants 8]
        [--seed 42] [--e2e 2000] [--json PATH] [--report PATH]
        [--check BASELINE.json] [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import asyncio
import heapq
import json
import random
import sys
from array import array
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.perf import (
    GATED_UNIT,
    PerfRow,
    check_rows,
    format_rows,
    rows_from_json,
    rows_to_json,
)
from repro.service.admission import AdmissionController, TenantRejected

__all__ = [
    "Trace",
    "make_trace",
    "replay",
    "replay_end_to_end",
    "main",
]

#: Half the tenants are premium (double weight): the fairness row then
#: checks *weighted* throughput, not just symmetric round-robin.
def tenant_weights(ntenants: int) -> List[float]:
    return [2.0 if i < ntenants // 2 else 1.0 for i in range(ntenants)]


class Trace:
    """A generated arrival trace, column-major for footprint.

    ``arrive[i]`` (virtual s), ``tenant[i]`` (index), ``cost[i]``
    (virtual service seconds) describe session ``i``'s single request.
    A million sessions fit in ~17 MB this way; a list of objects would
    be an order of magnitude more.
    """

    __slots__ = ("arrive", "tenant", "cost", "ntenants", "seed")

    def __init__(self, ntenants: int, seed: int):
        self.arrive = array("d")
        self.tenant = array("H")
        self.cost = array("d")
        self.ntenants = ntenants
        self.seed = seed

    def __len__(self) -> int:
        return len(self.arrive)


def make_trace(
    sessions: int,
    ntenants: int = 8,
    seed: int = 42,
    mean_gap_s: float = 3.5e-6,
    mean_cost_s: float = 1.2e-3,
) -> Trace:
    """Deterministic synthetic trace: Poisson arrivals, skewed tenants.

    Arrivals are exponential gaps around ``mean_gap_s``; the tenant of
    each session is drawn uniformly, so under the deliberate overload
    every tenant stays backlogged and measured throughput is purely
    what the weighted fair queue awards — the premium tenants' 2x
    weight (see :func:`tenant_weights`) is the asymmetry the fairness
    row checks. Service cost is uniform in ``[0.5, 1.5) *
    mean_cost_s``. Only ``random()`` and ``expovariate`` are drawn —
    both bit-stable across the CPython versions CI runs.
    """
    if ntenants < 2:
        raise ValueError("need at least 2 tenants for a fairness measure")
    rng = random.Random(seed)
    trace = Trace(ntenants, seed)
    arrive = trace.arrive
    tenant = trace.tenant
    cost = trace.cost
    now = 0.0
    expovariate = rng.expovariate
    rand = rng.random
    rate = 1.0 / mean_gap_s
    for _ in range(sessions):
        now += expovariate(rate)
        arrive.append(now)
        tenant.append(int(rand() * ntenants))
        cost.append(mean_cost_s * (0.5 + rand()))
    return trace


def replay(
    trace: Trace,
    capacity: int = 256,
    window: int = 64,
    queue_limit: int = 256,
) -> Dict[str, Any]:
    """Replay a trace through the admission controller in virtual time.

    A two-source event merge: arrivals come pre-sorted from the trace,
    completions from a heap. Admission latency is recorded per ticket
    (0 for immediate admits); each completion releases its slot, and
    whatever the controller promotes gets a completion scheduled in
    turn — exactly the coupling the live service has, minus the
    scheduler underneath.
    """
    ntenants = trace.ntenants
    controller = AdmissionController(
        capacity, default_window=window, default_queue_limit=queue_limit
    )
    weights = tenant_weights(ntenants)
    names = [f"t{i}" for i in range(ntenants)]
    for name, weight in zip(names, weights):
        controller.register(name, weight=weight)

    latencies = array("d")
    completed = [0] * ntenants
    rejected = [0] * ntenants
    heap: List[Any] = []  # (finish_time, seq, tenant_idx, ticket)
    seq = 0
    submit = controller.submit
    release = controller.release
    push = heapq.heappush
    pop = heapq.heappop
    arrive = trace.arrive
    tenant = trace.tenant
    cost = trace.cost
    n = len(trace)
    i = 0
    t_end = 0.0
    while i < n or heap:
        if i < n and (not heap or arrive[i] <= heap[0][0]):
            now = arrive[i]
            idx = tenant[i]
            c = cost[i]
            i += 1
            try:
                ticket = submit(names[idx], cost=c, now=now)
            except TenantRejected:
                rejected[idx] += 1
                continue
            if ticket.state == "admitted":
                seq += 1
                push(heap, (now + c, seq, idx, ticket))
            else:
                ticket.data = (idx, c)
        else:
            now, _, idx, ticket = pop(heap)
            t_end = now
            completed[idx] += 1
            # One latency sample per admitted ticket, recorded at its
            # completion pop — admit_latency is frozen at admission, so
            # immediate admits contribute 0 and promoted tickets their
            # queue wait.
            latencies.append(ticket.admit_latency)
            for promoted in release(ticket, now=now):
                pidx, pc = promoted.data
                seq += 1
                push(heap, (now + pc, seq, pidx, promoted))

    ordered = sorted(latencies)

    def pct(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    weighted = [
        completed[i] / weights[i] for i in range(ntenants) if completed[i] > 0
    ]
    fairness = max(weighted) / min(weighted) if weighted else 0.0
    snap = controller.snapshot()
    return {
        "sessions": n,
        "tenants": {
            names[i]: {
                "weight": weights[i],
                "completed": completed[i],
                "rejected": rejected[i],
                "admission": snap["tenants"].get(names[i], {}),
            }
            for i in range(ntenants)
        },
        "completed": sum(completed),
        "rejected": sum(rejected),
        "p50_admit_s": pct(0.50),
        "p99_admit_s": pct(0.99),
        "fairness": fairness,
        "makespan_s": t_end,
    }


def replay_rows(result: Dict[str, Any], label: str) -> List[PerfRow]:
    """Fold a replay result into gated ``BENCH_perf.json`` rows.

    Latencies gate in integer virtual microseconds and fairness as
    ``round(ratio * 100)`` — virtual time is deterministic, so these
    are stable counters, and the usual lower-is-better tolerance gives
    them headroom against intentional retuning.
    """
    n = result["sessions"]
    bench = f"service_load:{label}"
    return [
        PerfRow(bench, "p50_admit_vus", round(result["p50_admit_s"] * 1e6),
                GATED_UNIT, n, "admission"),
        PerfRow(bench, "p99_admit_vus", round(result["p99_admit_s"] * 1e6),
                GATED_UNIT, n, "admission"),
        PerfRow(bench, "fairness_x100", round(result["fairness"] * 100),
                GATED_UNIT, n, "admission"),
        PerfRow(bench, "rejected", result["rejected"], GATED_UNIT, n, "admission"),
        PerfRow(bench, "incomplete", n - result["completed"] - result["rejected"],
                GATED_UNIT, n, "admission"),
        PerfRow(bench, "makespan_vs", result["makespan_s"], "s", n, "admission"),
    ]


# -- end-to-end slice over the real service -----------------------------------


def _svc_kernel(*_args) -> None:
    """No-op service kernel (module-level: picklable for parity runs)."""


async def _run_end_to_end(
    trace: Trace, sessions: int, capacity: int, window: int
) -> Dict[str, Any]:
    from repro.core.runtime import HStreams
    from repro.service.server import StreamService
    from repro.sim.kernels import KernelCost

    hs = HStreams(backend="sim", trace=False)
    service = StreamService(
        hs, capacity=capacity, tenant_window=window, queue_limit=1 << 20
    )
    hs.register_kernel("svc", fn=_svc_kernel)
    names = [f"t{i}" for i in range(trace.ntenants)]
    weights = tenant_weights(trace.ntenants)
    for name, weight in zip(names, weights):
        service.register_tenant(name, weight=weight)

    completed = 0

    async def one_session(i: int) -> None:
        nonlocal completed
        tenant = names[trace.tenant[i]]
        session = await service.session(tenant, domain=1)
        # The exact virtual duration is immaterial here — any positive,
        # trace-proportional cost exercises overlap and promotion.
        sub = await session.submit(
            "svc",
            cost=KernelCost("svc", flops=trace.cost[i] * 1e9, size=1.0),
            admission_cost=trace.cost[i],
        )
        await session.result(sub)
        completed += 1
        await session.close()

    tasks = [asyncio.ensure_future(one_session(i)) for i in range(sessions)]
    # Virtual time only advances inside waits: alternate giving the
    # session coroutines a scheduling slot with kicking the engine so
    # their completion futures resolve.
    while not all(t.done() for t in tasks):
        for _ in range(4):
            await asyncio.sleep(0)
        service._kick()
    await asyncio.gather(*tasks)
    metrics = service.metrics()
    await service.close()
    hs.fini()
    return {
        "sessions": sessions,
        "completed": completed,
        "inflight_after": metrics["inflight"],
        "tenants": {
            name: block["admission"] for name, block in metrics["tenants"].items()
        },
    }


def replay_end_to_end(
    trace: Trace, sessions: int, capacity: int = 32, window: int = 8
) -> Dict[str, Any]:
    """Drive a slice of the trace through the real service on sim.

    Asserts the service-level invariants (everything admitted
    completes, no admission slots leak) and returns the summary; rows
    derived from it are informational.
    """
    sessions = min(sessions, len(trace))
    result = asyncio.run(_run_end_to_end(trace, sessions, capacity, window))
    if result["completed"] != sessions:
        raise AssertionError(
            f"end-to-end replay lost work: {result['completed']}/{sessions}"
        )
    if result["inflight_after"] != 0:
        raise AssertionError(
            f"admission slots leaked: {result['inflight_after']} in flight after drain"
        )
    return result


def end_to_end_rows(result: Dict[str, Any]) -> List[PerfRow]:
    n = result["sessions"]
    bench = "service_load:e2e"
    return [
        PerfRow(bench, "completed", result["completed"], "actions", n, "sim"),
        PerfRow(bench, "inflight_after", result["inflight_after"], "actions", n, "sim"),
    ]


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Synthetic trace generator + virtual-time load replay "
        "(BENCH_service.json emitter + regression gate).",
    )
    parser.add_argument("--sessions", type=int, default=1_000_000)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--capacity", type=int, default=256)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--queue-limit", type=int, default=256)
    parser.add_argument(
        "--e2e",
        type=int,
        default=0,
        metavar="N",
        help="also drive N sessions end-to-end through the real service "
        "on the sim backend (0 = skip)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write rows as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the full replay report (per-tenant detail) to PATH",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare gated counters against a baseline JSON file",
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args(argv)

    trace = make_trace(args.sessions, ntenants=args.tenants, seed=args.seed)
    result = replay(
        trace,
        capacity=args.capacity,
        window=args.window,
        queue_limit=args.queue_limit,
    )
    label = f"{args.sessions}s{args.tenants}t"
    rows = replay_rows(result, label)

    report: Dict[str, Any] = {"replay": result}
    if args.e2e:
        e2e = replay_end_to_end(trace, args.e2e)
        rows.extend(end_to_end_rows(e2e))
        report["end_to_end"] = e2e

    if args.json == "-":
        sys.stdout.write(rows_to_json(rows))
    else:
        print(format_rows(rows))
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(rows_to_json(rows))
            print(f"\nwrote {args.json}")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.report}")

    if args.check:
        with open(args.check) as fh:
            baseline = rows_from_json(fh.read())
        problems = check_rows(rows, baseline, tolerance=args.tolerance)
        if problems:
            print(
                f"\nSERVICE GATE: {len(problems)} regression(s) vs {args.check}:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        gated = sum(1 for r in rows if r.unit == GATED_UNIT)
        print(f"\nservice gate ok: {gated} gated counter(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
