"""Weighted-fair admission control for the multi-tenant service tier.

The controller decides, per request, one of three outcomes:

* **admit** — a global capacity slot and a per-tenant window slot are
  both free: the request may enqueue onto the runtime immediately;
* **queue** — no slot (or the tenant already has queued work): the
  request waits in its tenant's FIFO deferral queue and is promoted
  later in weighted-fair order;
* **reject** — the tenant's deferral queue is full: the HTTP-429
  analogue, surfaced as :class:`TenantRejected`.

Fairness is start-time fair queuing (SFQ): every request gets a virtual
*start tag* ``max(tenant.vfinish, V)`` where ``V`` is the controller's
virtual time, and the tenant's virtual finish advances by
``cost / weight``. Promotion always picks the eligible queued request
with the smallest tag, so over any backlogged interval tenant
throughput converges to the weight ratio regardless of offered load —
one tenant submitting 10x faster cannot take 10x the slots.

The core is deliberately synchronous and backend-free: the asyncio
front-end (:mod:`repro.service.server`) calls it only from the event
loop thread, and the million-session load replay
(:mod:`repro.service.loadgen`) drives it directly under a heap-based
virtual clock. It therefore needs no lock; single-threaded ownership is
part of the contract.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "ServiceError",
    "TenantRejected",
    "SessionClosed",
    "Ticket",
    "AdmissionController",
]


class ServiceError(Exception):
    """Base class for service-tier failures."""


class TenantRejected(ServiceError):
    """A tenant's deferral queue is full: back off and retry (HTTP 429).

    Carries the tenant name and the queue depth at rejection so
    transports can surface a meaningful retry hint.
    """

    def __init__(self, tenant: str, queued: int, limit: int):
        super().__init__(
            f"tenant {tenant!r} rejected: {queued} request(s) already "
            f"deferred (queue_limit={limit})"
        )
        self.tenant = tenant
        self.queued = queued
        self.limit = limit


class SessionClosed(ServiceError):
    """An operation was attempted on a closed session."""


class Ticket:
    """One admission request's journey through the controller.

    ``state`` is one of ``"queued"``, ``"admitted"``, ``"released"``,
    or ``"cancelled"`` (rejected requests never get a ticket — the
    submit raises instead). ``t_submit`` / ``t_admit`` are on the
    caller's clock and give the admission latency the load replay
    reports; ``tag`` is the SFQ virtual start tag.
    """

    __slots__ = (
        "tenant",
        "cost",
        "tag",
        "state",
        "t_submit",
        "t_admit",
        "data",
    )

    def __init__(self, tenant: str, cost: float, tag: float, t_submit: float):
        self.tenant = tenant
        self.cost = cost
        self.tag = tag
        self.state = "queued"
        self.t_submit = t_submit
        self.t_admit: Optional[float] = None
        #: Caller scratch (the async layer parks its wakeup future here,
        #: the load replay its session record).
        self.data: Any = None

    @property
    def admit_latency(self) -> float:
        """Seconds spent between submit and admission (0 if immediate)."""
        if self.t_admit is None:
            return 0.0
        return self.t_admit - self.t_submit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Ticket {self.tenant} {self.state} tag={self.tag:.6f}>"


class _Tenant:
    """Per-tenant admission state."""

    __slots__ = (
        "name",
        "weight",
        "window",
        "queue_limit",
        "inflight",
        "vfinish",
        "queue",
        "admitted",
        "released",
        "rejected",
        "queued_total",
        "queue_peak",
        "admit_wait_s",
    )

    def __init__(
        self, name: str, weight: float, window: Optional[int], queue_limit: int
    ):
        self.name = name
        self.weight = weight
        self.window = window
        self.queue_limit = queue_limit
        self.inflight = 0
        self.vfinish = 0.0
        self.queue: Deque[Ticket] = deque()
        self.admitted = 0
        self.released = 0
        self.rejected = 0
        self.queued_total = 0
        self.queue_peak = 0
        #: Cumulative admission-wait seconds across admitted tickets.
        self.admit_wait_s = 0.0

    def has_window(self) -> bool:
        return self.window is None or self.inflight < self.window


class AdmissionController:
    """SFQ admission over a global capacity and per-tenant windows."""

    def __init__(
        self,
        capacity: int,
        default_window: Optional[int] = None,
        default_queue_limit: int = 1024,
    ):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if default_window is not None and default_window < 1:
            raise ValueError("tenant window must be >= 1 (or None)")
        if default_queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.capacity = capacity
        self.default_window = default_window
        self.default_queue_limit = default_queue_limit
        self.inflight = 0
        self._vtime = 0.0
        self._tenants: Dict[str, _Tenant] = {}

    # -- tenants ---------------------------------------------------------------

    def register(
        self,
        tenant: str,
        weight: float = 1.0,
        window: Optional[int] = None,
        queue_limit: Optional[int] = None,
    ) -> None:
        """Declare a tenant's fair-share weight and limits.

        Unknown tenants are auto-registered with defaults at first
        submit; registering twice updates weight/limits in place (the
        existing backlog keeps its tags).
        """
        if weight <= 0:
            raise ValueError("tenant weight must be > 0")
        if window is not None and window < 1:
            raise ValueError("tenant window must be >= 1 (or None)")
        state = self._tenants.get(tenant)
        if state is None:
            self._tenants[tenant] = _Tenant(
                tenant,
                weight,
                window if window is not None else self.default_window,
                queue_limit
                if queue_limit is not None
                else self.default_queue_limit,
            )
            return
        state.weight = weight
        if window is not None:
            state.window = window
        if queue_limit is not None:
            state.queue_limit = queue_limit

    def tenants(self) -> List[str]:
        """Registered tenant names, registration-ordered."""
        return list(self._tenants)

    def _tenant(self, name: str) -> _Tenant:
        state = self._tenants.get(name)
        if state is None:
            state = _Tenant(
                name, 1.0, self.default_window, self.default_queue_limit
            )
            self._tenants[name] = state
        return state

    # -- admission -------------------------------------------------------------

    def submit(self, tenant: str, cost: float = 1.0, now: float = 0.0) -> Ticket:
        """Request admission for one unit of work of weight-scaled ``cost``.

        Returns a :class:`Ticket` in state ``"admitted"`` (run it now)
        or ``"queued"`` (wait for :meth:`release` to promote it).
        Raises :class:`TenantRejected` when the tenant's deferral queue
        is full.
        """
        if cost <= 0:
            raise ValueError("admission cost must be > 0")
        state = self._tenant(tenant)
        # Per-tenant FIFO: a request never overtakes its tenant's own
        # backlog, even when a slot is free.
        immediate = (
            not state.queue and self.inflight < self.capacity and state.has_window()
        )
        if not immediate and len(state.queue) >= state.queue_limit:
            # Reject BEFORE charging virtual time: a rejected request
            # consumed no service, and advancing vfinish for it would
            # push the tenant's future tags ever later — a positive
            # feedback loop that starves exactly the tenants already
            # being throttled.
            state.rejected += 1
            raise TenantRejected(tenant, len(state.queue), state.queue_limit)
        tag = max(state.vfinish, self._vtime)
        state.vfinish = tag + cost / state.weight
        ticket = Ticket(tenant, cost, tag, now)
        if immediate:
            self._admit(state, ticket, now)
            return ticket
        state.queue.append(ticket)
        state.queued_total += 1
        if len(state.queue) > state.queue_peak:
            state.queue_peak = len(state.queue)
        return ticket

    def _admit(self, state: _Tenant, ticket: Ticket, now: float) -> None:
        ticket.state = "admitted"
        ticket.t_admit = now
        state.inflight += 1
        state.admitted += 1
        state.admit_wait_s += ticket.admit_latency
        self.inflight += 1
        if ticket.tag > self._vtime:
            self._vtime = ticket.tag

    def release(self, ticket: Ticket, now: float = 0.0) -> List[Ticket]:
        """Finish an admitted ticket and promote deferred work.

        Returns the tickets promoted into the freed capacity, in
        weighted-fair order — the caller is responsible for actually
        running them (the async layer wakes their futures; the load
        replay schedules their completions).
        """
        if ticket.state != "admitted":
            raise ValueError(f"release of {ticket.state} ticket")
        ticket.state = "released"
        state = self._tenant(ticket.tenant)
        state.inflight -= 1
        state.released += 1
        self.inflight -= 1
        return self._promote(now)

    def cancel(self, ticket: Ticket) -> bool:
        """Withdraw a queued ticket (session close). False if not queued."""
        if ticket.state != "queued":
            return False
        state = self._tenant(ticket.tenant)
        try:
            state.queue.remove(ticket)
        except ValueError:
            return False
        ticket.state = "cancelled"
        return True

    def _promote(self, now: float) -> List[Ticket]:
        """Fill free capacity from tenant queues in SFQ tag order."""
        promoted: List[Ticket] = []
        while self.inflight < self.capacity:
            best: Optional[_Tenant] = None
            for state in self._tenants.values():
                if not state.queue or not state.has_window():
                    continue
                if best is None or state.queue[0].tag < best.queue[0].tag:
                    best = state
            if best is None:
                break
            ticket = best.queue.popleft()
            self._admit(best, ticket, now)
            promoted.append(ticket)
        return promoted

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``StreamService.metrics()`` and the load report."""
        tenants = {}
        for state in self._tenants.values():
            tenants[state.name] = {
                "weight": state.weight,
                "window": state.window,
                "queue_limit": state.queue_limit,
                "inflight": state.inflight,
                "queued": len(state.queue),
                "queue_peak": state.queue_peak,
                "admitted": state.admitted,
                "released": state.released,
                "rejected": state.rejected,
                "queued_total": state.queued_total,
                "admit_wait_s": state.admit_wait_s,
            }
        return {
            "capacity": self.capacity,
            "inflight": self.inflight,
            "tenants": tenants,
        }
