"""The asyncio service front-end over one shared runtime.

:class:`StreamService` owns the pieces a multi-tenant deployment needs
around an :class:`~repro.core.runtime.HStreams`:

* the :class:`~repro.service.admission.AdmissionController` (weighted
  fair queuing, per-tenant windows, bounded deferral queues);
* the session registry — every session's streams live in its tenant's
  namespace, so the core's isolation guarantees apply;
* the completion bridge: a
  :class:`~repro.core.scheduler.SchedulerObserver` that forwards
  terminal action records from backend worker threads onto the event
  loop, resolving submission futures and releasing admission slots.

The observer is the one piece that crosses threads. It is registered
with the scheduler and invoked with the scheduler lock held, so it does
nothing but schedule a loop callback — and it tolerates the loop being
gone: ``HStreams.fini()`` during an active session drains the backend
*synchronously* (namespaced streams included), firing completions
after the loop may already be closed. Those late completions release
no futures (nobody can await them anymore) but must not raise into the
backend worker, so the bridge drops them; the failure ledger and
metrics remain the durable record.

:func:`serve_unix` exposes the service over a local Unix socket with a
JSON-lines request/response protocol — enough transport for real
multi-process clients without pulling in an HTTP stack.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.core.scheduler import SchedulerObserver
from repro.service.admission import (
    AdmissionController,
    ServiceError,
    TenantRejected,
    Ticket,
)
from repro.service.session import Session

__all__ = ["StreamService", "serve_unix"]


class _CompletionObserver(SchedulerObserver):
    """Forward terminal action records onto the service's event loop."""

    #: Batched replay admission may skip materializing dep edges for us.
    wants_deps = False

    def __init__(self, service: "StreamService"):
        self._service = service

    def on_action_complete(self, action, record) -> None:
        # Called with the scheduler lock held, possibly from a backend
        # worker thread: look up, schedule, return. Never call back
        # into the runtime from here.
        svc = self._service
        key = id(action)
        if key not in svc._pending:
            return
        loop = svc._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(svc._resolve, key, record)
        except RuntimeError:
            # The loop closed underneath us (fini() tearing down while
            # work was in flight). The drain itself is synchronous and
            # deterministic — the record is already in the ledger and
            # metrics; there is just no awaiter left to wake.
            pass


class StreamService:
    """Multi-tenant front-end over one shared :class:`HStreams` runtime."""

    def __init__(
        self,
        runtime,
        capacity: int = 64,
        tenant_window: Optional[int] = 16,
        queue_limit: int = 1024,
        quota_headroom: int = 4,
    ):
        """``capacity`` bounds global in-flight admissions;
        ``tenant_window`` each tenant's share of them; ``queue_limit``
        each tenant's deferral backlog (overflow = 429). The scheduler
        namespace quota is set to ``tenant_window * quota_headroom`` as
        a backstop — admission is the real limiter, the quota catches
        anything that bypasses it.
        """
        self.runtime = runtime
        self._admission = AdmissionController(
            capacity,
            default_window=tenant_window,
            default_queue_limit=queue_limit,
        )
        self._quota_headroom = quota_headroom
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending: Dict[int, Any] = {}
        self._sessions: Dict[int, Session] = {}
        self._next_session = 1
        self.closed = False
        self._observer = _CompletionObserver(self)
        with runtime.scheduler._lock:  # observers is a guarded field
            runtime.scheduler.observers.append(self._observer)
        # The sim backend's engine only advances inside source-thread
        # waits: submission futures need an explicit kick to resolve.
        self._needs_kick = hasattr(runtime.backend, "engine")

    # -- tenants & sessions ----------------------------------------------------

    def register_tenant(
        self,
        name: str,
        weight: float = 1.0,
        window: Optional[int] = None,
        queue_limit: Optional[int] = None,
    ) -> None:
        """Declare a tenant's fair-share weight, window, and backlog."""
        if not name:
            raise ServiceError("tenant name must be non-empty")
        self._admission.register(
            name, weight=weight, window=window, queue_limit=queue_limit
        )
        eff_window = window if window is not None else self._admission.default_window
        if eff_window is not None:
            self.runtime.set_namespace_quota(
                name, eff_window * self._quota_headroom
            )

    async def session(
        self, tenant: str, domain: int = 0, ncores: Optional[int] = 1
    ) -> Session:
        """Open a session: a private stream in the tenant's namespace."""
        self._check_open()
        if not tenant:
            raise ServiceError("tenant name must be non-empty")
        self._bind_loop()
        if tenant not in self._admission.tenants():
            self.register_tenant(tenant)
        sid = self._next_session
        self._next_session += 1
        stream = self.runtime.stream_create(
            domain,
            ncores=ncores,
            namespace=tenant,
            name=f"{tenant}.s{sid}",
        )
        session = Session(self, tenant, stream, sid)
        self._sessions[sid] = session
        return session

    def _destroy_session(self, session: Session) -> None:
        self._sessions.pop(session.id, None)
        if self.runtime.initialized and session.stream in self.runtime.streams:
            # close() already drained the session; the tenant's ledger
            # (its durable failure record) must not abort the teardown.
            self.runtime.stream_destroy(session.stream, raise_failures=False)

    # -- loop & completion bridge ----------------------------------------------

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise ServiceError("service is bound to a different event loop")
        return loop

    def _now(self) -> float:
        """Admission clock: the backend's (virtual seconds on sim)."""
        return self.runtime.backend.now()

    def _track(self, sub) -> None:
        key = id(sub.event.action)
        self._pending[key] = sub
        # The action may have completed between enqueue and here (fast
        # kernels, capture backend): the observer saw no entry, so
        # resolve from the event's own record.
        if sub.event.is_complete():
            self._resolve(key, sub.event.record)

    def _resolve(self, key: int, record) -> None:
        sub = self._pending.pop(key, None)
        if sub is None:
            return  # already resolved inline; scheduled callback is stale
        sub.session._inflight.pop(key, None)
        self._release(sub.ticket)
        if not sub.done.done():
            sub.done.set_result(record if record is not None else sub.event.record)

    def _release(self, ticket: Ticket) -> None:
        if ticket.state != "admitted":
            return
        promoted = self._admission.release(ticket, now=self._now())
        for t in promoted:
            fut = t.data
            if fut is not None and not fut.done():
                fut.set_result(None)

    def _kick(self) -> None:
        """Advance the sim backend so pending completions fire.

        Virtual time only moves inside source-thread waits; draining
        with a scope no failure can match surfaces nothing (each
        tenant's errors stay in its ledger for scoped observation) but
        runs every in-flight action to its terminal state.
        """
        if not self._needs_kick or not self.runtime.initialized:
            return
        try:
            self.runtime.backend.wait_all(scope="\x00service.kick")
        except Exception:
            # Deadlock/timeout diagnostics surface on the caller's own
            # scoped waits; the kick is only a clock pump.
            pass

    # -- observability ---------------------------------------------------------

    def tenant_metrics(self, tenant: str) -> Dict[str, Any]:
        """One tenant's admission + runtime counters + ledger depth."""
        adm = self._admission.snapshot()["tenants"].get(tenant, {})
        runtime_block: Dict[str, Any] = {}
        if self.runtime.initialized:
            runtime_block = (
                self.runtime.metrics().get("namespaces", {}).get(tenant, {})
            )
        return {
            "tenant": tenant,
            "admission": adm,
            "runtime": runtime_block,
            "errors": len(self.runtime.failure_errors(tenant)),
        }

    def metrics(self) -> Dict[str, Any]:
        """Service-wide snapshot: admission state plus per-tenant blocks."""
        snap = self._admission.snapshot()
        return {
            "capacity": snap["capacity"],
            "inflight": snap["inflight"],
            "sessions": len(self._sessions),
            "tenants": {
                name: self.tenant_metrics(name) for name in snap["tenants"]
            },
        }

    # -- lifecycle -------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise ServiceError("service is closed")

    async def close(self) -> None:
        """Close every session (draining each), then detach from the runtime.

        The runtime itself stays up — the service is a front-end, not
        the owner; callers ``fini()`` the runtime separately.
        """
        if self.closed:
            return
        self.closed = True
        for session in list(self._sessions.values()):
            await session.close()
        try:
            with self.runtime.scheduler._lock:
                self.runtime.scheduler.observers.remove(self._observer)
        except ValueError:  # pragma: no cover - double close
            pass


# -- transport -------------------------------------------------------------------


async def _handle_connection(
    service: StreamService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: JSON-lines request/response, in order.

    Ops: ``open`` (tenant) -> session id; ``submit`` (session, kernel,
    args) -> terminal record summary; ``drain`` (session); ``metrics``
    (tenant); ``close`` (session). Admission overflow returns
    ``{"ok": false, "code": 429}`` instead of an exception.
    """
    sessions: Dict[int, Session] = {}

    async def dispatch(req: Dict[str, Any]) -> Dict[str, Any]:
        op = req.get("op")
        if op == "open":
            session = await service.session(
                str(req["tenant"]),
                domain=int(req.get("domain", 0)),
                ncores=req.get("ncores", 1),
            )
            sessions[session.id] = session
            return {"ok": True, "session": session.id}
        if op == "metrics":
            return {"ok": True, "metrics": service.tenant_metrics(str(req["tenant"]))}
        if op not in ("submit", "drain", "close"):
            return {"ok": False, "code": 400, "error": f"unknown op {op!r}"}
        session = sessions.get(int(req.get("session", -1)))
        if session is None:
            return {"ok": False, "code": 404, "error": "unknown session"}
        if op == "submit":
            sub = await session.submit(
                str(req["kernel"]),
                args=tuple(req.get("args", ())),
                admission_cost=float(req.get("cost", 1.0)),
            )
            record = await sub.done
            return {
                "ok": record.state == "complete",
                "state": record.state,
                "error": record.error,
                "admit_latency": sub.ticket.admit_latency,
            }
        if op == "drain":
            await session.drain()
            return {"ok": True, "errors": len(session.errors())}
        await session.close()
        sessions.pop(session.id, None)
        return {"ok": True}

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                req = json.loads(line)
                resp = await dispatch(req)
            except TenantRejected as exc:
                resp = {
                    "ok": False,
                    "code": 429,
                    "error": str(exc),
                    "queued": exc.queued,
                }
            except (ServiceError, KeyError, ValueError) as exc:
                resp = {"ok": False, "code": 400, "error": str(exc)}
            writer.write(json.dumps(resp).encode() + b"\n")
            await writer.drain()
    finally:
        for session in list(sessions.values()):
            await session.close()
        writer.close()


async def serve_unix(service: StreamService, path: str) -> asyncio.AbstractServer:
    """Serve the JSON-lines protocol on a Unix socket at ``path``."""
    service._bind_loop()
    return await asyncio.start_unix_server(
        lambda r, w: _handle_connection(service, r, w), path=path
    )
