"""Client sessions: namespaced streams behind admission tickets.

A :class:`Session` is one client's handle onto the shared runtime. Its
streams are created in the owning tenant's namespace, so everything the
core guarantees per namespace — scoped failure surfacing, scoped
fail-fast cancellation, the in-flight quota backstop, the per-tenant
metrics block — applies to all of a tenant's sessions collectively,
while each session's streams (and the buffers it creates) stay private
to it.

Every ``submit`` passes through the service's
:class:`~repro.service.admission.AdmissionController` *before* touching
the scheduler: the award of an admission slot is what bounds a tenant's
concurrency, and the slot is released when the action completes (in
success, failure, or cancellation — a poisoned graph must not leak
slots). The scheduler-side namespace quota sits behind the window as a
backstop only.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from repro.service.admission import SessionClosed, Ticket

__all__ = ["Session", "Submission"]


class Submission:
    """One admitted unit of work in flight on a session.

    ``done`` resolves with the action's
    :class:`~repro.core.graph.ActionRecord` when it reaches a terminal
    state; await it via :meth:`Session.result` (which raises on
    failure) or directly for raw records.
    """

    __slots__ = ("session", "ticket", "event", "done", "kernel")

    def __init__(
        self,
        session: "Session",
        ticket: Ticket,
        event: Any,
        done: "asyncio.Future",
        kernel: str,
    ):
        self.session = session
        self.ticket = ticket
        self.event = event
        self.done = done
        self.kernel = kernel

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.done() else "pending"
        return f"<Submission {self.kernel} {self.session.tenant} {state}>"


class Session:
    """One client's namespaced slice of the shared runtime."""

    def __init__(self, service, tenant: str, stream, session_id: int):
        self._service = service
        self.tenant = tenant
        self.stream = stream
        self.id = session_id
        self.closed = False
        self._inflight: Dict[int, Submission] = {}
        self._waiting: List[Ticket] = []

    # -- submission ------------------------------------------------------------

    async def submit(
        self,
        kernel: str,
        args: Sequence = (),
        operands: Sequence = (),
        cost: Optional[Any] = None,
        admission_cost: float = 1.0,
        label: str = "",
    ) -> Submission:
        """Admit, then enqueue, one compute task on this session's stream.

        Waits (asynchronously) while the request is deferred behind the
        tenant's window or the global capacity; raises
        :class:`~repro.service.admission.TenantRejected` when the
        tenant's deferral queue is full, and
        :class:`~repro.service.admission.SessionClosed` if the session
        closes while the request is still queued.
        """
        self._check_open()
        svc = self._service
        ticket = svc._admission.submit(
            self.tenant, cost=admission_cost, now=svc._now()
        )
        if ticket.state != "admitted":
            fut = svc._loop.create_future()
            ticket.data = fut
            self._waiting.append(ticket)
            try:
                await fut
            finally:
                if ticket in self._waiting:
                    self._waiting.remove(ticket)
            self._check_open()
        try:
            event = svc.runtime.enqueue_compute(
                self.stream,
                kernel,
                args=args,
                operands=operands,
                cost=cost,
                label=label or f"{self.tenant}/s{self.id}:{kernel}",
            )
        except BaseException:
            # The slot was awarded but the work never reached the
            # scheduler (bad kernel, quota backstop, poisoned enqueue):
            # give the slot back or it leaks forever.
            svc._release(ticket)
            raise
        done: "asyncio.Future" = svc._loop.create_future()
        sub = Submission(self, ticket, event, done, kernel)
        self._inflight[id(event.action)] = sub
        svc._track(sub)
        return sub

    async def result(self, sub: Submission):
        """Wait for one submission; raise on failure or cancellation."""
        record = await sub.done
        if record.state in ("failed", "cancelled"):
            raise _to_service_error(self.tenant, record)
        return record

    async def drain(self) -> None:
        """Wait for everything this session submitted so far.

        Failures do *not* raise here — they stay in the tenant's
        ledger (:meth:`errors`); a session drain is a barrier, not a
        check. Use :meth:`result` per submission to observe failures.
        """
        pending = [s.done for s in self._inflight.values() if not s.done.done()]
        self._service._kick()
        if pending:
            await asyncio.gather(*pending)

    # -- observability ---------------------------------------------------------

    def errors(self) -> List[BaseException]:
        """This tenant's failure ledger (shared across its sessions)."""
        return self._service.runtime.failure_errors(self.tenant)

    def metrics(self) -> Dict[str, Any]:
        """This tenant's service + runtime counters."""
        return self._service.tenant_metrics(self.tenant)

    # -- lifecycle -------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosed(f"session {self.id} ({self.tenant}) is closed")

    async def close(self) -> None:
        """Drain this session's streams deterministically, then free them.

        Queued (not yet admitted) requests are cancelled and their
        waiters woken with :class:`SessionClosed`; admitted work is
        awaited to completion, so the stream is quiescent before it is
        destroyed — never torn down underneath a running kernel.
        """
        if self.closed:
            return
        self.closed = True
        for ticket in list(self._waiting):
            if self._service._admission.cancel(ticket):
                fut = ticket.data
                if fut is not None and not fut.done():
                    fut.set_exception(
                        SessionClosed(
                            f"session {self.id} ({self.tenant}) closed while queued"
                        )
                    )
        self._waiting.clear()
        pending = [s.done for s in self._inflight.values() if not s.done.done()]
        self._service._kick()
        if pending:
            await asyncio.gather(*pending)
        self._service._destroy_session(self)


def _to_service_error(tenant: str, record) -> Exception:
    from repro.service.admission import ServiceError

    err = ServiceError(
        f"{tenant}: {record.kind} action finished {record.state}: {record.error}"
    )
    err.record = record  # type: ignore[attr-defined]
    return err
