"""The finite-difference wave propagator: real kernel + cost model.

Second order in time, 8th order in space (half-width 4 — the halo
depth), constant-density acoustic wave equation::

    p_next = 2 p - p_prev + (v dt)^2 * laplacian(p)

The numpy implementation is the functional kernel for the thread backend
and the single-rank reference the multi-rank tests compare against; the
cost model prices one slab of grid points at the paper's 80 flops per
point.
"""

from __future__ import annotations

import numpy as np

from repro.sim.kernels import FLOPS_PER_STENCIL_POINT, KernelCost, stencil

__all__ = [
    "HALF_ORDER",
    "COEFFS",
    "laplacian_8th",
    "propagate_slab",
    "propagate_reference",
    "stencil_cost",
]

#: Half the spatial order: the halo depth in grid points.
HALF_ORDER = 4

#: 8th-order central second-derivative coefficients (c0, c1..c4).
COEFFS = np.array(
    [-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0]
)


def laplacian_8th(p: np.ndarray, out: np.ndarray) -> None:
    """8th-order 3-D Laplacian of ``p`` into ``out`` (interior only).

    ``p`` must carry ``HALF_ORDER`` ghost layers on every face; ``out``
    has the interior shape (p.shape - 2*HALF_ORDER per axis). Grid
    spacing is normalized to 1.
    """
    h = HALF_ORDER
    nz, ny, nx = p.shape
    if min(nz, ny, nx) <= 2 * h:
        raise ValueError(f"grid {p.shape} too small for 8th-order stencil")
    core = p[h:-h, h:-h, h:-h]
    out[:] = 3.0 * COEFFS[0] * core
    for k in range(1, h + 1):
        c = COEFFS[k]
        out += c * (p[h - k : nz - h - k, h:-h, h:-h] + p[h + k : nz - h + k, h:-h, h:-h])
        out += c * (p[h:-h, h - k : ny - h - k, h:-h] + p[h:-h, h + k : ny - h + k, h:-h])
        out += c * (p[h:-h, h:-h, h - k : nx - h - k] + p[h:-h, h:-h, h + k : nx - h + k])


def propagate_slab(
    p_next: np.ndarray,
    p_cur: np.ndarray,
    p_prev: np.ndarray,
    vdt2: float,
    z0: int,
    z1: int,
) -> None:
    """One time step over interior rows ``z0:z1`` of the padded grids.

    All three arrays share the padded shape; the slab bounds are in
    *interior* coordinates (0 .. nz_interior).
    """
    h = HALF_ORDER
    sub = p_cur[z0 : z1 + 2 * h]  # the slab plus its ghost rows
    lap = np.empty(
        (z1 - z0, p_cur.shape[1] - 2 * h, p_cur.shape[2] - 2 * h)
    )
    laplacian_8th(sub, lap)
    inner_next = p_next[z0 + h : z1 + h, h:-h, h:-h]
    inner_cur = p_cur[z0 + h : z1 + h, h:-h, h:-h]
    inner_prev = p_prev[z0 + h : z1 + h, h:-h, h:-h]
    inner_next[:] = 2.0 * inner_cur - inner_prev + vdt2 * lap


def propagate_reference(
    p_cur: np.ndarray, p_prev: np.ndarray, vdt2: float, steps: int
) -> np.ndarray:
    """Reference propagation of the whole padded grid for ``steps`` steps.

    Ghost layers stay zero (homogeneous Dirichlet boundary). Returns the
    final padded wavefield.
    """
    h = HALF_ORDER
    cur = p_cur.copy()
    prev = p_prev.copy()
    nxt = np.zeros_like(cur)
    nz_int = cur.shape[0] - 2 * h
    for _ in range(steps):
        propagate_slab(nxt, cur, prev, vdt2, 0, nz_int)
        prev, cur, nxt = cur, nxt, prev
    return cur


def stencil_cost(points: float) -> KernelCost:
    """Cost of propagating ``points`` grid points one step."""
    return stencil(points, FLOPS_PER_STENCIL_POINT)
