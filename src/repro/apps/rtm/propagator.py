"""RTM propagation schemes over hStreams (paper §V/§VI).

Three offload schemes, matching the paper's Petrobras evaluation:

* ``scheme="host"`` — the baseline: one rank propagates the whole grid
  on the host, no offload.
* ``scheme="sync"`` — fully synchronous offload: each step computes the
  whole subdomain on the card, then the host drains the halo copies,
  performs the MPI exchange, and pushes ghosts back — no overlap of data
  movement and compute.
* ``scheme="async"`` — asynchronous pipelined offload: halo slabs
  compute first in a halo stream, their copies ride the same stream, and
  bulk work proceeds concurrently in a second stream, hiding the
  exchange.

Within ``async``, ``exchange`` selects the two §V variants:

* ``"dependence"`` (hStreams) — each halo's copy-out is enqueued right
  behind its compute in the same stream; the FIFO *semantic* orders them
  while out-of-order execution lets one face's copy start while the
  other face still computes — no explicit synchronization, robust to
  load imbalance;
* ``"barrier"`` (the CUDA-Streams pattern) — an explicit barrier waits
  for *all* halo work before any copy starts, which is fine while bulk
  work dominates but hurts when the halo/interior ratio grows.

``optimized=False`` models the unvectorized production code: scalar
inner loops that hurt the 512-bit-SIMD card far more than the host (the
paper's lower 1.13-4.53x unoptimized speedups).

Each rank's wavefield is decomposed into a z-ordered **slab chain** —
``[halo_lo, bulk_lo, bulk_mid, bulk_hi, halo_hi]`` — each slab a
ping-pong buffer pair. A slab's stencil reads its own previous
generations plus its chain neighbours (the 8th-order stencil reaches
``HALF_ORDER`` planes each way, exactly one edge slab), which is the
operand granularity that legalizes the pipelined schedule.

On the **thread backend** the kernels really execute: pass
``field=(cur0, prev0)`` (padded arrays) and the decomposed, streamed,
exchanged propagation produces the same wavefield as the monolithic
reference — the integration test of the whole pipeline. Ranks map 1:1
onto cards; the MPI exchange runs on the host (a host-memory copy plus
latency, as the ranks' source endpoints share a node here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.rtm.halo import Subdomain, decompose
from repro.apps.rtm.stencil import HALF_ORDER, laplacian_8th, stencil_cost
from repro.core.actions import OperandMode
from repro.core.buffer import Buffer
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.dataflow import FlowContext
from repro.sim.kernels import KernelCost

__all__ = ["RTMResult", "run_rtm"]

_H = HALF_ORDER


@dataclass
class RTMResult:
    """Outcome of one propagation run."""

    scheme: str
    exchange: str
    nranks: int
    steps: int
    elapsed_s: float
    points: int
    mpoints_per_s: float
    halo_ratio: float
    field: Optional[np.ndarray] = None  # thread backend with real data


def _stencil(points: float, optimized: bool, imbalance: float = 0.0) -> KernelCost:
    cost = stencil_cost(points * (1.0 + imbalance))
    if not optimized:
        cost = KernelCost("stencil_scalar", cost.flops, cost.size, cost.bytes_moved)
    return cost


# -- real kernels (thread backend) ---------------------------------------------


def k_rtm_slab(out_prev, cur, below, above, vdt2: float) -> None:
    """Propagate one slab: out_prev := 2 cur - out_prev + vdt2 lap(cur).

    ``out_prev`` holds the previous time step on entry (the ping-pong
    slot being overwritten). ``below``/``above`` are the chain
    neighbours' current values (their adjacent HALF_ORDER planes are
    used) or the scalar 0 at a global boundary. x/y faces are zero
    (homogeneous Dirichlet), matching the monolithic reference.
    """
    m, ny, nx = cur.shape
    pad = np.zeros((m + 2 * _H, ny + 2 * _H, nx + 2 * _H))
    pad[_H:-_H, _H:-_H, _H:-_H] = cur
    if isinstance(below, np.ndarray):
        pad[:_H, _H:-_H, _H:-_H] = below[-_H:]
    if isinstance(above, np.ndarray):
        pad[-_H:, _H:-_H, _H:-_H] = above[:_H]
    lap = np.empty((m, ny, nx))
    laplacian_8th(pad, lap)
    out_prev[:] = 2.0 * cur - out_prev + vdt2 * lap


def k_mpi_exchange(ghost_r, ghost_l, halo_hi, halo_lo) -> None:
    """The rank pair exchange: left's top -> right's lower ghost, and
    right's bottom -> left's upper ghost."""
    np.copyto(ghost_r, halo_hi)
    np.copyto(ghost_l, halo_lo)


def _register(hs: HStreams) -> None:
    hs.register_kernel("rtm_stencil", fn=k_rtm_slab, cost_fn=None)
    hs.register_kernel("rtm_whole", fn=lambda *a: None, cost_fn=None)
    hs.register_kernel("mpi_exchange", fn=k_mpi_exchange, cost_fn=None)


def _throughput(points_per_step: int, steps: int, elapsed: float) -> float:
    return points_per_step * steps / elapsed / 1e6 if elapsed > 0 else float("inf")


# -- slab chains -------------------------------------------------------------------


def _chain(sub: Subdomain) -> List[Tuple[str, int]]:
    """The z-ordered (name, planes) slab chain of one subdomain."""
    chain: List[Tuple[str, int]] = []
    if sub.has_lower:
        chain.append(("halo_lo", _H))
    bulk_planes = sub.bulk_points // sub.plane_points
    if bulk_planes < 2 * _H + 1:
        raise ValueError(
            f"rank {sub.rank}: {bulk_planes} bulk planes cannot split into "
            f"edge/middle slabs; use thicker subdomains"
        )
    chain.append(("bulk_lo", _H))
    chain.append(("bulk_mid", bulk_planes - 2 * _H))
    chain.append(("bulk_hi", _H))
    if sub.has_upper:
        chain.append(("halo_hi", _H))
    return chain


def _make_rank_buffers(
    hs: HStreams, sub: Subdomain
) -> Dict[str, List[Optional[Buffer]]]:
    """Ping-pong (even/odd generation) slab buffers for one rank.

    Card instances allocate eagerly, outside the timed loop (setup, not
    steady state).
    """
    out: Dict[str, List[Optional[Buffer]]] = {}
    plane_bytes = sub.plane_points * 8
    specs = dict(_chain(sub))
    specs["ghost_lo"] = _H if sub.has_lower else 0
    specs["ghost_hi"] = _H if sub.has_upper else 0
    domain = sub.rank + 1
    for name, planes in specs.items():
        if planes == 0:
            out[name] = [None, None]
            continue
        out[name] = [
            hs.buffer_create(
                nbytes=planes * plane_bytes,
                name=f"r{sub.rank}.{name}.{g}",
                domains=[domain],
            )
            for g in range(2)
        ]
    return out


def _slab_tensor(buf: Buffer, planes: int, sub: Subdomain, mode) -> "object":
    return buf.tensor((planes, sub.ny, sub.nx), mode=mode)


def _load_initial_field(hs, subs, bufs, field) -> None:
    """Scatter padded (cur0, prev0) into the slab host instances."""
    cur0, prev0 = field
    for sub, b in zip(subs, bufs):
        z = sub.z0  # global interior plane of the chain start
        for name, planes in _chain(sub):
            for gen, src in ((0, cur0), (1, prev0)):
                buf = b[name][gen]
                view = buf.view(0, shape=(planes, sub.ny, sub.nx))
                view[:] = src[_H + z : _H + z + planes, _H:-_H, _H:-_H]
            z += planes
        # Prime the ghosts with the neighbours' initial halo values.
        if sub.has_lower:
            b["ghost_lo"][0].view(0, shape=(_H, sub.ny, sub.nx))[:] = (
                cur0[sub.z0 : _H + sub.z0, _H:-_H, _H:-_H]
            )
        if sub.has_upper:
            zhi = sub.z0 + sub.nz
            b["ghost_hi"][0].view(0, shape=(_H, sub.ny, sub.nx))[:] = (
                cur0[_H + zhi : 2 * _H + zhi, _H:-_H, _H:-_H]
            )


def _gather_field(subs, bufs, gen: int, ny: int, nx: int) -> np.ndarray:
    """Assemble the padded wavefield from the slab host instances."""
    nz = sum(s.nz for s in subs)
    out = np.zeros((nz + 2 * _H, ny + 2 * _H, nx + 2 * _H))
    for sub, b in zip(subs, bufs):
        z = sub.z0
        for name, planes in _chain(sub):
            view = b[name][gen].view(0, shape=(planes, sub.ny, sub.nx))
            out[_H + z : _H + z + planes, _H:-_H, _H:-_H] = view
            z += planes
    return out


# -- entry point -------------------------------------------------------------------


def run_rtm(
    hs: HStreams,
    grid=(2048, 512, 512),
    nranks: int = 1,
    steps: int = 10,
    scheme: str = "async",
    exchange: str = "dependence",
    optimized: bool = True,
    imbalance: float = 0.0,
    periodic: bool = True,
    field: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    vdt2: float = 0.05,
    replay: bool = False,
) -> RTMResult:
    """Propagate ``steps`` time steps and return throughput.

    ``imbalance`` inflates rank 0's bulk work (velocity-model-dependent
    load), the situation in which the dependence-based exchange shines.
    ``field=(cur0, prev0)`` (padded arrays, thread backend) makes the
    run compute real physics; the final field returns in the result.
    ``replay=True`` (async scheme only) captures one even+odd step pair
    with ``capture_graph()`` and replays it for the remaining steps —
    same actions, same numerics, near-zero admission cost per step.
    """
    if scheme not in ("host", "sync", "async"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if exchange not in ("dependence", "barrier"):
        raise ValueError(f"unknown exchange {exchange!r}")
    if replay and scheme != "async":
        raise ValueError(
            "replay=True needs scheme='async': the other schemes block "
            "the host inside the step loop, which capture forbids"
        )
    nz, ny, nx = grid
    if steps < 1:
        raise ValueError("steps must be >= 1")
    _register(hs)

    if scheme == "host":
        return _run_host(hs, grid, steps, optimized)
    if hs.ndomains - 1 < nranks:
        raise ValueError(
            f"{nranks} ranks need {nranks} cards; platform has {hs.ndomains - 1}"
        )
    subs = decompose(nz, ny, nx, nranks, periodic=periodic)
    if scheme == "sync":
        return _run_schemes(hs, subs, steps, optimized, imbalance, "sync",
                            "dependence", field, vdt2, False)
    return _run_schemes(hs, subs, steps, optimized, imbalance, "async",
                        exchange, field, vdt2, replay)


def _run_host(hs, grid, steps, optimized) -> RTMResult:
    nz, ny, nx = grid
    points = nz * ny * nx
    wide = hs.stream_create(
        domain=0, cpu_mask=range(hs.domain(0).device.total_cores), name="rtm-host"
    )
    token = hs.buffer_create(nbytes=8, name="field")  # dependence token
    t0 = hs.elapsed()
    for _ in range(steps):
        hs.enqueue_compute(
            wide,
            "rtm_whole",
            args=(token.tensor((1,), mode=OperandMode.INOUT),),
            cost=_stencil(points, optimized),
            label="step",
        )
    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    return RTMResult(
        scheme="host", exchange="-", nranks=1, steps=steps, elapsed_s=elapsed,
        points=points, mpoints_per_s=_throughput(points, steps, elapsed),
        halo_ratio=0.0,
    )


def _run_schemes(
    hs, subs, steps, optimized, imbalance, scheme, exchange, field, vdt2, replay
) -> RTMResult:
    flow = FlowContext(hs)
    host = hs.stream_create(domain=0, ncores=4, name="mpi")
    halo_streams: List[Stream] = []
    bulk_streams: List[Stream] = []
    bufs = []
    for sub in subs:
        dom = sub.rank + 1
        total = hs.domain(dom).device.total_cores
        if scheme == "async":
            # Both streams span the whole card (oversubscription):
            # computes serialize on the cores while each stream keeps its
            # own FIFO, so halo work never idles a static core partition
            # and copies ride under bulk compute.
            halo_streams.append(hs.stream_create(
                domain=dom, cpu_mask=range(total), name=f"halo{sub.rank}"))
            bulk_streams.append(hs.stream_create(
                domain=dom, cpu_mask=range(total), name=f"bulk{sub.rank}"))
        else:
            one = hs.stream_create(domain=dom, cpu_mask=range(total),
                                   name=f"rank{sub.rank}")
            halo_streams.append(one)
            bulk_streams.append(one)
        bufs.append(_make_rank_buffers(hs, sub))
    if field is not None:
        _load_initial_field(hs, subs, bufs, field)
    # The initial slabs (both generations) must reach the cards before
    # the leapfrog reads them — also in the synthetic-data performance
    # runs, where skipping the load would mean the first steps read
    # sink ranges no transfer ever wrote (untimed: before t0).
    for sub, hstream, b in zip(subs, halo_streams, bufs):
        for name, _planes in _chain(sub):
            for gen in (0, 1):
                flow.send(hstream, b[name][gen])
    # Drain the load before starting the clock: the steady-state
    # pipeline is what the paper measures, not the one-time fill.
    hs.thread_synchronize()

    points = sum(s.total_points for s in subs)
    t0 = hs.elapsed()

    def run_step(step: int) -> None:
        p, q = step % 2, (step + 1) % 2
        step_evs = []
        for sub, hstream, bstream, b in zip(subs, halo_streams, bulk_streams, bufs):
            chain = _chain(sub)
            by_name = dict(chain)
            names = [n for n, _ in chain]

            # Loop variables are bound as defaults so each iteration's
            # helpers capture that iteration's subdomain, not the last.
            def neighbours(idx: int, *, sub=sub, b=b, names=names):
                below = b[names[idx - 1]][p] if idx > 0 else (
                    b["ghost_lo"][p] if sub.has_lower and names[idx] == "halo_lo"
                    else None
                )
                above = b[names[idx + 1]][p] if idx + 1 < len(names) else (
                    b["ghost_hi"][p] if sub.has_upper and names[idx] == "halo_hi"
                    else None
                )
                return below, above

            def enqueue_slab(idx: int, stream, pts_imbalance=0.0, *,
                             step=step, sub=sub, b=b, names=names):
                name = names[idx]
                planes = by_name[name]
                below, above = neighbours(idx)
                reads = [x for x in (b[name][p], below, above) if x is not None]
                args = (
                    _slab_tensor(b[name][q], planes, sub, OperandMode.INOUT),
                    _slab_tensor(b[name][p], planes, sub, OperandMode.IN),
                    _slab_tensor(below, below.nbytes // (8 * sub.plane_points),
                                 sub, OperandMode.IN) if below is not None else 0,
                    _slab_tensor(above, above.nbytes // (8 * sub.plane_points),
                                 sub, OperandMode.IN) if above is not None else 0,
                    vdt2,
                )
                return flow.compute(
                    stream, "rtm_stencil", args=args,
                    reads=tuple(reads) + (b[name][q],),
                    writes=(b[name][q],),
                    cost=_stencil(planes * sub.plane_points, optimized,
                                  pts_imbalance),
                    label=f"s{step}.{name}.r{sub.rank}",
                )

            halo_idx = [i for i, n in enumerate(names) if n.startswith("halo")]
            bulk_idx = [i for i, n in enumerate(names) if n.startswith("bulk")]
            # Ghosts for this step must be on the card.
            for gname in ("ghost_lo", "ghost_hi"):
                if b[gname][p] is not None:
                    flow.send(hstream, b[gname][p])
            # Halo slabs first, in the halo stream.
            for i in halo_idx:
                ev = enqueue_slab(i, hstream)
                step_evs.append(ev)
                if scheme == "async" and exchange == "dependence":
                    # hStreams: the copy rides the same stream; operand
                    # dependences release it when ITS halo completes.
                    flow.retrieve(hstream, b[names[i]][q])
            if scheme == "async" and exchange == "barrier" and halo_idx:
                # CUDA-style: all halo work finishes before any copy.
                hs.event_stream_wait(hstream, [], operands=None,
                                     label="halo-barrier")
                for i in halo_idx:
                    flow.retrieve(hstream, b[names[i]][q])
            # Bulk slabs: edges first so next step's halos unblock early.
            order = [i for i in bulk_idx if names[i] != "bulk_mid"] + [
                i for i in bulk_idx if names[i] == "bulk_mid"
            ]
            for i in order:
                imb = imbalance if sub.rank == 0 and names[i] == "bulk_mid" else 0.0
                step_evs.append(enqueue_slab(i, bstream, imb))
        if scheme == "sync":
            # Fully synchronous: drain compute, then copies, then exchange.
            hs.event_wait(step_evs)
            for _sub, s, b in zip(subs, halo_streams, bufs):
                for name in ("halo_lo", "halo_hi"):
                    pair = b.get(name)
                    if pair is not None and pair[q] is not None:
                        flow.retrieve(s, pair[q])
        _exchange_and_push(hs, flow, subs, halo_streams, bufs, host, q,
                           wait=scheme == "sync")

    if replay and steps >= 2:
        # Capture-once/replay-many: the steady-state loop enqueues the
        # same DAG every step, modulo the even/odd ping-pong parity — so
        # capture one even+odd *pair* warm (steps 0 and 1 really
        # execute) and replay it for the remaining pairs. Replay injects
        # the pair's pre-computed dependence edges; no per-action window
        # scan runs in the steady state. The synchronize between pairs
        # re-establishes the cross-pair ordering the template dropped
        # (its external deps) — the sync scheme drains every step anyway
        # and is rejected in run_rtm, as capture forbids host syncs.
        with hs.capture_graph() as pair:
            run_step(0)
            run_step(1)
        hs.thread_synchronize()
        for _ in range(steps // 2 - 1):
            hs.replay(pair)
            hs.thread_synchronize()
        if steps % 2:
            # Trailing odd step: parity of step steps-1 is even, exactly
            # where the replayed pairs left the ping-pong.
            run_step(steps - 1)
    else:
        for step in range(steps):
            run_step(step)
    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0

    final = None
    if field is not None:
        # Pull every slab home; the last written generation is steps % 2.
        for sub, hstream, b in zip(subs, halo_streams, bufs):
            for name, _planes in _chain(sub):
                flow.retrieve(hstream, b[name][steps % 2])
        hs.thread_synchronize()
        final = _gather_field(subs, bufs, steps % 2, subs[0].ny, subs[0].nx)
    return RTMResult(
        scheme=scheme, exchange=exchange if scheme == "async" else "-",
        nranks=len(subs), steps=steps, elapsed_s=elapsed, points=points,
        mpoints_per_s=_throughput(points, steps, elapsed),
        halo_ratio=subs[0].halo_ratio, field=final,
    )


def _exchange_and_push(hs, flow, subs, streams, bufs, host, q, wait) -> None:
    """MPI exchange on the host and ghost h2d pushes."""
    evs = []
    nr = len(subs)
    pairs = [(subs[r], subs[(r + 1) % nr]) for r in range(nr)]
    if not subs[0].has_lower:  # non-periodic: drop the wrap-around pair
        pairs = pairs[:-1]
    for left, right in pairs:
        lb, rb = bufs[left.rank], bufs[right.rank]
        n = _H * left.plane_points
        ev = flow.compute(
            host, "mpi_exchange",
            args=(
                rb["ghost_lo"][q].tensor((n,), mode=OperandMode.OUT),
                lb["ghost_hi"][q].tensor((n,), mode=OperandMode.OUT),
                lb["halo_hi"][q].tensor((n,), mode=OperandMode.IN),
                rb["halo_lo"][q].tensor((n,), mode=OperandMode.IN),
            ),
            reads=(lb["halo_hi"][q], rb["halo_lo"][q]),
            writes=(rb["ghost_lo"][q], lb["ghost_hi"][q]),
            cost=KernelCost(
                "mpi", flops=1.0, size=1.0,
                bytes_moved=2.0 * left.halo_bytes,
            ),
            label=f"mpi{left.rank}-{right.rank}",
        )
        evs.append(ev)
    if wait and evs:
        hs.event_wait(evs)
    push_evs = []
    for _sub, s, b in zip(subs, streams, bufs):
        for name in ("ghost_lo", "ghost_hi"):
            if b[name][q] is not None:
                ev = flow.send(s, b[name][q])
                if ev is not None:
                    push_evs.append(ev)
    if wait and push_evs:
        hs.event_wait(push_evs)
