"""An HLIB-like target-agnostic device API.

Petrobras' HLIB is a high-level Fortran90 library abstracting three back
ends (CUDA, OpenCL, CPU) behind one target-agnostic device-management
API [39]; the paper's point is that hStreams plugs in as a fourth back
end with no application changes, porting RTM to heterogeneous clusters
"quickly". This module reproduces that interface shape in Python: the
application codes against :class:`HLIB` verbs (alloc / put / get / run /
sync) and the constructor picks the plumbing.

Back ends:

* ``"hstreams"`` — an :class:`~repro.core.runtime.HStreams` runtime;
* ``"cuda"`` — the CUDA-Streams comparator model;
* ``"cpu"`` — host-as-target streams on the hStreams runtime.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.actions import OperandMode, XferDirection
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.models.cuda_streams import (
    MEMCPY_DEVICE_TO_HOST,
    MEMCPY_HOST_TO_DEVICE,
    CudaRuntime,
)
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform

__all__ = ["HLIB", "hlib_rtm_steps"]


class HLIB:
    """Target-agnostic device management for the RTM application."""

    BACKENDS = ("hstreams", "cuda", "cpu")

    def __init__(
        self,
        target: str = "hstreams",
        platform: Optional[Platform] = None,
        backend: str = "sim",
        config: Optional[RuntimeConfig] = None,
        nstreams: int = 2,
        trace: bool = False,
    ):
        if target not in self.BACKENDS:
            raise ValueError(f"unknown HLIB target {target!r}; use {self.BACKENDS}")
        self.target = target
        platform = platform if platform is not None else make_platform("HSW", 1)
        self._handles: Dict[str, Any] = {}
        if target == "cuda":
            self._cuda = CudaRuntime(platform=platform, backend=backend,
                                     config=config, trace=trace)
            self._streams = [self._cuda.stream_create() for _ in range(nstreams)]
            self._hs = self._cuda.hstreams
        else:
            self._cuda = None
            self._hs = HStreams(platform=platform, backend=backend,
                                config=config, trace=trace)
            domain = 0 if target == "cpu" else 1
            total = self._hs.domain(domain).device.total_cores
            nstr = min(nstreams, total)
            self._streams = [
                self._hs.stream_create(domain=domain, ncores=total // nstr)
                for _ in range(nstr)
            ]
        self._rr = 0

    # -- the Fortran-style verbs -------------------------------------------------

    def hl_alloc(self, name: str, nbytes: int) -> None:
        """Allocate a named device array."""
        if name in self._handles:
            raise ValueError(f"HLIB array {name!r} already allocated")
        if self.target == "cuda":
            self._handles[name] = self._cuda.malloc(nbytes)
        else:
            self._handles[name] = self._hs.buffer_create(nbytes=nbytes, name=name)

    def hl_free(self, name: str) -> None:
        """Release a named device array."""
        h = self._pop(name)
        if self.target == "cuda":
            self._cuda.free(h)
        else:
            self._hs.buffer_destroy(h)

    def hl_put(self, name: str, stream: int = 0,
               host: Optional[np.ndarray] = None) -> None:
        """Host-to-device copy of the named array."""
        h = self._get(name)
        if self.target == "cuda":
            src = host if host is not None else np.empty(0)
            self._cuda.memcpy_async(
                h, src, h.nbytes, MEMCPY_HOST_TO_DEVICE, self._pick(stream)
            )
        else:
            if host is not None and h.instances.get(0) is not None:
                h.instance_array(0)[: host.nbytes] = host.view(np.uint8).reshape(-1)
                # Out-of-band host write: keep the memory manager's
                # coherence current so the upload is not elided.
                self._hs.memory.note_external_host_write(h, 0, host.nbytes)
            self._hs.enqueue_xfer(self._pick(stream), h, XferDirection.SRC_TO_SINK)

    def hl_get(self, name: str, stream: int = 0,
               host: Optional[np.ndarray] = None) -> None:
        """Device-to-host copy of the named array."""
        h = self._get(name)
        if self.target == "cuda":
            dst = host if host is not None else np.empty(0)
            self._cuda.memcpy_async(
                dst, h, h.nbytes, MEMCPY_DEVICE_TO_HOST, self._pick(stream)
            )
        else:
            self._hs.enqueue_xfer(self._pick(stream), h, XferDirection.SINK_TO_SRC)
            if host is not None and h.instances.get(0) is not None:
                self._hs.thread_synchronize()
                host.view(np.uint8).reshape(-1)[:] = h.instance_array(0)[
                    : host.nbytes
                ]

    def hl_register(self, kernel: str, fn=None, cost_fn=None) -> None:
        """Register a device kernel (one per back end in real HLIB)."""
        if self.target == "cuda":
            self._cuda.register_kernel(kernel, fn=fn, cost_fn=cost_fn)
        else:
            self._hs.register_kernel(kernel, fn=fn, cost_fn=cost_fn)

    def hl_run(self, kernel: str, names: Sequence[str] = (), stream: int = 0,
               cost: Optional[KernelCost] = None, args: Sequence = ()) -> None:
        """Launch a kernel over named arrays."""
        handles = [self._get(n) for n in names]
        if self.target == "cuda":
            self._cuda.launch(self._pick(stream), kernel,
                              args=tuple(handles) + tuple(args), cost=cost)
        else:
            ops = [h.all(OperandMode.INOUT) for h in handles]
            self._hs.enqueue_compute(self._pick(stream), kernel,
                                     args=tuple(ops) + tuple(args), cost=cost)

    def hl_sync(self) -> None:
        """Wait for all device work."""
        if self.target == "cuda":
            self._cuda.device_synchronize()
        else:
            self._hs.thread_synchronize()

    def hl_elapsed(self) -> float:
        """Seconds since init (virtual under sim)."""
        return (self._cuda or self._hs).elapsed()

    def hl_fini(self) -> None:
        """Tear the back end down."""
        if self._cuda is not None:
            self._cuda.fini()
        else:
            self._hs.fini()

    # -- internals -------------------------------------------------------------------

    def _pick(self, stream: int):
        return self._streams[stream % len(self._streams)]

    def _get(self, name: str):
        try:
            return self._handles[name]
        except KeyError:
            raise ValueError(f"HLIB array {name!r} was never allocated") from None

    def _pop(self, name: str):
        h = self._get(name)
        del self._handles[name]
        return h


def hlib_rtm_steps(
    hl: HLIB,
    grid=(256, 256, 256),
    steps: int = 4,
    halo_planes: int = 4,
) -> float:
    """Petrobras' RTM inner loop written against HLIB verbs only.

    This is the porting claim in code: the identical program runs over
    the hStreams, CUDA, or CPU back end, chosen at :class:`HLIB`
    construction — "all the device management needed is done with a
    high-level target-agnostic API" (paper §V). Returns elapsed seconds.
    """
    nz, ny, nx = grid
    points = nz * ny * nx
    halo_pts = halo_planes * ny * nx
    from repro.sim.kernels import stencil as stencil_cost

    hl.hl_register("hl_stencil", fn=lambda *a: None, cost_fn=None)
    hl.hl_alloc("wave0", points * 8)
    hl.hl_alloc("wave1", points * 8)
    hl.hl_alloc("halo", halo_pts * 8)
    t0 = hl.hl_elapsed()
    hl.hl_put("wave0")
    hl.hl_put("wave1")
    for step in range(steps):
        cur = "wave0" if step % 2 == 0 else "wave1"
        nxt = "wave1" if step % 2 == 0 else "wave0"
        # Halo slab first (stream 0), then bulk (stream 1).
        hl.hl_run("hl_stencil", names=[nxt, cur, "halo"], stream=0,
                  cost=stencil_cost(halo_pts))
        hl.hl_run("hl_stencil", names=[nxt, cur], stream=1,
                  cost=stencil_cost(points - halo_pts))
        hl.hl_get("halo", stream=0)
        hl.hl_put("halo", stream=0)  # the (self-)exchange round trip
    hl.hl_sync()
    elapsed = hl.hl_elapsed() - t0
    for name in ("wave0", "wave1", "halo"):
        hl.hl_free(name)
    return elapsed
