"""Domain decomposition and the halo/bulk split.

A production grid is decomposed along z into one subdomain per MPI rank.
Within each subdomain, grid points divide into (paper §V):

* **halo points** — the ``HALF_ORDER`` planes at each cut face, whose
  fresh values neighbours need every step;
* **interior (bulk) points** — everything else, which can compute while
  the halo exchange is in flight.

Halo work should be prioritized so the exchange starts early and hides
under bulk compute; the ratio of halo to interior points — which grows
with smaller subdomains or higher-order stencils — governs whether a
barrier-style exchange is good enough or dependence-based out-of-order
scheduling is needed (the paper's two schemes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.rtm.stencil import HALF_ORDER

__all__ = ["Subdomain", "decompose"]


@dataclass(frozen=True)
class Subdomain:
    """One rank's slab of the global grid (interior coordinates)."""

    rank: int
    z0: int  # global interior start
    nz: int  # interior thickness
    ny: int
    nx: int
    has_lower: bool  # a neighbour below (rank - 1)
    has_upper: bool  # a neighbour above (rank + 1)

    def __post_init__(self) -> None:
        if self.nz < 1 or self.ny < 1 or self.nx < 1:
            raise ValueError(f"empty subdomain {self}")
        need = (self.has_lower + self.has_upper) * HALF_ORDER
        if self.nz < max(need, 1):
            raise ValueError(
                f"rank {self.rank}: {self.nz} planes cannot carry "
                f"{need} halo planes"
            )

    # -- point counts ----------------------------------------------------------

    @property
    def plane_points(self) -> int:
        """Points per z-plane."""
        return self.ny * self.nx

    @property
    def total_points(self) -> int:
        """All interior points of this subdomain."""
        return self.nz * self.plane_points

    @property
    def halo_points(self) -> int:
        """Points whose values neighbours need this step."""
        return (
            (HALF_ORDER if self.has_lower else 0)
            + (HALF_ORDER if self.has_upper else 0)
        ) * self.plane_points

    @property
    def bulk_points(self) -> int:
        """Interior points not in any halo."""
        return self.total_points - self.halo_points

    @property
    def halo_ratio(self) -> float:
        """halo / interior — the paper's key regime parameter."""
        return self.halo_points / max(self.bulk_points, 1)

    @property
    def halo_bytes(self) -> int:
        """Bytes exchanged per face per step (float64 wavefield)."""
        return HALF_ORDER * self.plane_points * 8

    # -- slab ranges (local interior coordinates) -----------------------------------

    def lower_halo_range(self) -> Optional[Tuple[int, int]]:
        """Local z-range of the lower halo slab, if any."""
        return (0, HALF_ORDER) if self.has_lower else None

    def upper_halo_range(self) -> Optional[Tuple[int, int]]:
        """Local z-range of the upper halo slab, if any."""
        return (self.nz - HALF_ORDER, self.nz) if self.has_upper else None

    def bulk_range(self) -> Tuple[int, int]:
        """Local z-range of the bulk slab."""
        lo = HALF_ORDER if self.has_lower else 0
        hi = self.nz - (HALF_ORDER if self.has_upper else 0)
        return (lo, hi)


def decompose(
    nz: int, ny: int, nx: int, nranks: int, periodic: bool = True
) -> List[Subdomain]:
    """Split an interior grid of ``nz`` planes into ``nranks`` slabs.

    ``periodic=True`` (the benchmark configuration, as in the paper every
    accelerator exchanges with neighbours every step) gives every rank
    both halos, closing the ring; ``periodic=False`` leaves the outer
    faces halo-free.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if nz < nranks * (2 * HALF_ORDER):
        raise ValueError(
            f"{nz} planes cannot feed {nranks} ranks with "
            f"{2 * HALF_ORDER}-plane minimum slabs"
        )
    base = nz // nranks
    extra = nz % nranks
    subs: List[Subdomain] = []
    z0 = 0
    for r in range(nranks):
        thick = base + (1 if r < extra else 0)
        subs.append(
            Subdomain(
                rank=r,
                z0=z0,
                nz=thick,
                ny=ny,
                nx=nx,
                has_lower=periodic or r > 0,
                has_upper=periodic or r < nranks - 1,
            )
        )
        z0 += thick
    return subs
