"""A Petrobras-like Reverse Time Migration kernel (paper §V/§VI).

RTM's core is a time-domain finite-difference wave propagator — an
8th-order-in-space stencil over a 3-D grid — run for thousands of steps
across MPI ranks, each offloading to an accelerator. Production grids do
not fit one card, so each rank's subdomain exchanges *halo* slabs with
its neighbours every step; processing halos first and overlapping the
exchange with interior (*bulk*) work is the streaming pattern the paper
analyzes.

* :mod:`repro.apps.rtm.stencil` — the real numpy propagator kernel plus
  its cost model;
* :mod:`repro.apps.rtm.halo` — 1-D domain decomposition with halo/bulk
  split;
* :mod:`repro.apps.rtm.propagator` — the three schemes the paper
  compares (host baseline, synchronous offload, asynchronous pipelined
  offload) and the FIFO-barrier vs. dependence-based exchange variants;
* :mod:`repro.apps.rtm.hlib` — an HLIB-like target-agnostic device API
  (the Fortran library Petrobras layers over CUDA/OpenCL/CPU back ends).
"""

from repro.apps.rtm.halo import Subdomain, decompose
from repro.apps.rtm.hlib import HLIB
from repro.apps.rtm.propagator import RTMResult, run_rtm
from repro.apps.rtm.stencil import (
    HALF_ORDER,
    propagate_reference,
    stencil_cost,
)

__all__ = [
    "Subdomain",
    "decompose",
    "HLIB",
    "RTMResult",
    "run_rtm",
    "HALF_ORDER",
    "propagate_reference",
    "stencil_cost",
]
