"""The eight customer-representative Abaqus workload models (Fig. 8).

The paper evaluates eight workloads — public benchmarks identified by
name (s4b, s8, s9, e5) and proprietary customer models assigned letters
(A, B, C), covering both symmetric and unsymmetric solvers. What we can
reproduce of each is its *shape*: how much factorization work it has,
how that work is distributed over supernode sizes, how much host-serial
assembly surrounds it, and how solver-dominant the whole application is
("The difference in speedups obtained for the solver and the full
application is dependent on how solver-dominant the workload is").

Each model generates a deterministic supernode list from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Workload", "WORKLOADS"]


@dataclass(frozen=True)
class Workload:
    """Parameters of one customer-representative model."""

    name: str
    symmetric: bool
    nfronts: int
    ncols_range: Tuple[int, int]  # log-uniform supernode widths
    aspect: float  # nrows / ncols
    #: Fraction of fronts too small to be worth offloading.
    small_front_fraction: float
    #: Host-side assembly traffic per front, in bytes per factor entry.
    assembly_bytes_per_entry: float
    #: Solver share of total application time on the IVB baseline.
    solver_fraction: float
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.ncols_range
        if not (0 < lo <= hi):
            raise ValueError(f"{self.name}: bad ncols_range {self.ncols_range}")
        if not (0.0 < self.solver_fraction <= 1.0):
            raise ValueError(f"{self.name}: bad solver_fraction")
        if not (0.0 <= self.small_front_fraction < 1.0):
            raise ValueError(f"{self.name}: bad small_front_fraction")
        if self.aspect < 1.0:
            raise ValueError(f"{self.name}: aspect must be >= 1")

    def supernodes(self) -> List[Tuple[int, int]]:
        """The deterministic (nrows, ncols) list, large fronts last
        (post-order of an elimination tree ends at the root)."""
        rng = np.random.default_rng(self.seed)
        lo, hi = self.ncols_range
        ncols = np.exp(rng.uniform(np.log(lo), np.log(hi), self.nfronts))
        ncols = np.sort(ncols.astype(int).clip(lo, hi))
        out = []
        for c in ncols:
            rows = int(c * self.aspect * rng.uniform(0.8, 1.2))
            out.append((max(rows, c), int(c)))
        return out

    def total_flops(self) -> float:
        """LDL^T (or LDU when unsymmetric) flops over all fronts."""
        scale = 1.0 if self.symmetric else 2.0
        return scale * sum(
            c * c * (r - c / 3.0) for r, c in self.supernodes()
        )


def _w(name, sym, nfronts, rng, aspect, small, asm, frac, seed) -> Workload:
    return Workload(
        name=name,
        symmetric=sym,
        nfronts=nfronts,
        ncols_range=rng,
        aspect=aspect,
        small_front_fraction=small,
        assembly_bytes_per_entry=asm,
        solver_fraction=frac,
        seed=seed,
    )


#: The Fig. 8 suite. Sizes are chosen so each solver run is seconds-to-
#: minutes of virtual time; solver fractions span weakly to strongly
#: solver-dominant cases, as the paper's spread of app-vs-solver
#: speedups implies.
WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        _w("s4b", True, 48, (900, 4200), 2.6, 0.18, 90.0, 0.82, 11),
        _w("s8", True, 40, (800, 3800), 2.4, 0.22, 105.0, 0.74, 12),
        _w("s9", True, 56, (700, 3200), 2.2, 0.30, 130.0, 0.62, 13),
        _w("e5", True, 36, (600, 2800), 2.0, 0.35, 150.0, 0.55, 14),
        _w("A", False, 30, (1000, 4500), 2.8, 0.15, 80.0, 0.88, 15),
        _w("B", False, 44, (800, 3600), 2.4, 0.25, 115.0, 0.68, 16),
        _w("C", True, 52, (750, 3400), 2.3, 0.28, 125.0, 0.72, 17),
        _w("x1", False, 34, (650, 3000), 2.1, 0.33, 145.0, 0.58, 18),
    ]
}
