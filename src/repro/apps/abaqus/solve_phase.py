"""The solve phase: streamed triangular solves against an LDL^T factor.

After factorization, Abaqus solves ``L D L^T x = b`` per load case:
forward substitution, diagonal scaling, backward substitution. The
right-hand side lives in one buffer whose *panel ranges* are the
operands, so the runtime's operand analysis extracts the available
concurrency automatically — the forward updates of disjoint trailing
ranges run in parallel across streams while the panel chain stays
ordered, with no explicit dependence management (the paper's central
ease-of-use claim, applied to a second solver phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.linalg import solve_triangular

from repro.core.actions import OperandMode, XferDirection
from repro.core.runtime import HStreams
from repro.apps.abaqus.supernode import SupernodeResult
from repro.sim.kernels import KernelCost

__all__ = ["SolveResult", "solve_supernode", "ldlt_solve_dense"]


def ldlt_solve_dense(L: np.ndarray, d: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference dense solve of L D L^T x = b."""
    y = solve_triangular(L, b, lower=True, unit_diagonal=True)
    z = y / d
    return solve_triangular(L.T, z, lower=False, unit_diagonal=True)


# -- sink kernels -----------------------------------------------------------------


def k_fwd_panel(y_panel: np.ndarray, block_top: np.ndarray) -> None:
    """y_p := (unit lower of the panel's top block)^{-1} y_p."""
    w = block_top.shape[1]
    y_panel[:] = solve_triangular(
        np.tril(block_top[:w], -1) + np.eye(w), y_panel, lower=True,
        unit_diagonal=True,
    )


def k_fwd_update(y_below: np.ndarray, block_low: np.ndarray,
                 y_panel: np.ndarray) -> None:
    """y_below -= L_below @ y_p."""
    y_below -= block_low @ y_panel


def k_diag_scale(y_panel: np.ndarray, d: np.ndarray) -> None:
    """y_p /= d_p."""
    y_panel /= d


def k_bwd_update(y_panel: np.ndarray, block_low: np.ndarray,
                 y_below: np.ndarray) -> None:
    """y_p -= L_below^T @ y_below."""
    y_panel -= block_low.T @ y_below


def k_bwd_panel(y_panel: np.ndarray, block_top: np.ndarray) -> None:
    """y_p := (unit upper L_pp^T)^{-1} y_p."""
    w = block_top.shape[1]
    Lpp = np.tril(block_top[:w], -1) + np.eye(w)
    y_panel[:] = solve_triangular(Lpp.T, y_panel, lower=False,
                                  unit_diagonal=True)


def _register(hs: HStreams) -> None:
    hs.register_kernel("ldlt_fwd_panel", fn=k_fwd_panel, cost_fn=None)
    hs.register_kernel("ldlt_fwd_update", fn=k_fwd_update, cost_fn=None)
    hs.register_kernel("ldlt_diag", fn=k_diag_scale, cost_fn=None)
    hs.register_kernel("ldlt_bwd_update", fn=k_bwd_update, cost_fn=None)
    hs.register_kernel("ldlt_bwd_panel", fn=k_bwd_panel, cost_fn=None)


def _trsv_cost(w: int) -> KernelCost:
    return KernelCost("dtrsm", flops=float(w) * w, size=float(w),
                      bytes_moved=8.0 * w * w / 2)


def _gemv_cost(m: int, w: int) -> KernelCost:
    return KernelCost("dgemm", flops=2.0 * m * w, size=float(min(m, w)),
                      bytes_moved=8.0 * (m * w + m + w))


# -- the streamed solve ------------------------------------------------------------


@dataclass
class SolveResult:
    """Outcome of one solve phase."""

    elapsed_s: float
    x: Optional[np.ndarray] = None  # thread backend


def solve_supernode(
    hs: HStreams,
    factor: SupernodeResult,
    b: Optional[np.ndarray] = None,
    domain: int = 1,
    nstreams: int = 3,
    streams=None,
) -> SolveResult:
    """Solve L D L^T x = b against a factored *square* supernode.

    ``b`` (thread backend) is not modified; the solution returns in the
    result. Sim runs pass ``b=None`` and get timing only.
    """
    if factor.nrows != factor.ncols:
        raise ValueError("the solve phase needs a square supernode factor")
    n = factor.ncols
    _register(hs)
    if streams is None:
        total = hs.domain(domain).device.total_cores
        nstr = min(nstreams, total)
        streams = [hs.stream_create(domain=domain, ncores=total // nstr)
                   for _ in range(nstr)]

    x_arr = None
    if b is not None:
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        x_arr = b.astype(np.float64, copy=True)
        rhs = hs.wrap(x_arr, name="rhs")
    else:
        rhs = hs.buffer_create(nbytes=8 * n, name="rhs")

    col0, widths = factor.col0, factor.widths
    blocks, d_bufs = factor.block_buffers, factor.d_buffers
    P = len(col0)

    def y_range(p: int, mode) -> object:
        return rhs.tensor((widths[p],), offset=8 * col0[p], mode=mode)

    def y_below(p: int, mode) -> object:
        m = n - col0[p] - widths[p]
        return rhs.tensor((m,), offset=8 * (col0[p] + widths[p]), mode=mode)

    t0 = hs.elapsed()
    # Panel-granular dependence tracking across streams: the RHS panel
    # ranges are the dependence unit; same-stream ordering is implicit
    # (FIFO + operands), cross-stream ordering inserts one scoped
    # event_stream_wait per producer/reader set — the same discipline
    # hStreams applications use everywhere.
    writers = {}  # panel -> (event, stream id)
    readers = {}  # panel -> list of (event, stream id)

    def panel_op(p: int, mode) -> object:
        return rhs.tensor((widths[p],), offset=8 * col0[p], mode=mode)

    def enqueue(stream, kernel, args, cost, label, read_panels, write_panels):
        needed = {}
        for q in set(read_panels) | set(write_panels):
            w_ev = writers.get(q)
            if w_ev and w_ev[1] != stream.id and not w_ev[0].is_complete():
                needed[id(w_ev[0])] = (w_ev[0], q)
        for q in set(write_panels):
            for r_ev, sid in readers.get(q, ()):
                if sid != stream.id and not r_ev.is_complete():
                    needed[id(r_ev)] = (r_ev, q)
        if needed:
            hs.event_stream_wait(
                stream,
                [ev for ev, _ in needed.values()],
                operands=[panel_op(q, OperandMode.INOUT)
                          for _, q in needed.values()],
            )
        ev = hs.enqueue_compute(stream, kernel, args=args, cost=cost,
                                label=label)
        for q in write_panels:
            writers[q] = (ev, stream.id)
            readers[q] = []
        for q in read_panels:
            readers.setdefault(q, []).append((ev, stream.id))
        return ev

    hs.enqueue_xfer(streams[0], rhs)  # RHS to the sink
    # Forward substitution: panel chain + fan-out updates.
    for p in range(P):
        m_low = n - col0[p] - widths[p]
        w = widths[p]
        enqueue(
            streams[0], "ldlt_fwd_panel",
            args=(y_range(p, OperandMode.INOUT),
                  blocks[p].tensor((factor.nrows - col0[p], w),
                                   mode=OperandMode.IN)),
            cost=_trsv_cost(w), label=f"fwd_panel{p}",
            read_panels=[p], write_panels=[p],
        )
        if m_low > 0:
            s_upd = streams[p % len(streams)]
            below = list(range(p + 1, P))
            enqueue(
                s_upd, "ldlt_fwd_update",
                args=(y_below(p, OperandMode.INOUT),
                      blocks[p].tensor((m_low, w), offset=8 * w * w,
                                       mode=OperandMode.IN),
                      y_range(p, OperandMode.IN)),
                cost=_gemv_cost(m_low, w), label=f"fwd_upd{p}",
                read_panels=[p] + below, write_panels=below,
            )
    # Diagonal scaling: disjoint panels, fully parallel across streams.
    for p in range(P):
        enqueue(
            streams[p % len(streams)], "ldlt_diag",
            args=(y_range(p, OperandMode.INOUT),
                  d_bufs[p].tensor((widths[p],), mode=OperandMode.IN)),
            cost=KernelCost("default", widths[p], float(widths[p])),
            label=f"diag{p}", read_panels=[p], write_panels=[p],
        )
    # Backward substitution: reverse panel chain.
    for p in reversed(range(P)):
        m_low = n - col0[p] - widths[p]
        w = widths[p]
        below = list(range(p + 1, P))
        if m_low > 0:
            enqueue(
                streams[0], "ldlt_bwd_update",
                args=(y_range(p, OperandMode.INOUT),
                      blocks[p].tensor((m_low, w), offset=8 * w * w,
                                       mode=OperandMode.IN),
                      y_below(p, OperandMode.IN)),
                cost=_gemv_cost(m_low, w), label=f"bwd_upd{p}",
                read_panels=[p] + below, write_panels=[p],
            )
        enqueue(
            streams[0], "ldlt_bwd_panel",
            args=(y_range(p, OperandMode.INOUT),
                  blocks[p].tensor((factor.nrows - col0[p], w),
                                   mode=OperandMode.IN)),
            cost=_trsv_cost(w), label=f"bwd_panel{p}",
            read_panels=[p], write_panels=[p],
        )
    hs.enqueue_xfer(streams[0], rhs, XferDirection.SINK_TO_SRC)
    hs.thread_synchronize()
    return SolveResult(elapsed_s=hs.elapsed() - t0, x=x_arr)
