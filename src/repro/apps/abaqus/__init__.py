"""A Simulia Abaqus/Standard-like sparse direct solver (paper §V).

Abaqus/Standard accelerates its symmetric (LDL^T) solver through a
target-agnostic streaming API with CUDA, OpenCL, and hStreams back ends.
This package reproduces the two experiments the paper reports:

* :mod:`repro.apps.abaqus.supernode` — the standalone test program that
  factorizes a single representative dense supernode (Fig. 9: KNC
  offload vs. HSW/IVB host-as-target streams);
* :mod:`repro.apps.abaqus.solver` — a multifrontal-style driver that
  processes all supernodes of a system in order, offloading large
  fronts;
* :mod:`repro.apps.abaqus.workloads` — the eight customer-representative
  workload models (s4b, s8, s9, e5, A, B, C, x1) behind the Fig. 8
  speedup bars.
"""

from repro.apps.abaqus.solve_phase import (
    SolveResult,
    ldlt_solve_dense,
    solve_supernode,
)
from repro.apps.abaqus.solver import SolverResult, solve_workload
from repro.apps.abaqus.supernode import (
    SupernodeResult,
    factorize_supernode,
    ldlt_dense,
)
from repro.apps.abaqus.workloads import WORKLOADS, Workload

__all__ = [
    "SolveResult",
    "ldlt_solve_dense",
    "solve_supernode",
    "SolverResult",
    "solve_workload",
    "SupernodeResult",
    "factorize_supernode",
    "ldlt_dense",
    "WORKLOADS",
    "Workload",
]
