"""Dense supernode LDL^T factorization over streams.

The Abaqus/Standard symmetric solver factorizes dense *supernodes*
(trapezoidal column blocks of the sparse factor) with an LDL^T scheme —
related to the paper's Cholesky reference code but with a diagonal D.

The standalone test program of Fig. 9 factorizes one representative
supernode entirely on a chosen target: a KNC card ("KNC offload", 4
streams x 60 threads) or the host ("host-as-target", 3 streams). Panels
run in the first stream (a serial chain); trailing updates fan out
across all streams; on a card, column blocks stream in ahead of their
first use and factored blocks stream home — all pipelined by the FIFO +
operand semantics.

The real kernels (thread backend) implement textbook unblocked LDL^T
panels plus GEMM-shaped inter-panel updates; :func:`ldlt_dense` is the
reference used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.actions import OperandMode
from repro.core.runtime import HStreams
from repro.linalg.dataflow import FlowContext
from repro.sim import kernels as K

__all__ = [
    "SupernodeResult",
    "factorize_supernode",
    "ldlt_dense",
    "k_ldlt_panel",
    "k_ldlt_update",
    "register_ldlt_kernels",
]


# -- reference and kernels ------------------------------------------------------


def ldlt_dense(A: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reference dense LDL^T (no pivoting): returns (L unit-lower, d)."""
    n = A.shape[0]
    W = A.astype(np.float64, copy=True)
    for j in range(n):
        d = W[j, j]
        col = W[j + 1 :, j].copy()
        lcol = col / d
        W[j + 1 :, j] = lcol
        W[j + 1 :, j + 1 :] -= np.outer(lcol, col[: n - 1 - j])
    L = np.tril(W, -1) + np.eye(n)
    return L, np.diag(W).copy()


def k_ldlt_panel(block: np.ndarray, d_out: np.ndarray) -> None:
    """Factor one panel in place.

    ``block`` has shape (m, w): the top w x w chunk is the symmetric
    diagonal part; rows below are the sub-diagonal part of the panel.
    On return ``block`` holds the (strictly lower + sub-diagonal) L
    entries with a unit diagonal implied, and ``d_out`` the D values.
    """
    m, w = block.shape
    for j in range(w):
        d = block[j, j]
        if d == 0.0:
            raise ZeroDivisionError("zero pivot in LDL^T panel")
        d_out[j] = d
        col = block[j + 1 :, j].copy()
        lcol = col / d
        block[j + 1 :, j] = lcol
        if j + 1 < w:
            block[j + 1 :, j + 1 : w] -= np.outer(lcol, col[: w - 1 - j])


def k_ldlt_update(
    Bq: np.ndarray, Lp_low: np.ndarray, Lp_mid: np.ndarray, d: np.ndarray
) -> None:
    """Trailing update: Bq -= Lp_low @ (Lp_mid * d)^T (GEMM-shaped)."""
    Bq -= Lp_low @ (Lp_mid * d).T


def _cost_panel(block, d_out) -> K.KernelCost:
    m, w = block.shape
    return K.ldlt_panel(m, w)


def _cost_update(Bq, Lp_low, Lp_mid, d) -> K.KernelCost:
    mq, wq = Bq.shape
    w = Lp_low.shape[1]
    return K.ldlt_update(mq, wq, w)


def register_ldlt_kernels(hs: HStreams) -> None:
    """Register the supernode kernels on a runtime (either backend)."""
    hs.register_kernel("ldlt_panel", fn=k_ldlt_panel, cost_fn=_cost_panel)
    hs.register_kernel("ldlt_update", fn=k_ldlt_update, cost_fn=_cost_update)


# -- the streamed factorization ----------------------------------------------------


@dataclass
class SupernodeResult:
    """Outcome of one supernode factorization."""

    nrows: int
    ncols: int
    panel: int
    elapsed_s: float
    flops: float
    gflops: float
    L: Optional[np.ndarray] = None  # thread backend, square supernodes only
    d: Optional[np.ndarray] = None
    buffers: tuple = ()  # the block/d buffers, for caller-managed teardown
    # Factor layout, kept for the solve phase:
    block_buffers: tuple = ()
    d_buffers: tuple = ()
    col0: tuple = ()
    widths: tuple = ()


def supernode_flops(nrows: int, ncols: int) -> float:
    """LDL^T flop count for a trapezoidal (nrows x ncols) supernode."""
    return float(ncols) ** 2 * (nrows - ncols / 3.0)


def factorize_supernode(
    hs: HStreams,
    nrows: int,
    ncols: int,
    panel: int = 256,
    domain: int = 1,
    nstreams: int = 4,
    data: Optional[np.ndarray] = None,
    flow: Optional[FlowContext] = None,
    streams=None,
    sync: bool = True,
    flop_scale: float = 1.0,
    panel_stream=None,
) -> SupernodeResult:
    """Factorize one dense supernode on ``domain``'s streams.

    ``data`` (thread backend) must be a square SPD-ish matrix when given
    (``nrows == ncols``); sim runs need only the dimensions. Passing a
    ``flow``/``streams`` pair lets the sparse solver batch many
    supernodes through shared streams without an intermediate sync.
    ``flop_scale=2`` models the unsymmetric (LDU) solver: both triangular
    factors are computed, doubling the arithmetic. ``panel_stream``
    overrides where the serial panel chain runs (a tuner typically gives
    it a machine-wide stream so the latency-bound panels use the whole
    domain); by default it shares ``streams[0]``.
    """
    if nrows < ncols or ncols < 1:
        raise ValueError(f"need nrows >= ncols >= 1, got {nrows}, {ncols}")
    if data is not None and nrows != ncols:
        raise ValueError("real data requires a square supernode")
    panel = min(panel, ncols)
    register_ldlt_kernels(hs)
    flow = flow if flow is not None else FlowContext(hs)
    if streams is None:
        total = hs.domain(domain).device.total_cores
        nstr = min(nstreams, total)
        streams = [hs.stream_create(domain=domain, ncores=total // nstr)
                   for _ in range(nstr)]

    npanels = -(-ncols // panel)
    col0 = [p * panel for p in range(npanels)]
    widths = [min(panel, ncols - c) for c in col0]
    blocks = []
    block_arrays = []
    t0 = hs.elapsed()
    for p in range(npanels):
        m = nrows - col0[p]
        if data is not None:
            arr = np.ascontiguousarray(data[col0[p] :, col0[p] : col0[p] + widths[p]])
            block_arrays.append(arr)
            blocks.append(hs.wrap(arr, name=f"sn_blk{p}"))
        else:
            blocks.append(
                hs.buffer_create(nbytes=8 * m * widths[p], name=f"sn_blk{p}")
            )
    d_bufs = []
    d_arrays = []
    for p in range(npanels):
        if data is not None:
            darr = np.zeros(widths[p])
            d_arrays.append(darr)
            d_bufs.append(hs.wrap(darr, name=f"sn_d{p}"))
        else:
            d_bufs.append(hs.buffer_create(nbytes=8 * widths[p], name=f"sn_d{p}"))

    if panel_stream is None:
        panel_stream = streams[0]
    for p in range(npanels):
        m = nrows - col0[p]
        w = widths[p]
        # Panel factorization (serial chain in the first stream).
        flow.send(panel_stream, blocks[p])
        panel_args = (
            blocks[p].tensor((m, w), mode=OperandMode.INOUT),
            d_bufs[p].tensor((w,), mode=OperandMode.OUT),
        )
        flow.compute(
            panel_stream,
            "ldlt_panel",
            args=panel_args,
            reads=(),
            writes=(blocks[p], d_bufs[p]),
            cost=_cost_panel(*panel_args).scaled(flop_scale)
            if flop_scale != 1.0
            else None,
            label=f"panel{p}",
        )
        # Trailing updates fan out across the streams; the factored
        # panel and its D are replicated operands, distributed once as
        # a collective instead of per consumer stream (updates order
        # behind the arrival via reads=).
        consumers = [streams[q % len(streams)] for q in range(p + 1, npanels)]
        if consumers:
            flow.broadcast(consumers, blocks[p], label=f"bcast sn_blk{p}")
            flow.broadcast(consumers, d_bufs[p], label=f"bcast sn_d{p}")
        for q in range(p + 1, npanels):
            s = streams[q % len(streams)]
            mq = nrows - col0[q]
            wq = widths[q]
            row_off = col0[q] - col0[p]
            flow.send(s, blocks[q])
            upd_args = (
                blocks[q].tensor((mq, wq), mode=OperandMode.INOUT),
                blocks[p].tensor(
                    (mq, w), offset=8 * row_off * w, mode=OperandMode.IN
                ),
                blocks[p].tensor(
                    (wq, w), offset=8 * row_off * w, mode=OperandMode.IN
                ),
                d_bufs[p].tensor((w,), mode=OperandMode.IN),
            )
            flow.compute(
                s,
                "ldlt_update",
                args=upd_args,
                reads=(blocks[p], d_bufs[p]),
                writes=(blocks[q],),
                cost=_cost_update(*upd_args).scaled(flop_scale)
                if flop_scale != 1.0
                else None,
                label=f"upd{p}->{q}",
            )
        # Factored panel streams home.
        flow.retrieve(panel_stream, blocks[p])
        flow.retrieve(panel_stream, d_bufs[p])

    if sync:
        hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    flops = supernode_flops(nrows, ncols) * flop_scale
    gflops = flops / elapsed / 1e9 if elapsed > 0 else float("inf")

    L = d = None
    if data is not None and sync:
        n = ncols
        L = np.eye(n)
        d = np.concatenate(d_arrays)
        for p in range(npanels):
            c0, w = col0[p], widths[p]
            L[c0:, c0 : c0 + w] = np.tril(block_arrays[p], -1)[:, :w]
            for jj in range(w):
                L[c0 + jj, c0 + jj] = 1.0
    return SupernodeResult(
        nrows=nrows, ncols=ncols, panel=panel, elapsed_s=elapsed,
        flops=flops, gflops=gflops, L=L, d=d,
        buffers=tuple(blocks) + tuple(d_bufs),
        block_buffers=tuple(blocks), d_buffers=tuple(d_bufs),
        col0=tuple(col0), widths=tuple(widths),
    )
