"""Multifrontal-style sparse LDL^T driver over supernodes.

The production solver "processes all of the supernodes in a given system
of equations in an optimized order" (paper §V). This driver reproduces
its structure:

* fronts are processed in elimination order, in bounded-memory batches
  (buffers of completed fronts are destroyed before the next batch, as a
  real solver bounds its factor working set);
* each front is preceded by host-side **assembly** — gathering children
  contributions — modeled as memory-bandwidth-bound host work;
* **small fronts** stay on the host (offload would not amortize);
* large fronts are factorized over the streams of the host or a card,
  chosen by least accumulated load weighted by device DGEMM rate;
* unsymmetric systems run the LDU variant at twice the arithmetic.

Running with ``use_cards=False`` gives the Xeon-only baseline the Fig. 8
speedups are measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.actions import OperandMode
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.dataflow import FlowContext
from repro.apps.abaqus.supernode import factorize_supernode, supernode_flops
from repro.apps.abaqus.workloads import Workload
from repro.sim.kernels import KernelCost

__all__ = ["SolverResult", "solve_workload"]


@dataclass
class SolverResult:
    """Outcome of one sparse factorization."""

    workload: str
    elapsed_s: float
    flops: float
    gflops: float
    nfronts: int
    offloaded_fronts: int
    host_fronts: int
    per_domain_flops: Dict[int, float] = field(default_factory=dict)


def _assembly_cost(nrows: int, ncols: int, bytes_per_entry: float) -> KernelCost:
    """Host assembly: gather/scatter of children updates, bandwidth-bound."""
    entries = nrows * ncols
    return KernelCost(
        kernel="assembly",
        flops=2.0 * entries,  # index arithmetic, negligible vs the traffic
        size=float(ncols),
        bytes_moved=entries * bytes_per_entry,
    )


def solve_workload(
    hs: HStreams,
    workload: Workload,
    use_cards: bool = True,
    streams_per_card: int = 4,
    host_streams: int = 3,
    panel: int = 384,
    batch: int = 8,
) -> SolverResult:
    """Factorize one workload's system; returns timing and distribution."""
    flow = FlowContext(hs)
    hs.register_kernel("assembly", fn=lambda *a: None, cost_fn=None)

    host_cores = hs.domain(0).device.total_cores
    asm_stream = hs.stream_create(domain=0, cpu_mask=range(host_cores), name="assembly")
    width = max(host_cores // host_streams, 1)
    host_pool: List[Stream] = [
        hs.stream_create(domain=0, ncores=width, name=f"solv-h{i}")
        for i in range(host_streams)
    ]
    card_pools: Dict[int, List[Stream]] = {}
    panel_streams: Dict[int, Stream] = {0: asm_stream}
    if use_cards:
        for dom in hs.card_domains:
            total = dom.device.total_cores
            nstr = min(streams_per_card, total)
            card_pools[dom.index] = [
                hs.stream_create(domain=dom.index, ncores=total // nstr)
                for _ in range(nstr)
            ]
            # Panels are latency-bound: give them a machine-wide stream.
            panel_streams[dom.index] = hs.stream_create(
                domain=dom.index, cpu_mask=range(total), name=f"panel-d{dom.index}"
            )

    fronts = workload.supernodes()
    n_small = int(round(workload.small_front_fraction * len(fronts)))
    # Fronts are sorted by size: the first n_small are the small ones.
    flop_scale = 1.0 if workload.symmetric else 2.0

    # Least-accumulated-load device choice, weighted by DGEMM rate.
    load: Dict[int, float] = {0: 0.0, **{d: 0.0 for d in card_pools}}
    rate: Dict[int, float] = {
        d: hs.domain(d).device.gflops("dgemm", panel) for d in load
    }

    t0 = hs.elapsed()
    stats = {"offloaded": 0, "host": 0}
    per_domain: Dict[int, float] = {d: 0.0 for d in load}
    pending_buffers = []
    for idx, (nrows, ncols) in enumerate(fronts):
        # Host assembly of the front (serial solver phase).
        asm = _assembly_cost(nrows, ncols, workload.assembly_bytes_per_entry)
        scratch = hs.buffer_create(nbytes=8, name=f"asm{idx}")
        flow.compute(
            asm_stream,
            "assembly",
            args=(scratch.tensor((1,), mode=OperandMode.INOUT),),
            writes=(scratch,),
            cost=asm,
            label=f"assembly{idx}",
        )
        pending_buffers.append(scratch)
        # Placement.
        flops = supernode_flops(nrows, ncols) * flop_scale
        if idx < n_small or not card_pools:
            domain = 0
        else:
            domain = min(load, key=lambda d: (load[d] + flops) / rate[d])
        load[domain] += flops
        per_domain[domain] += flops
        stats["host" if domain == 0 else "offloaded"] += 1
        pool = host_pool if domain == 0 else card_pools[domain]
        res = factorize_supernode(
            hs,
            nrows,
            ncols,
            panel=panel,
            domain=domain,
            data=None,
            flow=flow,
            streams=pool,
            sync=False,
            flop_scale=flop_scale,
            panel_stream=panel_streams[domain],
        )
        pending_buffers.extend(res.buffers)
        # Bounded working set: drain and release every `batch` fronts.
        if (idx + 1) % batch == 0:
            hs.thread_synchronize()
            for buf in pending_buffers:
                hs.buffer_destroy(buf)
            pending_buffers.clear()

    hs.thread_synchronize()
    for buf in pending_buffers:
        hs.buffer_destroy(buf)
    elapsed = hs.elapsed() - t0
    total_flops = sum(per_domain.values())
    return SolverResult(
        workload=workload.name,
        elapsed_s=elapsed,
        flops=total_flops,
        gflops=total_flops / elapsed / 1e9 if elapsed > 0 else float("inf"),
        nfronts=len(fronts),
        offloaded_fronts=stats["offloaded"],
        host_fronts=stats["host"],
        per_domain_flops=per_domain,
    )
