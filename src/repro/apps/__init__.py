"""Application-level reproductions (paper §V/§VI).

* :mod:`repro.apps.abaqus` — a Simulia Abaqus/Standard-like direct
  solver: dense supernode LDL^T factorization streamed over host and
  cards, a multifrontal-style sparse driver, and the eight
  customer-representative workload models behind Fig. 8/Fig. 9.
* :mod:`repro.apps.rtm` — a Petrobras-like Reverse Time Migration:
  3-D finite-difference wave propagation with domain decomposition,
  halo/bulk streams, synchronous vs. asynchronous pipelined offload, and
  an HLIB-like target-agnostic API.
"""
