"""An OpenMP 4.0 / 4.5 target-offload model.

Captures the semantics the paper compares against (§IV):

* A clear **separation between host and device constructs**: devices are
  whole cards; there is no sub-device partitioning, so at most one
  offload region runs per device at a time, full width.
* **OpenMP 4.0**: ``target`` regions and ``target data`` maps are
  *synchronous* — the encountering host thread blocks; no asynchronous
  transfers exist, so no compute/transfer overlap is possible.
* **OpenMP 4.5**: ``nowait`` makes target regions and updates deferred
  tasks, and ``depend(in/out/inout: var)`` orders them — closing the
  async gap but still without sub-device streams.

The runtime maps each logical device onto one full-width hStreams stream
(4.5) or onto synchronous enqueue+wait pairs (4.0).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.actions import OperandMode, XferDirection
from repro.core.buffer import Buffer
from repro.core.events import HEvent
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform

__all__ = ["OpenMPRuntime"]


class OpenMPRuntime:
    """One process's OpenMP device state.

    ``spec`` selects "4.0" (synchronous) or "4.5" (``nowait``/``depend``).
    """

    def __init__(
        self,
        platform: Optional[Platform] = None,
        backend: str = "sim",
        config: Optional[RuntimeConfig] = None,
        spec: str = "4.5",
        trace: bool = True,
    ):
        if spec not in ("4.0", "4.5"):
            raise ValueError(f"spec must be '4.0' or '4.5', got {spec!r}")
        self.spec = spec
        self._hs = HStreams(
            platform=platform if platform is not None else make_platform("HSW", 1),
            backend=backend,
            config=config,
            trace=trace,
        )
        # One logical device per card; each is a single full-width queue.
        self._device_streams = [
            self._hs.stream_create(
                domain=d.index,
                ncores=d.device.total_cores,
                name=f"omp-dev{d.index - 1}",
            )
            for d in self._hs.card_domains
        ]
        self._mapped: Dict[int, Buffer] = {}
        self._task_events: List[HEvent] = []

    # -- data environment -------------------------------------------------------

    @property
    def num_devices(self) -> int:
        """omp_get_num_devices."""
        return len(self._device_streams)

    def _buffer_for(self, array) -> Buffer:
        """Map a host variable to its device buffer.

        Accepts a numpy array (wrapped zero-copy) or any object exposing
        ``nbytes`` (a size-only stand-in for sim runs).
        """
        if isinstance(array, np.ndarray):
            key = array.__array_interface__["data"][0]
        else:
            key = id(array)
        buf = self._mapped.get(key)
        if buf is None:
            if isinstance(array, np.ndarray):
                buf = self._hs.wrap(array)
            else:
                buf = self._hs.buffer_create(nbytes=int(array.nbytes))
            self._mapped[key] = buf
        return buf

    def target_enter_data(self, device: int, arrays: Sequence[np.ndarray]) -> None:
        """``target enter data map(to: ...)``: allocate + copy to device.

        Synchronous under 4.0 *and* as a bare 4.5 construct (``nowait``
        belongs on the construct; use :meth:`target_update_to` for async).
        """
        stream = self._stream(device)
        evs = [
            self._hs.enqueue_xfer(stream, self._buffer_for(a), label="map(to)")
            for a in arrays
        ]
        self._hs.event_wait(evs)

    def target_exit_data(self, device: int, arrays: Sequence[np.ndarray]) -> None:
        """``target exit data map(from: ...)``: copy back + release."""
        stream = self._stream(device)
        evs = [
            self._hs.enqueue_xfer(
                stream, self._buffer_for(a), XferDirection.SINK_TO_SRC, label="map(from)"
            )
            for a in arrays
        ]
        self._hs.event_wait(evs)

    def target_update_to(
        self, device: int, array: np.ndarray, nowait: bool = False
    ) -> Optional[HEvent]:
        """``target update to(...)`` — ``nowait`` requires spec 4.5."""
        self._check_nowait(nowait)
        stream = self._stream(device)
        ev = self._hs.enqueue_xfer(stream, self._buffer_for(array), label="update-to")
        if nowait:
            self._task_events.append(ev)
            return ev
        self._hs.event_wait([ev])
        return None

    def target_update_from(
        self, device: int, array: np.ndarray, nowait: bool = False
    ) -> Optional[HEvent]:
        """``target update from(...)`` — ``nowait`` requires spec 4.5."""
        self._check_nowait(nowait)
        stream = self._stream(device)
        ev = self._hs.enqueue_xfer(
            stream, self._buffer_for(array), XferDirection.SINK_TO_SRC, label="update-from"
        )
        if nowait:
            self._task_events.append(ev)
            return ev
        self._hs.event_wait([ev])
        return None

    # -- target regions -------------------------------------------------------------

    def register_kernel(self, name: str, fn=None, cost_fn=None) -> None:
        """Register the body of a ``target`` region by name."""
        self._hs.register_kernel(name, fn=fn, cost_fn=cost_fn)

    def target(
        self,
        device: int,
        kernel: str,
        args: Sequence = (),
        cost: Optional[KernelCost] = None,
        nowait: bool = False,
        depend_in: Sequence[np.ndarray] = (),
        depend_out: Sequence[np.ndarray] = (),
    ) -> Optional[HEvent]:
        """Run a ``target`` region on ``device``.

        4.0: blocks the host until the region completes. 4.5 with
        ``nowait``: returns an event; ``depend`` clauses order it against
        other deferred work through the named variables.
        """
        self._check_nowait(nowait)
        stream = self._stream(device)
        operands = [
            self._buffer_for(a).all(OperandMode.IN) for a in depend_in
        ] + [self._buffer_for(a).all(OperandMode.OUT) for a in depend_out]
        resolved = [
            self._buffer_for(a).all_inout() if isinstance(a, np.ndarray) else a
            for a in args
        ]
        ev = self._hs.enqueue_compute(
            stream, kernel, args=resolved, operands=operands, cost=cost, label=kernel
        )
        if nowait:
            self._task_events.append(ev)
            return ev
        self._hs.event_wait([ev])
        return None

    def taskwait(self) -> None:
        """``taskwait``: block until all deferred target tasks complete."""
        if self._task_events:
            self._hs.event_wait(self._task_events)
            self._task_events.clear()

    # -- plumbing -----------------------------------------------------------------------

    def _stream(self, device: int):
        try:
            return self._device_streams[device]
        except IndexError:
            raise ValueError(
                f"no device {device}; omp_get_num_devices() == {self.num_devices}"
            ) from None

    def _check_nowait(self, nowait: bool) -> None:
        if nowait and self.spec == "4.0":
            raise ValueError(
                "nowait on target constructs requires OpenMP 4.5 "
                "(4.0 has no asynchronous offload)"
            )

    def elapsed(self) -> float:
        """Virtual (sim) or wall (thread) seconds since init."""
        return self._hs.elapsed()

    @property
    def hstreams(self) -> HStreams:
        """Escape hatch to the underlying runtime (used by tests)."""
        return self._hs

    def fini(self) -> None:
        """Tear down the device data environment."""
        self.taskwait()
        self._hs.fini()
