"""A CUDA-Streams-like programming model.

Reproduces the semantics the paper contrasts with hStreams (§IV):

* **Strict FIFO execution** — operations in one stream execute strictly
  in order; independent operations cannot overtake (to pipeline, the
  programmer must split work across streams and add explicit event
  synchronization).
* **Opaque handles** — streams and events are opaque objects that must be
  explicitly created and destroyed (vs. hStreams' plain integers and
  implicit per-action events).
* **Per-device address spaces** — ``malloc`` returns a pointer valid only
  on one device; with multiple devices the programmer juggles one
  variable per device per matrix (the Fig. 3 support-variable count).
* **Whole-device kernels** — no sub-device resource partitioning; kernels
  from different streams contend for the whole device.

Runs on either backend via a private hStreams runtime whose streams are
created ``strict_fifo=True`` with full-device masks. Strict in-order
execution is the scheduler's :class:`~repro.core.dependences.StrictFifoPolicy`
applied to those streams — the same scheduling core as hStreams, with a
different dependence policy.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actions import OperandMode, XferDirection
from repro.core.buffer import Buffer
from repro.core.events import HEvent
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform

__all__ = [
    "CudaError",
    "CudaRuntime",
    "CudaStream",
    "CudaEvent",
    "DevicePtr",
    "MEMCPY_HOST_TO_DEVICE",
    "MEMCPY_DEVICE_TO_HOST",
]

MEMCPY_HOST_TO_DEVICE = "h2d"
MEMCPY_DEVICE_TO_HOST = "d2h"

_handle_ids = itertools.count(0xC0DA0000)


class CudaError(Exception):
    """cudaError_t equivalent."""


class CudaStream:
    """An opaque stream handle (cudaStream_t)."""

    def __init__(self, device: int, inner: Stream):
        self._handle = next(_handle_ids)
        self.device = device
        self._inner = inner
        self._destroyed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<cudaStream_t {self._handle:#x} dev{self.device}>"


class CudaEvent:
    """An opaque event handle (cudaEvent_t); must be recorded to be useful."""

    def __init__(self) -> None:
        self._handle = next(_handle_ids)
        self._recorded: Optional[HEvent] = None
        self._destroyed = False


class DevicePtr:
    """A device-only address: valid on exactly one device.

    The application must keep one of these per device per matrix — the
    bookkeeping burden hStreams' unified proxy space removes.
    """

    def __init__(self, device: int, buffer: Buffer, nbytes: int):
        self.device = device
        self._buffer = buffer
        self.nbytes = nbytes
        self._freed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DevicePtr dev{self.device} {self.nbytes}B>"


class CudaRuntime:
    """Process-level CUDA-like state: devices, streams, events, memory."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        backend: str = "sim",
        config: Optional[RuntimeConfig] = None,
        trace: bool = True,
    ):
        self._hs = HStreams(
            platform=platform if platform is not None else make_platform("HSW", 1, card="K40X"),
            backend=backend,
            config=config,
            trace=trace,
        )
        if self._hs.ndomains < 2:
            raise CudaError("CUDA requires at least one device (card)")
        self._current_device = 0  # CUDA device 0 == platform domain 1
        self._host_allocs: Dict[int, Buffer] = {}
        self._kernels: Dict[str, Tuple] = {}
        self._pending_readbacks: List[Tuple[HEvent, Any]] = []

    # -- device management -----------------------------------------------------

    @property
    def device_count(self) -> int:
        """cudaGetDeviceCount."""
        return self._hs.ndomains - 1

    def set_device(self, device: int) -> None:
        """cudaSetDevice."""
        if not (0 <= device < self.device_count):
            raise CudaError(f"invalid device ordinal {device}")
        self._current_device = device

    def get_device(self) -> int:
        """cudaGetDevice."""
        return self._current_device

    def _domain(self, device: Optional[int] = None) -> int:
        return (self._current_device if device is None else device) + 1

    # -- streams and events ------------------------------------------------------

    def stream_create(self) -> CudaStream:
        """cudaStreamCreate: explicit creation, opaque handle returned."""
        domain = self._domain()
        inner = self._hs.stream_create(
            domain=domain,
            ncores=self._hs.domain(domain).device.total_cores,
            strict_fifo=True,
            name=f"cuda{self._current_device}.{len(self._hs.streams)}",
        )
        return CudaStream(self._current_device, inner)

    def stream_destroy(self, stream: CudaStream) -> None:
        """cudaStreamDestroy: explicit destruction is required."""
        if stream._destroyed:
            raise CudaError("stream already destroyed")
        stream._destroyed = True

    def event_create(self) -> CudaEvent:
        """cudaEventCreate."""
        return CudaEvent()

    def event_destroy(self, event: CudaEvent) -> None:
        """cudaEventDestroy."""
        if event._destroyed:
            raise CudaError("event already destroyed")
        event._destroyed = True

    def event_record(self, event: CudaEvent, stream: CudaStream) -> None:
        """cudaEventRecord: capture the stream's current tail."""
        self._check_stream(stream)
        if event._destroyed:
            raise CudaError("event is destroyed")
        # Record = a marker that completes when all prior work in the
        # stream completes; implemented as a barrier sync action.
        event._recorded = self._hs.event_stream_wait(
            stream._inner, [], operands=None, label="cudaEventRecord"
        )

    def stream_wait_event(self, stream: CudaStream, event: CudaEvent) -> None:
        """cudaStreamWaitEvent: cross-stream ordering (explicit, vs
        hStreams' operand-derived dependences)."""
        self._check_stream(stream)
        if event._recorded is None:
            raise CudaError("event was never recorded")
        self._hs.event_stream_wait(
            stream._inner, [event._recorded], operands=None, label="cudaStreamWaitEvent"
        )

    def event_synchronize(self, event: CudaEvent) -> None:
        """cudaEventSynchronize."""
        if event._recorded is None:
            raise CudaError("event was never recorded")
        self._hs.event_wait([event._recorded])
        self._flush_readbacks()

    def stream_synchronize(self, stream: CudaStream) -> None:
        """cudaStreamSynchronize."""
        self._check_stream(stream)
        self._hs.stream_synchronize(stream._inner)
        self._flush_readbacks()

    def device_synchronize(self) -> None:
        """cudaDeviceSynchronize."""
        self._hs.thread_synchronize()
        self._flush_readbacks()

    @staticmethod
    def _check_stream(stream: CudaStream) -> None:
        if stream._destroyed:
            raise CudaError("stream is destroyed")

    # -- memory ---------------------------------------------------------------------

    def malloc(self, nbytes: int, device: Optional[int] = None) -> DevicePtr:
        """cudaMalloc on the current (or given) device."""
        domain = self._domain(device)
        buf = self._hs.buffer_create(nbytes=nbytes, domains=[domain])
        return DevicePtr(domain - 1, buf, nbytes)

    def free(self, ptr: DevicePtr) -> None:
        """cudaFree."""
        if ptr._freed:
            raise CudaError("double free of device pointer")
        ptr._freed = True
        self._hs.buffer_destroy(ptr._buffer)

    def _host_buffer(self, array: np.ndarray) -> Buffer:
        key = array.__array_interface__["data"][0]
        buf = self._host_allocs.get(key)
        if buf is None:
            buf = self._hs.wrap(array)
            self._host_allocs[key] = buf
        return buf

    def memcpy_async(
        self,
        dst: Any,
        src: Any,
        nbytes: int,
        kind: str,
        stream: CudaStream,
    ) -> None:
        """cudaMemcpyAsync between host memory and a device pointer.

        Strict in-stream ordering applies: the copy will not overtake any
        previously issued operation in ``stream`` even if independent.
        """
        self._check_stream(stream)
        if kind == MEMCPY_HOST_TO_DEVICE:
            ptr, host = dst, src
            direction = XferDirection.SRC_TO_SINK
        elif kind == MEMCPY_DEVICE_TO_HOST:
            ptr, host = src, dst
            direction = XferDirection.SINK_TO_SRC
        else:
            raise CudaError(f"unsupported memcpy kind {kind!r}")
        if not isinstance(ptr, DevicePtr):
            raise CudaError("device side of the copy must be a DevicePtr")
        if ptr._freed:
            raise CudaError("use-after-free of device pointer")
        if ptr.device != stream.device:
            raise CudaError(
                f"pointer is on device {ptr.device}, stream on {stream.device}: "
                "per-device addresses do not travel"
            )
        if nbytes > ptr.nbytes:
            raise CudaError(f"copy of {nbytes}B exceeds allocation of {ptr.nbytes}B")
        hbuf = ptr._buffer
        host_real = (
            isinstance(host, np.ndarray)
            and host.nbytes >= nbytes
            and hbuf.instances.get(0) is not None
        )
        if host_real and direction is XferDirection.SRC_TO_SINK:
            # Thread backend: stage the caller's bytes into the buffer's
            # host instance before the DMA reads it. The staging bypasses
            # the enqueue path, so the memory manager must be told the
            # host copy changed (or a later upload could be elided).
            hbuf.instance_array(0)[:nbytes] = host.view(np.uint8).reshape(-1)[:nbytes]
            self._hs.memory.note_external_host_write(hbuf, 0, nbytes)
        ev = self._hs.enqueue_xfer(
            stream._inner,
            hbuf.range(0, nbytes),
            direction,
            label=f"memcpy-{kind}",
        )
        if host_real and direction is XferDirection.SINK_TO_SRC:
            # The copy-back must land in the caller's array once complete.
            def copy_back(host=host, hbuf=hbuf, nbytes=nbytes) -> None:
                host.view(np.uint8).reshape(-1)[:nbytes] = hbuf.instance_array(0)[
                    :nbytes
                ]

            self._pending_readbacks.append((ev, copy_back))

    def _flush_readbacks(self) -> None:
        remaining = []
        for ev, cb in self._pending_readbacks:
            if ev.is_complete():
                cb()
            else:
                remaining.append((ev, cb))
        self._pending_readbacks = remaining

    # -- kernels -------------------------------------------------------------------

    def register_kernel(self, name: str, fn=None, cost_fn=None) -> None:
        """Register a __global__ kernel by name (requires nvcc in real
        CUDA; any compiler here — the portability point in §IV)."""
        self._hs.register_kernel(name, fn=fn, cost_fn=cost_fn)

    def launch(
        self,
        stream: CudaStream,
        kernel: str,
        args: Sequence = (),
        cost: Optional[KernelCost] = None,
    ) -> None:
        """Kernel launch: occupies the whole device, strictly ordered in
        its stream."""
        self._check_stream(stream)
        resolved = [
            a._buffer.all(OperandMode.INOUT) if isinstance(a, DevicePtr) else a
            for a in args
        ]
        self._hs.enqueue_compute(
            stream._inner, kernel, args=resolved, cost=cost, label=kernel
        )

    # -- plumbing -----------------------------------------------------------------

    def elapsed(self) -> float:
        """Virtual (sim) or wall (thread) seconds since init."""
        return self._hs.elapsed()

    def metrics(self) -> Dict[str, Any]:
        """Scheduling observability snapshot of the underlying runtime."""
        return self._hs.metrics()

    @property
    def tracer(self):
        """The underlying trace recorder."""
        return self._hs.tracer

    @property
    def hstreams(self) -> HStreams:
        """Escape hatch to the underlying runtime (used by tests)."""
        return self._hs

    def fini(self) -> None:
        """Tear down, flushing pending device-to-host readbacks."""
        self._hs.thread_synchronize()
        self._flush_readbacks()
        self._hs.fini()
