"""An OpenCL-like model: boilerplate-heavy, with under-tuned device BLAS.

Reproduces the two properties the paper measures (§IV, Fig. 3):

* **Boilerplate** — platform/context/queue/program/kernel objects must be
  created and released explicitly, and kernel arguments are set by index
  before each launch; the Fig. 3 line/API counts come from this surface.
* **clBLAS performance on MIC** — the device BLAS "is significantly
  under-optimized for the MIC": a DGEMM enqueued through this model on a
  KNC device uses the calibrated ``dgemm_clblas`` efficiency curve
  (35 GFl/s at n=10000 instead of 982).

Command queues are in-order unless created with
``out_of_order=True`` (real OpenCL's out-of-order queues additionally
need explicit event wait-lists, provided here via ``wait_for``).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.actions import OperandMode, XferDirection
from repro.core.buffer import Buffer
from repro.core.events import HEvent
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform

__all__ = ["OpenCLRuntime", "CLError"]

_ids = itertools.count(0x0C1_0000)


class CLError(Exception):
    """cl_int error equivalent."""


class _CLObject:
    """Common release bookkeeping for all CL handle types."""

    def __init__(self, kind: str):
        self._id = next(_ids)
        self._kind = kind
        self._released = False

    def _check(self) -> None:
        if self._released:
            raise CLError(f"use of released {self._kind}")

    def release(self) -> None:
        """clRelease*: every object must be explicitly released."""
        self._check()
        self._released = True


class CLContext(_CLObject):
    """clCreateContext result."""

    def __init__(self, devices: List[int]):
        super().__init__("context")
        self.devices = devices


class CLQueue(_CLObject):
    """clCreateCommandQueue result."""

    def __init__(self, context: CLContext, device: int, inner):
        super().__init__("queue")
        self.context = context
        self.device = device
        self._inner = inner


class CLProgram(_CLObject):
    """clCreateProgramWithSource result."""

    def __init__(self, context: CLContext, source: str):
        super().__init__("program")
        self.context = context
        self.source = source
        self.built = False


class CLKernel(_CLObject):
    """clCreateKernel result; arguments are set by index."""

    def __init__(self, program: CLProgram, name: str):
        super().__init__("kernel")
        self.program = program
        self.name = name
        self.args: Dict[int, Any] = {}


class CLBuffer(_CLObject):
    """clCreateBuffer result."""

    def __init__(self, buffer: Buffer, nbytes: int):
        super().__init__("buffer")
        self._buffer = buffer
        self.nbytes = nbytes


class OpenCLRuntime:
    """The OpenCL platform layer for one process."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        backend: str = "sim",
        config: Optional[RuntimeConfig] = None,
        trace: bool = True,
    ):
        self._hs = HStreams(
            platform=platform if platform is not None else make_platform("HSW", 1),
            backend=backend,
            config=config,
            trace=trace,
        )

    # -- boilerplate -------------------------------------------------------------

    def get_device_ids(self) -> List[int]:
        """clGetDeviceIDs (accelerators only)."""
        return [d.index - 1 for d in self._hs.card_domains]

    def create_context(self, devices: Sequence[int]) -> CLContext:
        """clCreateContext."""
        for d in devices:
            if d + 1 >= self._hs.ndomains:
                raise CLError(f"invalid device {d}")
        return CLContext(list(devices))

    def create_command_queue(
        self, context: CLContext, device: int, out_of_order: bool = False
    ) -> CLQueue:
        """clCreateCommandQueue: in-order unless requested otherwise."""
        context._check()
        if device not in context.devices:
            raise CLError(f"device {device} not in context")
        inner = self._hs.stream_create(
            domain=device + 1,
            strict_fifo=not out_of_order,
            name=f"clq{device}",
        )
        return CLQueue(context, device, inner)

    def create_program_with_source(self, context: CLContext, source: str) -> CLProgram:
        """clCreateProgramWithSource."""
        context._check()
        return CLProgram(context, source)

    def build_program(self, program: CLProgram) -> None:
        """clBuildProgram (runtime compilation step)."""
        program._check()
        program.built = True

    def create_kernel(self, program: CLProgram, name: str) -> CLKernel:
        """clCreateKernel."""
        program._check()
        if not program.built:
            raise CLError("program must be built before creating kernels")
        return CLKernel(program, name)

    def set_kernel_arg(self, kernel: CLKernel, index: int, value: Any) -> None:
        """clSetKernelArg: positional, one call per argument."""
        kernel._check()
        kernel.args[index] = value

    # -- memory -----------------------------------------------------------------------

    def create_buffer(self, context: CLContext, nbytes: int) -> CLBuffer:
        """clCreateBuffer."""
        context._check()
        buf = self._hs.buffer_create(nbytes=nbytes)
        return CLBuffer(buf, nbytes)

    def enqueue_write_buffer(
        self, queue: CLQueue, dst: CLBuffer, src: Optional[np.ndarray] = None
    ) -> HEvent:
        """clEnqueueWriteBuffer (host -> device)."""
        queue._check()
        dst._check()
        if src is not None and dst._buffer.instances.get(0) is not None:
            inst = dst._buffer.instance_array(0)
            inst[: src.nbytes] = src.view(np.uint8).reshape(-1)
            # Out-of-band host write: tell the memory manager so the
            # upload below is not elided as redundant.
            self._hs.memory.note_external_host_write(dst._buffer, 0, src.nbytes)
        return self._hs.enqueue_xfer(queue._inner, dst._buffer, label="clWrite")

    def enqueue_read_buffer(
        self, queue: CLQueue, src: CLBuffer, dst: Optional[np.ndarray] = None
    ) -> HEvent:
        """clEnqueueReadBuffer (device -> host)."""
        queue._check()
        src._check()
        ev = self._hs.enqueue_xfer(
            queue._inner, src._buffer, XferDirection.SINK_TO_SRC, label="clRead"
        )
        if dst is not None and src._buffer.instances.get(0) is not None:
            self._hs.event_wait([ev])
            dst.view(np.uint8).reshape(-1)[:] = src._buffer.instance_array(0)[
                : dst.nbytes
            ]
        return ev

    # -- execution -----------------------------------------------------------------------

    def register_kernel(self, name: str, fn=None, cost_fn=None) -> None:
        """Register the device code behind a kernel name."""
        self._hs.register_kernel(name, fn=fn, cost_fn=cost_fn)

    def enqueue_nd_range_kernel(
        self,
        queue: CLQueue,
        kernel: CLKernel,
        cost: Optional[KernelCost] = None,
        wait_for: Sequence[HEvent] = (),
    ) -> HEvent:
        """clEnqueueNDRangeKernel with an explicit wait list.

        On KNC devices, a ``dgemm`` cost is demoted to the untuned
        ``dgemm_clblas`` efficiency curve — the paper's measured clBLAS
        behaviour.
        """
        queue._check()
        kernel._check()
        if wait_for:
            self._hs.event_stream_wait(queue._inner, list(wait_for), label="waitlist")
        args = [
            a._buffer.all(OperandMode.INOUT) if isinstance(a, CLBuffer) else a
            for _, a in sorted(kernel.args.items())
        ]
        if cost is not None and cost.kernel == "dgemm":
            device = self._hs.domain(queue.device + 1).device
            if device.kind == "knc":
                cost = KernelCost("dgemm_clblas", cost.flops, cost.size, cost.bytes_moved)
        return self._hs.enqueue_compute(
            queue._inner, kernel.name, args=args, cost=cost, label=kernel.name
        )

    def finish(self, queue: CLQueue) -> None:
        """clFinish."""
        queue._check()
        self._hs.stream_synchronize(queue._inner)

    # -- plumbing --------------------------------------------------------------------------

    def elapsed(self) -> float:
        """Virtual (sim) or wall (thread) seconds since init."""
        return self._hs.elapsed()

    @property
    def hstreams(self) -> HStreams:
        """Escape hatch to the underlying runtime (used by tests)."""
        return self._hs

    def fini(self) -> None:
        """Tear down."""
        self._hs.fini()
