"""An Intel-compiler "Offload Streams"-like model.

The compiler feature (paper §IV) adds a ``stream`` clause to the offload
pragma plus API calls to create, destroy, and wait on streams. Ordering
between actions uses ``signal``/``wait`` clauses naming tags, rather than
hStreams' operand-derived dependences. Streams exist only *toward
devices* — there is no host-as-target — and there are no convenience
functions to spread streams across mixed device types.

As a compiler feature its availability is tied to the compiler version;
as a library, hStreams is not — a qualitative difference recorded here in
the module docstring rather than in code.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.actions import XferDirection
from repro.core.buffer import Buffer
from repro.core.events import HEvent
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform

__all__ = ["OffloadStreamsRuntime"]


class OffloadStreamsRuntime:
    """Offload-streams state: device streams plus a signal-tag table."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        backend: str = "sim",
        config: Optional[RuntimeConfig] = None,
        trace: bool = True,
    ):
        self._hs = HStreams(
            platform=platform if platform is not None else make_platform("HSW", 1),
            backend=backend,
            config=config,
            trace=trace,
        )
        self._signals: Dict[object, HEvent] = {}
        self._wrapped: Dict[int, Buffer] = {}

    # -- streams ----------------------------------------------------------------

    def stream_create(self, device: int, ncores: Optional[int] = None) -> Stream:
        """``_Offload_stream_create``: streams target devices only."""
        domain = device + 1
        if domain >= self._hs.ndomains:
            raise ValueError(f"no offload device {device}")
        return self._hs.stream_create(domain=domain, ncores=ncores, name=f"offl{device}")

    def stream_destroy(self, stream: Stream) -> None:
        """``_Offload_stream_destroy``: waits for completion first."""
        self._hs.stream_synchronize(stream)

    def stream_completed(self, stream: Stream) -> bool:
        """``_Offload_stream_completed``: poll the stream for idleness."""
        # The window's live set is guarded scheduler state; snapshot it
        # through the lock-taking accessor rather than reading it raw.
        pending = self._hs.scheduler.pending_completions(stream)
        return len(pending) == 0

    # -- offload pragmas ----------------------------------------------------------

    def register_kernel(self, name: str, fn=None, cost_fn=None) -> None:
        """Register the body of an offloaded code section."""
        self._hs.register_kernel(name, fn=fn, cost_fn=cost_fn)

    def _buffer_for(self, array: np.ndarray) -> Buffer:
        key = array.__array_interface__["data"][0]
        buf = self._wrapped.get(key)
        if buf is None:
            buf = self._hs.wrap(array)
            self._wrapped[key] = buf
        return buf

    def offload(
        self,
        stream: Stream,
        kernel: str,
        args: Sequence = (),
        cost: Optional[KernelCost] = None,
        in_arrays: Sequence[np.ndarray] = (),
        out_arrays: Sequence[np.ndarray] = (),
        signal: Optional[object] = None,
        wait: Sequence[object] = (),
    ) -> None:
        """``#pragma offload target(mic) stream(s) signal(t) wait(t...)``.

        ``in``/``out`` clauses transfer the named arrays before/after the
        computation in the same stream.
        """
        deps = [self._signal_event(tag) for tag in wait]
        if deps:
            self._hs.event_stream_wait(stream, deps, label="wait-clause")
        for a in in_arrays:
            self._hs.enqueue_xfer(stream, self._buffer_for(a), label="in-clause")
        resolved = [
            self._buffer_for(a).all_inout() if isinstance(a, np.ndarray) else a
            for a in args
        ]
        ev = self._hs.enqueue_compute(stream, kernel, args=resolved, cost=cost, label=kernel)
        for a in out_arrays:
            ev = self._hs.enqueue_xfer(
                stream, self._buffer_for(a), XferDirection.SINK_TO_SRC, label="out-clause"
            )
        if signal is not None:
            self._signals[signal] = ev

    def offload_transfer(
        self,
        stream: Stream,
        array: np.ndarray,
        to_device: bool = True,
        signal: Optional[object] = None,
    ) -> None:
        """``#pragma offload_transfer``: a data-only offload."""
        ev = self._hs.enqueue_xfer(
            stream,
            self._buffer_for(array),
            XferDirection.SRC_TO_SINK if to_device else XferDirection.SINK_TO_SRC,
            label="offload_transfer",
        )
        if signal is not None:
            self._signals[signal] = ev

    def offload_wait(self, tags: Sequence[object]) -> None:
        """``#pragma offload_wait``: host-side wait on signal tags."""
        self._hs.event_wait([self._signal_event(t) for t in tags])

    def _signal_event(self, tag: object) -> HEvent:
        try:
            return self._signals[tag]
        except KeyError:
            raise ValueError(f"signal tag {tag!r} was never signaled") from None

    # -- plumbing ----------------------------------------------------------------------

    def synchronize(self) -> None:
        """Wait for everything outstanding."""
        self._hs.thread_synchronize()

    def elapsed(self) -> float:
        """Virtual (sim) or wall (thread) seconds since init."""
        return self._hs.elapsed()

    @property
    def hstreams(self) -> HStreams:
        """Escape hatch to the underlying runtime (used by tests)."""
        return self._hs

    def fini(self) -> None:
        """Tear down."""
        self._hs.fini()
