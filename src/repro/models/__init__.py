"""Comparator programming models (paper §IV).

Each module presents the API shape and constraint set of one model the
paper compares hStreams against, implemented over the same runtime and
platform machinery so that performance differences *emerge from the
models' semantics* rather than being hard-coded:

* :mod:`repro.models.cuda_streams` — strict in-order streams, opaque
  handles, explicit event create/record/wait, per-device addresses,
  whole-device kernels.
* :mod:`repro.models.openmp` — OpenMP 4.0/4.5 target offload: one logical
  device per card (no sub-device partitioning), synchronous transfers in
  4.0, ``nowait``/``depend`` in 4.5.
* :mod:`repro.models.offload_streams` — the Intel compiler's offload
  streams: device-only streams with ``signal``/``wait`` clauses.
* :mod:`repro.models.opencl_like` — boilerplate-heavy contexts, queues,
  programs and kernels, with the under-optimized device BLAS the paper
  measured (35 GFl/s clBLAS DGEMM on KNC).
"""

from repro.models.cuda_streams import CudaError, CudaRuntime
from repro.models.offload_streams import OffloadStreamsRuntime
from repro.models.openmp import OpenMPRuntime
from repro.models.opencl_like import OpenCLRuntime

__all__ = [
    "CudaError",
    "CudaRuntime",
    "OffloadStreamsRuntime",
    "OpenMPRuntime",
    "OpenCLRuntime",
]
