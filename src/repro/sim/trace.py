"""Timeline tracing for simulated and threaded schedules.

A :class:`Tracer` records one :class:`TraceEvent` per action execution
(lane = stream or link, interval = [start, end]). Benchmarks use traces to
report utilization and overlap, and the ASCII Gantt renderer makes
schedules inspectable in a terminal — the closest stand-in for the VTune
timelines the paper's authors used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["TraceEvent", "CounterEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed action on one lane of the timeline."""

    lane: str
    start: float
    end: float
    label: str
    kind: str = "compute"  # "compute" | "transfer" | "sync"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"trace event ends before it starts: {self}")

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class CounterEvent:
    """One sample of a time-varying counter (e.g. a queue depth)."""

    lane: str
    t: float
    value: float


@dataclass
class Tracer:
    """Collects trace events and answers utilization/overlap queries."""

    events: List[TraceEvent] = field(default_factory=list)
    counters: List[CounterEvent] = field(default_factory=list)
    enabled: bool = True

    def record(
        self, lane: str, start: float, end: float, label: str, kind: str = "compute"
    ) -> None:
        """Append one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(lane, start, end, label, kind))

    def counter(self, lane: str, t: float, value: float) -> None:
        """Sample a counter lane (no-op when disabled).

        The scheduler samples per-stream queue depth here on every
        enqueue and completion; exported as Chrome "C" counter events.
        """
        if self.enabled:
            self.counters.append(CounterEvent(lane, t, value))

    def counter_series(self, lane: str) -> List[CounterEvent]:
        """All samples of one counter lane, in record order."""
        return [c for c in self.counters if c.lane == lane]

    def counter_lanes(self) -> List[str]:
        """Counter lane names in first-appearance order."""
        seen: Dict[str, None] = {}
        for c in self.counters:
            seen.setdefault(c.lane, None)
        return list(seen)

    def lanes(self) -> List[str]:
        """Lane names in first-appearance order."""
        seen: Dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.lane, None)
        return list(seen)

    def span(self) -> float:
        """Makespan covered by the trace (max end - min start)."""
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    def busy_time(self, lane: str, kind: Optional[str] = None) -> float:
        """Union length of intervals on ``lane`` (optionally one kind)."""
        ivs = sorted(
            (e.start, e.end)
            for e in self.events
            if e.lane == lane and (kind is None or e.kind == kind)
        )
        total = 0.0
        cur_s: Optional[float] = None
        cur_e = 0.0
        for s, e in ivs:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                total += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            total += cur_e - cur_s
        return total

    def utilization(self, lane: str) -> float:
        """Busy fraction of the makespan for ``lane``."""
        span = self.span()
        return self.busy_time(lane) / span if span > 0 else 0.0

    def overlap(self, kind_a: str, kind_b: str) -> float:
        """Total time during which kinds ``a`` and ``b`` run concurrently.

        This is how benchmarks verify that transfers actually hid under
        compute (pipelining) rather than serializing.
        """
        marks: List[tuple] = []
        for ev in self.events:
            if ev.kind == kind_a:
                marks.append((ev.start, 0, "a"))
                marks.append((ev.end, 1, "a"))
            elif ev.kind == kind_b:
                marks.append((ev.start, 0, "b"))
                marks.append((ev.end, 1, "b"))
        marks.sort(key=lambda t: (t[0], t[1]))
        depth = {"a": 0, "b": 0}
        both = 0.0
        prev = None
        for when, is_end, tag in marks:
            if prev is not None and depth["a"] > 0 and depth["b"] > 0:
                both += when - prev
            depth[tag] += -1 if is_end else 1
            prev = when
        return both

    def gantt(self, width: int = 78, max_lanes: int = 24) -> str:
        """Render the trace as an ASCII Gantt chart.

        Each lane is one row; ``#`` marks compute, ``=`` transfers, ``|``
        syncs. Intended for eyeballing pipelining in examples and tests.
        """
        if not self.events:
            return "(empty trace)"
        t0 = min(e.start for e in self.events)
        t1 = max(e.end for e in self.events)
        span = max(t1 - t0, 1e-12)
        glyph = {"compute": "#", "transfer": "=", "sync": "|"}
        name_w = max(len(lane) for lane in self.lanes()[:max_lanes]) + 1
        bar_w = max(width - name_w - 2, 10)
        lines = [f"{'lane':<{name_w}} 0 {'-' * (bar_w - 4)} {span * 1e3:.3f} ms"]
        for lane in self.lanes()[:max_lanes]:
            row = [" "] * bar_w
            for ev in self.events:
                if ev.lane != lane:
                    continue
                a = int((ev.start - t0) / span * (bar_w - 1))
                b = int((ev.end - t0) / span * (bar_w - 1))
                ch = glyph.get(ev.kind, "?")
                for i in range(a, max(b, a) + 1):
                    row[i] = ch
            lines.append(f"{lane:<{name_w}} {''.join(row)}")
        extra = len(self.lanes()) - max_lanes
        if extra > 0:
            lines.append(f"... ({extra} more lanes)")
        return "\n".join(lines)

    def filter(self, kind: Optional[str] = None, lane: Optional[str] = None) -> Sequence[TraceEvent]:
        """Events matching the given kind and/or lane."""
        return [
            e
            for e in self.events
            if (kind is None or e.kind == kind) and (lane is None or e.lane == lane)
        ]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
        self.counters.clear()

    def to_chrome_trace(self) -> List[dict]:
        """Export as Chrome ``chrome://tracing`` / Perfetto trace events.

        One complete ("X") event per interval; lanes map to thread ids
        within a single process. Serialize with ``json.dump`` into a
        ``.json`` file and load it in the trace viewer.
        """
        lanes = {lane: tid for tid, lane in enumerate(self.lanes())}
        out = []
        for lane, tid in lanes.items():
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        for ev in self.events:
            out.append(
                {
                    "name": ev.label,
                    "cat": ev.kind,
                    "ph": "X",
                    "pid": 1,
                    "tid": lanes[ev.lane],
                    "ts": ev.start * 1e6,  # microseconds
                    "dur": ev.duration * 1e6,
                }
            )
        for c in self.counters:
            out.append(
                {
                    "name": c.lane,
                    "ph": "C",
                    "pid": 1,
                    "ts": c.t * 1e6,
                    "args": {"value": c.value},
                }
            )
        return out
