"""Deterministic discrete-event simulation engine.

A small, dependency-free event core in the style of SimPy: a virtual clock,
an ordered event calendar, generator-based *processes* that ``yield`` events
to wait on, and FIFO *resources* for modeling exclusive units (a stream's
compute slot, a PCIe link direction, a DMA engine).

Determinism: events scheduled for the same timestamp fire in insertion
order (a monotonically increasing sequence number breaks ties), so a given
simulation always produces the identical schedule.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimError",
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Resource",
]


class SimError(Exception):
    """Raised for invalid uses of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The interrupting cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *untriggered*; calling :meth:`trigger` (or
    :meth:`fail`) makes it fire at the current simulation time, invoking
    all registered callbacks in registration order. Processes wait on
    events by yielding them.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_triggered", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self.name = name

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload the event fired with."""
        if not self._triggered:
            raise SimError(f"event {self!r} has not been triggered")
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value`` at the current time."""
        if self._triggered:
            raise SimError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.engine._dispatch(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event as failed; waiters receive/raise ``exc``."""
        if self._triggered:
            raise SimError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.engine._dispatch(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event fires.

        If the event already fired, the callback runs immediately.
        """
        if self._triggered:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} @{self.engine.now:.6f}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        super().__init__(engine, name=f"timeout({delay:g})")
        engine._schedule_trigger(self, delay, value)


class Process(Event):
    """A generator-driven simulation process.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event fires, receiving its value (or having its exception
    raised inside the generator). The process is itself an event that fires
    with the generator's return value when it finishes.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # Kick off at the current time, after already-queued events.
        start = Event(engine, name=f"start:{self.name}")
        self._waiting_on: Optional[Event] = start
        start.add_callback(self._resume)
        engine._schedule_trigger(start, 0.0, None)

    @property
    def is_alive(self) -> bool:
        """Whether the process generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimError("cannot interrupt a finished process")
        wake = Event(self.engine, name=f"interrupt:{self.name}")
        wake.add_callback(lambda ev: self._throw(Interrupt(cause)))
        self.engine._schedule_trigger(wake, 0.0, None)

    # -- internal machinery -------------------------------------------------

    def _resume(self, event: Optional[Event]) -> None:
        if self._triggered or (event is not None and event is not self._waiting_on):
            return  # stale wakeup from a wait abandoned by an interrupt
        self._waiting_on = None
        try:
            if event is None:
                target = self._gen.send(None)
            elif event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        self._wait(target)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._waiting_on = None  # the interrupted wait is abandoned
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: finish abnormally.
            self.fail(exc)
            return
        self._wait(target)

    def _wait(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str):
        super().__init__(engine, name=name)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if not isinstance(ev, Event):
                raise SimError(f"{name} requires Event instances, got {ev!r}")
        if not self._events:
            engine._schedule_trigger(self, 0.0, {})
            return
        for ev in self._events:
            if not ev.triggered:
                self._pending += 1
        if self._satisfied():
            engine._schedule_trigger(self, 0.0, self._collect())
        else:
            for ev in self._events:
                if not ev.triggered:
                    ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._satisfied():
            self.trigger(self._collect())

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self._events if ev.triggered and ev.ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any one of the given events has fired."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, "any_of")

    def _satisfied(self) -> bool:
        return self._pending < len(self._events) or not self._events


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, "all_of")

    def _satisfied(self) -> bool:
        return self._pending == 0


class Engine:
    """The simulation clock and event calendar."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0

    # -- event factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this engine."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulation process."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: fires when any child event fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: fires when every child event has fired."""
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule_trigger(self, event: Event, delay: float, value: Any) -> None:
        """Arrange for ``event`` to trigger with ``value`` after ``delay``."""
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event, value))

    def _dispatch(self, event: Event) -> None:
        """Run the callbacks of a just-triggered event."""
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)

    # -- execution ----------------------------------------------------------

    def step(self) -> float:
        """Advance to and fire the next calendar entry; return its time."""
        if not self._heap:
            raise SimError("step() on an empty event calendar")
        when, _seq, event, value = heapq.heappop(self._heap)
        if when < self.now:
            raise SimError("event calendar went backwards")  # pragma: no cover
        self.now = when
        if not event.triggered:
            event.trigger(value)
        return when

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.step()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_to(self, until: float) -> float:
        """Fire every calendar entry scheduled at or before ``until``.

        Unlike :meth:`run`, the clock stays at the last fired entry — it
        does not jump to ``until`` when the calendar drains early.
        Returns the final simulation time.
        """
        while self._heap and self._heap[0][0] <= until:
            self.step()
        return self.now

    def run_until_event(
        self, event: Event, limit: float = 1e12, until: Optional[float] = None
    ) -> Any:
        """Run until ``event`` fires; return its value or raise its failure.

        With ``until`` set, stop stepping once the next calendar entry
        lies past it (or the calendar drains first): the clock advances
        exactly to ``until`` and ``None`` is returned — a *timeout*, not
        an error — so a timed wait never simulates past its deadline
        when the event fires earlier, and never deadlocks when it cannot
        fire at all.
        """
        while not event.triggered:
            if until is not None and (not self._heap or self._heap[0][0] > until):
                if until > self.now:
                    self.now = until
                return None
            if not self._heap:
                raise SimError(
                    f"deadlock: event {event!r} can never fire (calendar empty)"
                )
            if self.now > limit:
                raise SimError(f"simulation exceeded time limit {limit}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    @property
    def pending_count(self) -> int:
        """Number of entries still on the event calendar."""
        return len(self._heap)


class Resource:
    """A FIFO resource with integer capacity and multi-unit requests.

    Used to model exclusive or limited units: a stream's compute slot
    (capacity 1), a pool of DMA engines, a device's cores (a task
    acquires as many units as its stream's CPU-mask width). Grants are
    strictly FIFO and head-blocking — a large request at the head of the
    queue is never overtaken by a smaller one behind it — so schedules
    stay deterministic and starvation-free.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[tuple] = []  # (event, units)

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a grant."""
        return len(self._waiters)

    def request(self, units: int = 1) -> Event:
        """Ask for ``units``; the returned event fires when granted."""
        if units < 1 or units > self.capacity:
            raise SimError(
                f"{self.name!r}: request of {units} units outside "
                f"1..{self.capacity}"
            )
        req = Event(self.engine, name=f"req:{self.name}")
        if self._in_use + units <= self.capacity and not self._waiters:
            self._in_use += units
            self.engine._schedule_trigger(req, 0.0, self)
        else:
            self._waiters.append((req, units))
        return req

    def release(self, units: int = 1) -> None:
        """Return ``units``, granting queued requests in FIFO order."""
        if units < 1 or self._in_use < units:
            raise SimError(
                f"release({units}) of resource {self.name!r} with "
                f"{self._in_use} in use"
            )
        self._in_use -= units
        while self._waiters:
            ev, need = self._waiters[0]
            if self._in_use + need > self.capacity:
                break  # head-blocking FIFO
            self._waiters.pop(0)
            self._in_use += need
            self.engine._schedule_trigger(ev, 0.0, self)

    def use(self, duration: float, units: int = 1) -> Generator:
        """Process helper: acquire, hold for ``duration``, release."""
        yield self.request(units)
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release(units)
