"""Platform presets reproducing the paper's Fig. 2 machine table.

======================  =======================  =====================  ==========
Specification           Xeon E5-2697v2 (IVB) /    Xeon Phi C0-7120A      NVIDIA
                        E5-2697v3 (HSW)           (KNC)                  K40x
======================  =======================  =====================  ==========
Skt, Core/Skt, Thr/Core 2S, 12C(v2)/14C(v3), 2T  1S, 61C, 4T            1S, 15C, 256T
SP, DP width, FMA       8,4,N (v2) / 8,4,Y (v3)  16, 8, Y               192, 64, Y
Clock (GHz)             2.7 (v2) / 2.6 (v3)      1.33 (turbo)           0.875
RAM (GB)                64 DDR3-1.6 GHz          16 GDDR5               12 GDDR5
======================  =======================  =====================  ==========

Kernel efficiency asymptotes are calibrated to the single-device rates the
paper reports (DGEMM: KNC 982, HSW 902, IVB 475 GFl/s; native Cholesky:
HSW 733 GFl/s; clBLAS DGEMM on KNC: 35 GFl/s), so every aggregate,
overlap, and balance figure is produced by the simulated schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.sim.engine import Engine
from repro.sim.hardware import Device, EfficiencyCurve
from repro.sim.interconnect import Fabric, LinkPair

__all__ = [
    "IVB",
    "HSW",
    "KNC_7120A",
    "K40X",
    "Platform",
    "make_platform",
    "make_fabric_platform",
    "make_cluster_platform",
]


def _curve(eff_max: float, half: float, eff_min: float = 0.0) -> EfficiencyCurve:
    return EfficiencyCurve(eff_max=eff_max, half_size=half, eff_min=eff_min)


#: Dual-socket Ivy Bridge host (E5-2697v2): 24 cores, AVX (no FMA).
#: Peak DP = 24 * 2.7 * 8 = 518.4 GFl/s; calibrated DGEMM asymptote 475.
IVB = Device(
    name="IVB",
    kind="xeon",
    sockets=2,
    cores_per_socket=12,
    threads_per_core=2,
    clock_ghz=2.7,
    dp_flops_per_cycle=8.0,  # 4-wide DP, mul+add ports, no FMA
    sp_flops_per_cycle=16.0,
    ram_gb=64.0,
    mem_bw_gbs=85.0,
    fork_join_s=5e-6,
    kernel_eff={
        "dgemm": _curve(475.0 / 518.4, 60.0),
        "dsyrk": _curve(0.85, 80.0),
        "dtrsm": _curve(0.72, 120.0),
        "dpotrf": _curve(0.52, 350.0),
        "dgetrf": _curve(0.55, 350.0),
        "cholesky_native": _curve(0.62, 2600.0),
        "ldlt_panel": _curve(0.50, 300.0),
        "stencil": _curve(0.28, 40.0),
        "stencil_scalar": _curve(0.07, 40.0),  # unvectorized inner loops
        "default": _curve(0.60, 256.0),
    },
)

#: Dual-socket Haswell host (E5-2697v3): 28 cores, AVX2 FMA.
#: Peak DP = 28 * 2.6 * 16 = 1164.8 GFl/s; calibrated DGEMM asymptote 902.
HSW = Device(
    name="HSW",
    kind="xeon",
    sockets=2,
    cores_per_socket=14,
    threads_per_core=2,
    clock_ghz=2.6,
    dp_flops_per_cycle=16.0,  # 4-wide DP FMA, 2 ports
    sp_flops_per_cycle=32.0,
    ram_gb=64.0,
    mem_bw_gbs=110.0,
    fork_join_s=5e-6,
    kernel_eff={
        "dgemm": _curve(902.0 / 1164.8, 60.0),
        "dsyrk": _curve(0.72, 80.0),
        "dtrsm": _curve(0.62, 120.0),
        "dpotrf": _curve(0.44, 350.0),
        "dgetrf": _curve(0.48, 350.0),
        "cholesky_native": _curve(733.0 / 1164.8, 2600.0),
        "ldlt_panel": _curve(0.42, 300.0),
        "stencil": _curve(0.24, 40.0),
        "stencil_scalar": _curve(0.06, 40.0),  # unvectorized inner loops
        "default": _curve(0.55, 256.0),
    },
)

#: Knights Corner 7120A coprocessor card: 61 cores, 512-bit SIMD FMA.
#: Peak DP = 61 * 1.33 * 16 = 1298.1 GFl/s; calibrated DGEMM asymptote 982.
KNC_7120A = Device(
    name="KNC-7120A",
    kind="knc",
    sockets=1,
    cores_per_socket=61,
    threads_per_core=4,
    clock_ghz=1.33,
    dp_flops_per_cycle=16.0,  # 8-wide DP FMA
    sp_flops_per_cycle=32.0,
    ram_gb=16.0,
    mem_bw_gbs=170.0,
    fork_join_s=2e-5,  # forking across 244 threads is costly
    kernel_eff={
        "dgemm": _curve(982.0 / 1298.1, 150.0),
        "dgemm_clblas": _curve(35.0 / 1298.1, 200.0),  # untuned clBLAS (§IV)
        # Compiler-generated target-region matmul code (OpenMP offload /
        # LEO) reaches ~40% of peak vs MKL's 76% — behind Fig. 3's
        # 460/180 GFl/s OpenMP rows.
        "dgemm_target": _curve(0.40, 220.0),
        "dsyrk": _curve(0.68, 260.0),
        "dtrsm": _curve(0.46, 420.0),
        "dpotrf": _curve(0.06, 600.0),  # latency-bound panel: ship to host
        "dgetrf": _curve(0.07, 600.0),
        "cholesky_native": _curve(0.30, 4000.0),
        # The vendor solver's LDL^T panel is itself blocked and GEMM-rich
        # (unlike the generic latency-bound DPOTRF above), reaching a
        # large fraction of peak — behind the near-parity KNC/HSW
        # supernode times of Fig. 9.
        "ldlt_panel": _curve(0.45, 300.0),
        # Calibrated to the paper's optimized-RTM 1.52x KNC-vs-HSW ratio.
        "stencil": _curve(0.33, 40.0),
        # Unvectorized code is catastrophic on the in-order 512-bit cores:
        # the paper's "unoptimized" RTM speedups (1.13x vs 1.52x) follow.
        "stencil_scalar": _curve(0.055, 40.0),
        "default": _curve(0.45, 512.0),
    },
)

#: NVIDIA K40x GPU (CUDA comparison target).
#: Peak DP = 15 SMX * 64 lanes * 2 * 0.875 = 1680 GFl/s.
K40X = Device(
    name="K40x",
    kind="gpu",
    sockets=1,
    cores_per_socket=15,
    threads_per_core=256,
    clock_ghz=0.875,
    dp_flops_per_cycle=128.0,  # 64 DP lanes * FMA per SMX
    sp_flops_per_cycle=384.0,
    ram_gb=12.0,
    mem_bw_gbs=230.0,
    fork_join_s=6e-6,  # kernel launch
    kernel_eff={
        "dgemm": _curve(1220.0 / 1680.0, 200.0),
        "dsyrk": _curve(0.65, 240.0),
        "dtrsm": _curve(0.45, 400.0),
        "dpotrf": _curve(0.05, 600.0),
        "cholesky_native": _curve(0.28, 4000.0),
        "ldlt_panel": _curve(0.05, 500.0),
        "stencil": _curve(0.45, 40.0),
        "stencil_scalar": _curve(0.10, 40.0),
        "default": _curve(0.50, 512.0),
    },
)

_HOSTS: Dict[str, Device] = {"IVB": IVB, "HSW": HSW}
_CARDS: Dict[str, Device] = {"KNC": KNC_7120A, "KNC-7120A": KNC_7120A, "K40X": K40X}


@dataclass(frozen=True)
class Platform:
    """A host plus coprocessor cards (PCIe) and/or remote nodes (fabric).

    Remote nodes reproduce the paper's §III "offload over fabric" layer:
    COI can carry hStreams between Xeon nodes across a cluster fabric;
    domains on remote nodes behave exactly like card domains, just with
    fabric latency/bandwidth on their links. The uniformity is the point
    — "the current hStreams implementation allows the creation of
    streams on devices residing in remote nodes (i.e., over fabric)"
    (paper §IV).
    """

    name: str
    host: Device
    cards: Tuple[Device, ...] = ()
    pcie_bandwidth_gbs: float = 6.8  # PCIe gen2 x16 achievable
    pcie_latency_s: float = 1.0e-5
    #: Remote Xeon nodes reached over the fabric, indexed after the cards.
    fabric_nodes: Tuple[Device, ...] = ()
    fabric_bandwidth_gbs: float = 5.5  # FDR InfiniBand-class achievable
    fabric_latency_s: float = 2.0e-6
    #: Model the host root complex as a capacity-1 resource per direction,
    #: so host-rooted same-direction transfers serialize across
    #: destinations. Off by default: the original independent-links model.
    host_bus: bool = False
    #: Route node-to-node transfers through the pair of ports (switch
    #: model) instead of raising. Off by default: cards stage via host.
    peer_enabled: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def devices(self) -> Tuple[Device, ...]:
        """All devices; 0 is the host, then cards, then fabric nodes."""
        return (self.host,) + self.cards + self.fabric_nodes

    @property
    def ncards(self) -> int:
        """Number of coprocessor cards."""
        return len(self.cards)

    @property
    def nfabric(self) -> int:
        """Number of fabric-attached remote nodes."""
        return len(self.fabric_nodes)

    def device(self, index: int) -> Device:
        """Device by domain index (0 = host)."""
        return self.devices[index]

    def make_links(self, engine: Engine) -> Dict[int, LinkPair]:
        """Instantiate one full-duplex link pair per non-host domain.

        Cards ride PCIe; fabric nodes ride the cluster fabric. The host
        needs no link to itself — host-as-target transfers are aliased
        away, as in the paper.
        """
        links = {
            i + 1: LinkPair(
                engine,
                self.pcie_bandwidth_gbs,
                self.pcie_latency_s,
                name=f"pcie[{card.name}#{i}]",
            )
            for i, card in enumerate(self.cards)
        }
        base = 1 + len(self.cards)
        for i, node in enumerate(self.fabric_nodes):
            links[base + i] = LinkPair(
                engine,
                self.fabric_bandwidth_gbs,
                self.fabric_latency_s,
                name=f"fabric[{node.name}#{i}]",
            )
        return links

    def make_fabric(self, engine: Engine) -> Fabric:
        """Instantiate the full topology: ports plus bus/peer routing."""
        return Fabric(
            engine,
            self.make_links(engine),
            host_bus=self.host_bus,
            peer_enabled=self.peer_enabled,
        )

    def describe(self) -> str:
        """One-line human summary."""
        cards = ", ".join(c.name for c in self.cards) or "no cards"
        fabric = f" + {self.nfabric} fabric node(s)" if self.fabric_nodes else ""
        return (
            f"{self.name}: host {self.host.name} "
            f"({self.host.total_cores}C, {self.host.peak_dp_gflops:.0f} GFl/s peak) "
            f"+ {cards}{fabric}"
        )


def make_platform(
    host: str = "HSW",
    ncards: int = 1,
    card: str = "KNC",
    pcie_bandwidth_gbs: float = 6.8,
    pcie_latency_s: float = 1.0e-5,
) -> Platform:
    """Build a platform preset, e.g. ``make_platform("HSW", ncards=2)``.

    ``host`` is ``"IVB"`` or ``"HSW"``; ``card`` is ``"KNC"`` or ``"K40X"``.
    """
    host_key = host.upper()
    card_key = card.upper()
    if host_key not in _HOSTS:
        raise ValueError(f"unknown host {host!r}; choose from {sorted(_HOSTS)}")
    if ncards < 0:
        raise ValueError(f"ncards must be >= 0, got {ncards}")
    if ncards > 0 and card_key not in _CARDS:
        raise ValueError(f"unknown card {card!r}; choose from {sorted(_CARDS)}")
    card_dev = _CARDS[card_key] if ncards else None
    name = host_key + (f"+{ncards}{card_key}" if ncards else "")
    return Platform(
        name=name,
        host=_HOSTS[host_key],
        cards=tuple(card_dev for _ in range(ncards)),
        pcie_bandwidth_gbs=pcie_bandwidth_gbs,
        pcie_latency_s=pcie_latency_s,
    )


def make_fabric_platform(
    host: str = "HSW",
    nnodes: int = 1,
    node: str = "HSW",
    fabric_bandwidth_gbs: float = 5.5,
    fabric_latency_s: float = 2.0e-6,
    host_bus: bool = False,
    peer_enabled: bool = False,
) -> Platform:
    """A host plus ``nnodes`` remote Xeon nodes over the cluster fabric.

    The §III configuration the paper exercised but could not report:
    hStreams over COI between Xeon nodes. Remote nodes are ordinary
    domains — the same streams/buffers/actions APIs work unchanged.
    ``host_bus``/``peer_enabled`` opt into the contention-aware topology
    (see :class:`Platform`); defaults preserve the independent-links
    model every calibrated figure was produced with.
    """
    host_key, node_key = host.upper(), node.upper()
    if host_key not in _HOSTS or node_key not in _HOSTS:
        raise ValueError(f"host and node must be in {sorted(_HOSTS)}")
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    return Platform(
        name=f"{host_key}+{nnodes}x{node_key}(fabric)",
        host=_HOSTS[host_key],
        fabric_nodes=tuple(_HOSTS[node_key] for _ in range(nnodes)),
        fabric_bandwidth_gbs=fabric_bandwidth_gbs,
        fabric_latency_s=fabric_latency_s,
        host_bus=host_bus,
        peer_enabled=peer_enabled,
    )


def make_cluster_platform(
    host: str = "HSW",
    nnodes: int = 32,
    node: str = "HSW",
    fabric_bandwidth_gbs: float = 5.5,
    fabric_latency_s: float = 2.0e-6,
) -> Platform:
    """A contention-aware cluster: dozens of fabric nodes, bus + peer links.

    The topology the collectives planner is designed for: the host's
    injection bandwidth is one port (``host_bus=True``), so N
    independent sends serialize, while node-to-node forwarding
    (``peer_enabled=True``) rides disjoint port pairs and pipelines.
    """
    return make_fabric_platform(
        host=host,
        nnodes=nnodes,
        node=node,
        fabric_bandwidth_gbs=fabric_bandwidth_gbs,
        fabric_latency_s=fabric_latency_s,
        host_bus=True,
        peer_enabled=True,
    )
