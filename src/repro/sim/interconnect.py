"""PCIe/fabric interconnect model.

Each non-host domain is reached through a :class:`LinkPair`: two
independent :class:`Link` directions (host-to-device, device-to-host), so
transfers in opposite directions overlap but same-direction transfers
serialize — the behaviour that makes pipelining tiles worthwhile in the
paper.

:class:`Fabric` composes the link pairs into a topology:

* **root links** — every domain's full-duplex port toward the host, the
  only routes the original runtime had;
* **peer routing** (optional) — a card/node-to-card/node transfer holds
  the source port's egress (``d2h``) direction and the destination
  port's ingress (``h2d``) direction for the wire duration, the standard
  switch model.  Distinct hops of a store-and-forward chain use disjoint
  port pairs, which is what lets a pipelined multicast genuinely overlap
  its hops;
* **shared host bus** (optional) — a capacity-1 root-complex resource
  per direction.  With it enabled, host-rooted same-direction transfers
  serialize *across* destinations (N independent broadcasts cost N wire
  times), not just per destination link.  Without it, the model degrades
  to the original independent-links behaviour.

Transfer time = per-message latency + payload / bandwidth; a peer hop is
bottlenecked by the slower of its two ports.

Accounting: ``bytes_moved`` and ``busy_time`` are charged when a
transfer actually holds the wire, not at submission; time spent queued
behind the resource (and, for host-rooted traffic, behind the shared
bus) accumulates in ``queue_wait``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.sim.engine import Engine, Event, Resource

__all__ = ["Link", "LinkPair", "Fabric"]


class Link:
    """One direction of a point-to-point interconnect."""

    def __init__(
        self,
        engine: Engine,
        bandwidth_gbs: float,
        latency_s: float,
        name: str = "link",
    ):
        if bandwidth_gbs <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_gbs}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.engine = engine
        self.bandwidth_gbs = bandwidth_gbs
        self.latency_s = latency_s
        self.name = name
        self._resource = Resource(engine, capacity=1, name=name)
        self.bytes_moved = 0
        self.busy_time = 0.0
        self.queue_wait = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Occupancy time on the wire for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def occupy(self, nbytes: int, duration: float, submitted: float) -> Iterator:
        """Generator: acquire the wire, charge accounting, hold ``duration``.

        ``submitted`` is the engine time the caller issued the transfer;
        the gap until the wire grant is charged to ``queue_wait``.
        Yield-from this inside an engine process that may co-hold other
        resources around it.
        """
        yield self._resource.request()
        try:
            self.queue_wait += self.engine.now - submitted
            self.bytes_moved += nbytes
            self.busy_time += duration
            yield self.engine.timeout(duration)
        finally:
            self._resource.release()

    def transfer(self, nbytes: int) -> Event:
        """Start a transfer; the returned event fires at completion."""
        duration = self.transfer_time(nbytes)
        submitted = self.engine.now
        done = self.engine.event(name=f"xfer:{self.name}")

        def run():
            yield from self.occupy(nbytes, duration, submitted)
            done.trigger(nbytes)

        self.engine.process(run(), name=f"xfer:{self.name}")
        return done

    @property
    def queued(self) -> int:
        """Transfers waiting behind the one on the wire."""
        return self._resource.queued


class LinkPair:
    """Full-duplex connection between the host and one device."""

    def __init__(
        self,
        engine: Engine,
        bandwidth_gbs: float,
        latency_s: float,
        name: str = "pcie",
        d2h_bandwidth_gbs: Optional[float] = None,
    ):
        self.name = name
        self.h2d = Link(engine, bandwidth_gbs, latency_s, name=f"{name}:h2d")
        self.d2h = Link(
            engine, d2h_bandwidth_gbs or bandwidth_gbs, latency_s, name=f"{name}:d2h"
        )

    def direction(self, to_device: bool) -> Link:
        """The link carrying traffic toward (or away from) the device."""
        return self.h2d if to_device else self.d2h

    @property
    def bytes_moved(self) -> int:
        """Total payload bytes in both directions."""
        return self.h2d.bytes_moved + self.d2h.bytes_moved

    @property
    def queue_wait(self) -> float:
        """Total time transfers queued for either direction of this port."""
        return self.h2d.queue_wait + self.d2h.queue_wait


class Fabric:
    """All ports of one platform, with optional peer routing and bus.

    Deadlock-free by construction: every transfer acquires at most one
    *egress* resource (a ``d2h`` link or the host TX bus) strictly
    before at most one *ingress* resource (an ``h2d`` link or the host
    RX bus), and the two sets are disjoint — a hold-and-wait cycle would
    need an ingress holder waiting on an egress, which never happens.
    """

    def __init__(
        self,
        engine: Engine,
        ports: Dict[int, LinkPair],
        host_bus: bool = False,
        peer_enabled: bool = False,
    ):
        self.engine = engine
        self.ports = ports
        self.peer_enabled = peer_enabled
        self.host_tx = Resource(engine, capacity=1, name="hostbus:tx") if host_bus else None
        self.host_rx = Resource(engine, capacity=1, name="hostbus:rx") if host_bus else None
        self.host_bus_wait = 0.0
        self.peer_bytes_moved = 0
        self.peer_transfers = 0

    @property
    def has_host_bus(self) -> bool:
        return self.host_tx is not None

    def routes(self, src: int, dst: int) -> bool:
        """Whether ``src -> dst`` is reachable without host staging."""
        if src == dst or src == 0 or dst == 0:
            return True
        return self.peer_enabled and src in self.ports and dst in self.ports

    def transfer(self, src: int, dst: int, nbytes: int) -> Event:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Host-rooted transfers ride the destination/source port (plus the
        shared bus when modelled); peer transfers hold both ports.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        for node in (src, dst):
            if node != 0 and node not in self.ports:
                raise ValueError(
                    f"no fabric node {node}; known nodes: {sorted(self.ports)}"
                )
        if src == dst:
            return self.engine.timeout(0.0, value=nbytes)
        if src == 0:
            return self._host_rooted(self.ports[dst].h2d, nbytes, tx=True)
        if dst == 0:
            return self._host_rooted(self.ports[src].d2h, nbytes, tx=False)
        if not self.peer_enabled:
            raise ValueError(
                f"card-to-card DMA ({src}->{dst}) is not routed; stage via the host"
            )
        return self._peer(src, dst, nbytes)

    def _host_rooted(self, link: Link, nbytes: int, tx: bool) -> Event:
        bus = self.host_tx if tx else self.host_rx
        if bus is None:
            return link.transfer(nbytes)
        duration = link.transfer_time(nbytes)
        submitted = self.engine.now
        done = self.engine.event(name=f"xfer:{link.name}")

        def run():
            # Bus (egress for h2d) before link keeps the global
            # egress-then-ingress order; for d2h the link *is* the
            # egress, so the RX bus is folded into the wire hold.
            if tx:
                yield bus.request()
                self.host_bus_wait += self.engine.now - submitted
                try:
                    yield from link.occupy(nbytes, duration, submitted)
                finally:
                    bus.release()
            else:
                yield link._resource.request()
                try:
                    granted = self.engine.now
                    yield bus.request()
                    self.host_bus_wait += self.engine.now - granted
                    try:
                        link.queue_wait += self.engine.now - submitted
                        link.bytes_moved += nbytes
                        link.busy_time += duration
                        yield self.engine.timeout(duration)
                    finally:
                        bus.release()
                finally:
                    link._resource.release()
            done.trigger(nbytes)

        self.engine.process(run(), name=f"xfer:{link.name}")
        return done

    def _peer(self, src: int, dst: int, nbytes: int) -> Event:
        egress = self.ports[src].d2h
        ingress = self.ports[dst].h2d
        duration = max(egress.transfer_time(nbytes), ingress.transfer_time(nbytes))
        submitted = self.engine.now
        done = self.engine.event(name=f"xfer:peer:{src}->{dst}")

        def run():
            yield egress._resource.request()
            try:
                yield ingress._resource.request()
                try:
                    waited = self.engine.now - submitted
                    for link in (egress, ingress):
                        link.queue_wait += waited
                        link.bytes_moved += nbytes
                        link.busy_time += duration
                    self.peer_bytes_moved += nbytes
                    self.peer_transfers += 1
                    yield self.engine.timeout(duration)
                finally:
                    ingress._resource.release()
            finally:
                egress._resource.release()
            done.trigger(nbytes)

        self.engine.process(run(), name=f"xfer:peer:{src}->{dst}")
        return done

    def peer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Wire time of one peer hop (bottleneck of the two ports)."""
        return max(
            self.ports[src].d2h.transfer_time(nbytes),
            self.ports[dst].h2d.transfer_time(nbytes),
        )

    def metrics(self) -> Dict[str, object]:
        """Deterministic counters for ``hs.metrics()['fabric']``."""
        links: Dict[str, Dict[str, float]] = {}
        total_bytes = 0
        total_busy = 0.0
        total_wait = 0.0
        for dom, pair in sorted(self.ports.items()):
            entry = {
                "h2d_bytes": pair.h2d.bytes_moved,
                "d2h_bytes": pair.d2h.bytes_moved,
                "h2d_busy_s": pair.h2d.busy_time,
                "d2h_busy_s": pair.d2h.busy_time,
                "queue_wait_s": pair.queue_wait,
            }
            links[str(dom)] = entry
            total_bytes += pair.bytes_moved
            total_busy += pair.h2d.busy_time + pair.d2h.busy_time
            total_wait += pair.queue_wait
        return {
            "bytes_moved": total_bytes,
            "busy_time_s": total_busy,
            "queue_wait_s": total_wait,
            "host_bus": self.has_host_bus,
            "host_bus_wait_s": self.host_bus_wait,
            "peer_enabled": self.peer_enabled,
            "peer_bytes_moved": self.peer_bytes_moved,
            "peer_transfers": self.peer_transfers,
            "links": links,
        }
