"""PCIe-like interconnect model.

Each card is reached through a :class:`LinkPair`: two independent
:class:`Link` directions (host-to-device, device-to-host), so transfers in
opposite directions overlap but same-direction transfers serialize — the
behaviour that makes pipelining tiles worthwhile in the paper.

Transfer time = per-message latency + payload / bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine, Event, Resource

__all__ = ["Link", "LinkPair"]


class Link:
    """One direction of a point-to-point interconnect."""

    def __init__(
        self,
        engine: Engine,
        bandwidth_gbs: float,
        latency_s: float,
        name: str = "link",
    ):
        if bandwidth_gbs <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_gbs}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.engine = engine
        self.bandwidth_gbs = bandwidth_gbs
        self.latency_s = latency_s
        self.name = name
        self._resource = Resource(engine, capacity=1, name=name)
        self.bytes_moved = 0
        self.busy_time = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Occupancy time on the wire for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def transfer(self, nbytes: int) -> Event:
        """Start a transfer; the returned event fires at completion."""
        duration = self.transfer_time(nbytes)
        self.bytes_moved += nbytes
        self.busy_time += duration
        done = self.engine.event(name=f"xfer:{self.name}")

        def run():
            yield self._resource.request()
            try:
                yield self.engine.timeout(duration)
            finally:
                self._resource.release()
            done.trigger(nbytes)

        self.engine.process(run(), name=f"xfer:{self.name}")
        return done

    @property
    def queued(self) -> int:
        """Transfers waiting behind the one on the wire."""
        return self._resource.queued


class LinkPair:
    """Full-duplex connection between the host and one device."""

    def __init__(
        self,
        engine: Engine,
        bandwidth_gbs: float,
        latency_s: float,
        name: str = "pcie",
        d2h_bandwidth_gbs: Optional[float] = None,
    ):
        self.name = name
        self.h2d = Link(engine, bandwidth_gbs, latency_s, name=f"{name}:h2d")
        self.d2h = Link(
            engine, d2h_bandwidth_gbs or bandwidth_gbs, latency_s, name=f"{name}:d2h"
        )

    def direction(self, to_device: bool) -> Link:
        """The link carrying traffic toward (or away from) the device."""
        return self.h2d if to_device else self.d2h

    @property
    def bytes_moved(self) -> int:
        """Total payload bytes in both directions."""
        return self.h2d.bytes_moved + self.d2h.bytes_moved
