"""Device models for the simulated heterogeneous platform.

A :class:`Device` captures the architectural parameters the paper's Fig. 2
tabulates (sockets, cores, threads, SIMD width, FMA, clock, memories) and
turns them into *achievable* kernel rates through per-kernel
:class:`EfficiencyCurve` objects.

The curves follow the standard saturating form used in roofline-style
models::

    eff(size) = eff_min + (eff_max - eff_min) * size / (size + half_size)

so small problems run far below peak (launch/fork-join latency, low
occupancy) and large problems approach the measured asymptote. Asymptotes
are calibrated to the single-device rates reported in the paper (e.g. KNC
DGEMM 982 GFl/s, HSW 902, IVB 475), so all multi-device results *emerge*
from the simulated schedule rather than being dialed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = ["EfficiencyCurve", "Device"]


@dataclass(frozen=True)
class EfficiencyCurve:
    """Size-dependent fraction of peak a kernel achieves on a device.

    ``size`` is a kernel-specific characteristic dimension (e.g. the
    smallest GEMM dimension, or the matrix order for a factorization).
    """

    eff_max: float
    half_size: float
    eff_min: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.eff_min <= self.eff_max <= 1.0):
            raise ValueError(
                f"need 0 <= eff_min <= eff_max <= 1, got "
                f"({self.eff_min}, {self.eff_max})"
            )
        if self.half_size < 0:
            raise ValueError(f"half_size must be >= 0, got {self.half_size}")

    def __call__(self, size: float) -> float:
        """Efficiency in (0, 1] at characteristic ``size``."""
        if size <= 0:
            return max(self.eff_min, 1e-6)
        sat = size / (size + self.half_size) if self.half_size > 0 else 1.0
        return max(self.eff_min + (self.eff_max - self.eff_min) * sat, 1e-6)


@dataclass(frozen=True)
class Device:
    """A computing domain's hardware: one host socket-pair, card, or GPU."""

    name: str
    kind: str  # "xeon" | "knc" | "gpu"
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    clock_ghz: float
    dp_flops_per_cycle: float  # per core, incl. SIMD width and FMA
    sp_flops_per_cycle: float
    ram_gb: float
    mem_bw_gbs: float  # achievable STREAM-like bandwidth
    # Per-task threading overhead (seconds): OpenMP fork/join across the
    # device's threads. Dominant for tiny tasks, negligible for big tiles.
    fork_join_s: float = 5e-6
    # Achievable fraction of peak per kernel class.
    kernel_eff: Dict[str, EfficiencyCurve] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError(f"{self.name}: invalid socket/core counts")
        if self.clock_ghz <= 0:
            raise ValueError(f"{self.name}: invalid clock {self.clock_ghz}")

    # -- capacity ------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        """All physical cores across sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        """All hardware threads across sockets."""
        return self.total_cores * self.threads_per_core

    @property
    def peak_dp_gflops(self) -> float:
        """Architectural double-precision peak for the whole device."""
        return self.total_cores * self.clock_ghz * self.dp_flops_per_cycle

    @property
    def peak_sp_gflops(self) -> float:
        """Architectural single-precision peak for the whole device."""
        return self.total_cores * self.clock_ghz * self.sp_flops_per_cycle

    # -- achievable rates ----------------------------------------------------

    def efficiency(self, kernel: str, size: float) -> float:
        """Fraction of peak that ``kernel`` achieves at ``size``."""
        curve = self.kernel_eff.get(kernel)
        if curve is None:
            curve = self.kernel_eff.get("default")
        if curve is None:
            curve = EfficiencyCurve(eff_max=0.70, half_size=512.0)
        return curve(size)

    def gflops(self, kernel: str, size: float, cores: Optional[int] = None) -> float:
        """Achievable GFl/s for ``kernel`` at ``size`` using ``cores`` cores.

        ``cores=None`` means the whole device. Sub-device partitions (a
        stream's CPU mask) get a proportional share of peak; the efficiency
        curve is evaluated at the same problem size.
        """
        if cores is None:
            cores = self.total_cores
        if cores < 1 or cores > self.total_cores:
            raise ValueError(
                f"{self.name}: cores={cores} outside 1..{self.total_cores}"
            )
        peak = cores * self.clock_ghz * self.dp_flops_per_cycle
        return peak * self.efficiency(kernel, size)

    def compute_time(
        self,
        kernel: str,
        flops: float,
        size: float,
        cores: Optional[int] = None,
        bytes_moved: float = 0.0,
    ) -> float:
        """Seconds to run ``flops`` of ``kernel`` work at ``size``.

        A simple roofline: the larger of the compute time at the achievable
        rate and the memory time at the device bandwidth, plus one
        fork/join overhead.
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops/bytes_moved must be non-negative")
        rate = self.gflops(kernel, size, cores)
        t_compute = flops / (rate * 1e9)
        t_memory = bytes_moved / (self.mem_bw_gbs * 1e9) if bytes_moved else 0.0
        return max(t_compute, t_memory) + self.fork_join_s

    def with_efficiencies(self, **curves: EfficiencyCurve) -> "Device":
        """A copy of this device with some kernel curves replaced."""
        merged = dict(self.kernel_eff)
        merged.update(curves)
        return replace(self, kernel_eff=merged)

    def scaled(self, name: str, clock_factor: float = 1.0) -> "Device":
        """A renamed copy with a scaled clock (for what-if studies)."""
        return replace(self, name=name, clock_ghz=self.clock_ghz * clock_factor)
