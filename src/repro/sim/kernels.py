"""Analytic cost models for the kernels in the paper's evaluation.

Each helper returns a :class:`KernelCost` — flop count, characteristic
size (what the device efficiency curve is evaluated at), and main-memory
traffic — which :func:`time_on` turns into seconds for a given device and
core allocation.

Flop counts use the standard LAPACK conventions (double precision):

* ``DGEMM  (m,n,k)``: ``2 m n k``
* ``DSYRK  (n,k)``  : ``n (n+1) k``
* ``DTRSM  (m,n)``  : ``m n^2`` (right-side triangular solve)
* ``DPOTRF (n)``    : ``n^3 / 3``
* ``DGETRF (m,n)``  : ``m n^2 - n^3/3`` (``2 n^3 / 3`` when square)
* stencil           : grid points x flops per point (80 for the 8th-order
  RTM propagator, matching the paper's halo workload arithmetic)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.hardware import Device

__all__ = [
    "KernelCost",
    "dgemm",
    "dsyrk",
    "dtrsm",
    "dpotrf",
    "dgetrf",
    "cholesky_native",
    "ldlt_panel",
    "ldlt_update",
    "stencil",
    "time_on",
    "FLOPS_PER_STENCIL_POINT",
]

#: Flops per grid point for the 8th-order-in-space, 2nd-order-in-time
#: acoustic propagator (matches the paper's "1K x 1K x 8 * 80 Flops").
FLOPS_PER_STENCIL_POINT = 80.0

_DTYPE_BYTES = 8  # double precision throughout the paper's evaluation


@dataclass(frozen=True)
class KernelCost:
    """Work descriptor: what a compute action costs, device-independently."""

    kernel: str
    flops: float
    size: float
    bytes_moved: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError(f"negative work in {self!r}")

    def scaled(self, factor: float) -> "KernelCost":
        """The same kernel with flops and traffic scaled by ``factor``."""
        return KernelCost(
            self.kernel, self.flops * factor, self.size, self.bytes_moved * factor
        )


def _check_dims(*dims: int) -> None:
    for d in dims:
        if d < 0:
            raise ValueError(f"matrix dimension must be >= 0, got {d}")


def dgemm(m: int, n: int, k: int, kernel: str = "dgemm") -> KernelCost:
    """General matrix multiply C(m,n) += A(m,k) B(k,n)."""
    _check_dims(m, n, k)
    return KernelCost(
        kernel=kernel,
        flops=2.0 * m * n * k,
        size=float(min(m, n, k)),
        bytes_moved=_DTYPE_BYTES * (m * k + k * n + 2 * m * n),
    )


def dsyrk(n: int, k: int) -> KernelCost:
    """Symmetric rank-k update C(n,n) += A(n,k) A(n,k)^T."""
    _check_dims(n, k)
    return KernelCost(
        kernel="dsyrk",
        flops=float(n) * (n + 1) * k,
        size=float(min(n, k)),
        bytes_moved=_DTYPE_BYTES * (n * k + n * n),
    )


def dtrsm(m: int, n: int) -> KernelCost:
    """Triangular solve with m x n right-hand side and n x n triangle."""
    _check_dims(m, n)
    return KernelCost(
        kernel="dtrsm",
        flops=float(m) * n * n,
        size=float(min(m, n)),
        bytes_moved=_DTYPE_BYTES * (n * n // 2 + 2 * m * n),
    )


def dpotrf(n: int) -> KernelCost:
    """Cholesky factorization of an n x n tile."""
    _check_dims(n)
    return KernelCost(
        kernel="dpotrf",
        flops=n**3 / 3.0,
        size=float(n),
        bytes_moved=_DTYPE_BYTES * n * n,
    )


def dgetrf(m: int, n: int) -> KernelCost:
    """LU factorization with partial pivoting of an m x n block."""
    _check_dims(m, n)
    return KernelCost(
        kernel="dgetrf",
        flops=float(m) * n * n - n**3 / 3.0,
        size=float(min(m, n)),
        bytes_moved=_DTYPE_BYTES * m * n * 2,
    )


def cholesky_native(n: int) -> KernelCost:
    """A whole untiled DPOTRF call, as MKL native on the host (Fig. 7)."""
    _check_dims(n)
    return KernelCost(
        kernel="cholesky_native",
        flops=n**3 / 3.0,
        size=float(n),
        bytes_moved=_DTYPE_BYTES * n * n,
    )


def ldlt_panel(n: int, width: int) -> KernelCost:
    """LDL^T panel factorization: ``width`` columns of an n-row supernode."""
    _check_dims(n, width)
    return KernelCost(
        kernel="ldlt_panel",
        flops=float(n) * width * width,
        size=float(width),
        bytes_moved=_DTYPE_BYTES * n * width * 2,
    )


def ldlt_update(m: int, n: int, k: int) -> KernelCost:
    """Trailing update of an LDL^T factorization (GEMM-shaped)."""
    cost = dgemm(m, n, k)
    return KernelCost("dgemm", cost.flops, cost.size, cost.bytes_moved)


def stencil(
    points: float, flops_per_point: float = FLOPS_PER_STENCIL_POINT
) -> KernelCost:
    """Finite-difference propagation over ``points`` grid points."""
    if points < 0 or flops_per_point < 0:
        raise ValueError("points/flops_per_point must be >= 0")
    return KernelCost(
        kernel="stencil",
        flops=points * flops_per_point,
        # Stencil efficiency saturates quickly with slab thickness; use a
        # proxy size from the cube root of the point count.
        size=float(points) ** (1.0 / 3.0),
        bytes_moved=_DTYPE_BYTES * points * 3,  # read prev+cur, write next
    )


def time_on(device: Device, cost: KernelCost, cores: Optional[int] = None) -> float:
    """Seconds for ``cost`` on ``device`` using ``cores`` cores (None = all)."""
    return device.compute_time(
        cost.kernel, cost.flops, cost.size, cores=cores, bytes_moved=cost.bytes_moved
    )
