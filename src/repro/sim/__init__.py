"""Simulated heterogeneous platform substrate.

This package provides the virtual hardware that stands in for the paper's
testbed (dual-socket Xeon hosts plus Knights Corner coprocessor cards on
PCIe, and an NVIDIA K40x for the CUDA comparison):

``engine``
    A deterministic discrete-event simulation core (virtual clock, events,
    generator-based processes, FIFO resources).
``hardware``
    Device models: core counts, clocks, vector widths, memory, and the
    size-dependent efficiency curves that turn kernel work into time.
``platforms``
    Presets reproducing the paper's Fig. 2 machine-configuration table.
``interconnect``
    A PCIe-like link model with per-direction bandwidth and latency.
``kernels``
    Analytic cost models for the BLAS/LAPACK kernels and the RTM stencil.
``trace``
    Timeline recording for schedules (per-lane Gantt data).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    Resource,
    SimError,
    Timeout,
)
from repro.sim.hardware import Device, EfficiencyCurve
from repro.sim.interconnect import Link, LinkPair
from repro.sim.platforms import (
    HSW,
    IVB,
    K40X,
    KNC_7120A,
    Platform,
    make_platform,
)
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimError",
    "Timeout",
    "Device",
    "EfficiencyCurve",
    "Link",
    "LinkPair",
    "Platform",
    "make_platform",
    "IVB",
    "HSW",
    "KNC_7120A",
    "K40X",
    "TraceEvent",
    "Tracer",
]
