"""The C-style hStreams API facade.

The original library is a C API: a process-global runtime manipulated
through ``hStreams_*`` functions, split into the high-level **app API**
(automatic resource partitioning, convenience transfers/BLAS) and the
low-level **core API** (explicit logical/physical mapping). Ported
applications call these names; this module provides them 1:1 over a
module-global :class:`~repro.core.runtime.HStreams` instance so such
ports read almost line-for-line.

Streams are plain integers here, exactly as the paper emphasizes
(§IV, vs CUDA's opaque pointers). Buffers are addressed by their *source
proxy address* — any ``int`` inside a created buffer resolves through
the unified proxy address space.

Example (compare the C examples in the paper's ref. [1])::

    from repro.core import api as hstr

    hstr.hStreams_app_init(2, 1)                  # 2 streams per domain
    addr = hstr.hStreams_app_create_buf(nbytes=1 << 20)
    hstr.hStreams_app_xfer_memory(0, addr, addr, 1 << 20,
                                  hstr.HSTR_SRC_TO_SINK)
    ...
    hstr.hStreams_app_fini()
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actions import Operand, OperandMode, XferDirection
from repro.core.buffer import Buffer
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsNotFound,
    HStreamsNotInitialized,
)
from repro.core.events import HEvent
from repro.core.properties import RuntimeConfig
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.sim.kernels import dgemm as _dgemm_cost
from repro.sim.platforms import Platform

__all__ = [
    "HSTR_SRC_TO_SINK",
    "HSTR_SINK_TO_SRC",
    "hStreams_Init",
    "hStreams_IsInitialized",
    "hStreams_Fini",
    "hStreams_GetNumPhysDomains",
    "hStreams_GetPhysDomainDetails",
    "hStreams_app_init",
    "hStreams_app_fini",
    "hStreams_app_create_buf",
    "hStreams_app_xfer_memory",
    "hStreams_app_invoke",
    "hStreams_app_memset",
    "hStreams_app_memcpy",
    "hStreams_app_dgemm",
    "hStreams_app_event_wait",
    "hStreams_app_stream_sync",
    "hStreams_app_thread_sync",
    "hStreams_app_broadcast",
    "hStreams_app_scatter",
    "hStreams_app_gather",
    "hStreams_app_reduce",
    "hStreams_app_allreduce",
    "hStreams_StreamCreate",
    "hStreams_EnqueueCompute",
    "hStreams_EnqueueData1D",
    "hStreams_EventStreamWait",
    "hStreams_EventWait",
    "hStreams_StreamSynchronize",
    "hStreams_ThreadSynchronize",
    "hStreams_Alloc1D",
    "hStreams_DeAlloc",
    "hStreams_RegisterSinkFunction",
    "runtime",
]

HSTR_SRC_TO_SINK = XferDirection.SRC_TO_SINK
HSTR_SINK_TO_SRC = XferDirection.SINK_TO_SRC

_lock = threading.Lock()
_rt: Optional[HStreams] = None
_streams: Dict[int, Stream] = {}


def runtime() -> HStreams:
    """The process-global runtime (raises if not initialized)."""
    if _rt is None:
        raise HStreamsNotInitialized(
            "call hStreams_Init() or hStreams_app_init() first"
        )
    return _rt


def _register(stream: Stream) -> int:
    _streams[stream.id] = stream
    return stream.id


def _stream(stream_id: int) -> Stream:
    try:
        return _streams[stream_id]
    except KeyError:
        raise HStreamsNotFound(f"no stream with id {stream_id}") from None


def _resolve(addr: int, nbytes: int, mode: OperandMode) -> Operand:
    buf, off = runtime().proxy_space.resolve(addr)
    return Operand(buf, off, nbytes, mode)


# -- lifecycle -------------------------------------------------------------------


def hStreams_Init(
    platform: Optional[Platform] = None,
    backend: str = "thread",
    config: Optional[RuntimeConfig] = None,
    trace: bool = False,
) -> None:
    """Initialize the process-global runtime (core API entry point)."""
    global _rt
    with _lock:
        if _rt is not None:
            raise HStreamsBadArgument("hStreams is already initialized")
        _rt = HStreams(platform=platform, backend=backend, config=config, trace=trace)


def hStreams_IsInitialized() -> bool:
    """Whether the process-global runtime exists."""
    return _rt is not None


def hStreams_Fini() -> None:
    """Tear the process-global runtime down."""
    global _rt
    with _lock:
        if _rt is not None:
            _rt.fini()
            _rt = None
            _streams.clear()


# -- discovery --------------------------------------------------------------------


def hStreams_GetNumPhysDomains() -> Tuple[int, int]:
    """(number of physical domains excluding the host, host index)."""
    return runtime().ndomains - 1, 0


def hStreams_GetPhysDomainDetails(domain: int) -> Dict[str, Any]:
    """Discoverable properties of one domain (paper §II)."""
    return runtime().domain(domain).props


# -- app API ------------------------------------------------------------------------


def hStreams_app_init(
    streams_per_domain: int,
    log_stream_oversubscription: int = 1,
    use_host: bool = False,
    platform: Optional[Platform] = None,
    backend: str = "thread",
    config: Optional[RuntimeConfig] = None,
    trace: bool = False,
) -> List[int]:
    """Initialize and evenly partition resources into streams.

    Mirrors ``hStreams_app_init(in_StreamsPerDomain,
    in_LogStreamOversubscription)``: discovers the domains and divides
    each into ``streams_per_domain`` places with the requested logical
    oversubscription. Returns the created stream ids.
    """
    if not hStreams_IsInitialized():
        hStreams_Init(platform=platform, backend=backend, config=config, trace=trace)
    created = runtime().app_init(
        streams_per_domain, oversubscription=log_stream_oversubscription,
        use_host=use_host,
    )
    return [_register(s) for s in created]


def hStreams_app_fini() -> None:
    """App-API teardown."""
    hStreams_Fini()


def hStreams_app_create_buf(
    nbytes: Optional[int] = None, array: Optional[np.ndarray] = None
) -> int:
    """Create a buffer; returns its source proxy base address."""
    buf = runtime().buffer_create(nbytes=nbytes, array=array)
    return buf.proxy_base


def hStreams_app_xfer_memory(
    stream_id: int,
    dst_addr: int,
    src_addr: int,
    nbytes: int,
    direction: XferDirection,
) -> HEvent:
    """Asynchronous transfer between the source and a stream's sink.

    As in the C API, source and sink sides of one buffer share a proxy
    address, so ``dst_addr``/``src_addr`` normally coincide; they must
    resolve into the same buffer.
    """
    dst = runtime().proxy_space.resolve(dst_addr)
    src = runtime().proxy_space.resolve(src_addr)
    if dst[0] is not src[0]:
        raise HStreamsBadArgument(
            "xfer endpoints resolve to different buffers; hStreams "
            "transfers move one buffer between its domain instances"
        )
    op = Operand(dst[0], dst[1], nbytes, OperandMode.INOUT)
    return runtime().enqueue_xfer(_stream(stream_id), op, direction)


def hStreams_app_invoke(
    stream_id: int,
    func_name: str,
    scalar_args: Sequence = (),
    heap_args: Sequence[int] = (),
    heap_nbytes: Sequence[int] = (),
    cost=None,
) -> HEvent:
    """Invoke a registered sink function with scalar + heap arguments.

    ``heap_args`` are proxy addresses; each resolves to an operand of
    the matching ``heap_nbytes`` entry (whole remaining buffer if
    omitted), passed to the function after the scalars.
    """
    if heap_nbytes and len(heap_nbytes) != len(heap_args):
        raise HStreamsBadArgument("heap_nbytes must match heap_args")
    ops = []
    for i, addr in enumerate(heap_args):
        buf, off = runtime().proxy_space.resolve(addr)
        nbytes = heap_nbytes[i] if heap_nbytes else buf.nbytes - off
        ops.append(Operand(buf, off, nbytes, OperandMode.INOUT))
    return runtime().enqueue_compute(
        _stream(stream_id), func_name, args=tuple(scalar_args) + tuple(ops), cost=cost
    )


def _ensure_builtin_kernels() -> None:
    rt = runtime()
    try:
        rt.kernel("__memset")
    except HStreamsNotFound:
        def k_memset(view: np.ndarray, value: int) -> None:
            view.view(np.uint8)[:] = value

        def k_memcpy(dst: np.ndarray, src: np.ndarray) -> None:
            np.copyto(dst, src)

        def k_dgemm(C, A, B, alpha, beta) -> None:
            C *= beta
            C += alpha * (A @ B)

        from repro.sim.kernels import KernelCost

        rt.register_kernel(
            "__memset", fn=k_memset,
            cost_fn=lambda view, value: KernelCost(
                "default", flops=0.0, size=1.0, bytes_moved=view.nbytes
            ),
        )
        rt.register_kernel(
            "__memcpy", fn=k_memcpy,
            cost_fn=lambda dst, src: KernelCost(
                "default", flops=0.0, size=1.0, bytes_moved=2 * dst.nbytes
            ),
        )
        rt.register_kernel(
            "__dgemm", fn=k_dgemm,
            cost_fn=lambda C, A, B, alpha, beta: _dgemm_cost(
                C.shape[0], C.shape[1], A.shape[1]
            ),
        )


def hStreams_app_memset(
    stream_id: int, addr: int, value: int, nbytes: int
) -> HEvent:
    """Set ``nbytes`` at the sink to ``value`` (app-API convenience)."""
    _ensure_builtin_kernels()
    op = _resolve(addr, nbytes, OperandMode.OUT)
    op = Operand(op.buffer, op.offset, nbytes, OperandMode.OUT,
                 dtype=np.uint8, shape=(nbytes,))
    return runtime().enqueue_compute(
        _stream(stream_id), "__memset", args=(op, value), label="app_memset"
    )


def hStreams_app_memcpy(
    stream_id: int, dst_addr: int, src_addr: int, nbytes: int
) -> HEvent:
    """Sink-side copy between two buffer ranges (app-API convenience)."""
    _ensure_builtin_kernels()
    dst = _resolve(dst_addr, nbytes, OperandMode.OUT)
    src = _resolve(src_addr, nbytes, OperandMode.IN)
    dst = Operand(dst.buffer, dst.offset, nbytes, OperandMode.OUT,
                  dtype=np.uint8, shape=(nbytes,))
    src = Operand(src.buffer, src.offset, nbytes, OperandMode.IN,
                  dtype=np.uint8, shape=(nbytes,))
    return runtime().enqueue_compute(
        _stream(stream_id), "__memcpy", args=(dst, src), label="app_memcpy"
    )


def hStreams_app_dgemm(
    stream_id: int,
    m: int,
    n: int,
    k: int,
    alpha: float,
    a_addr: int,
    b_addr: int,
    beta: float,
    c_addr: int,
) -> HEvent:
    """C = alpha A B + beta C at the sink (the paper's app-API xGEMM)."""
    _ensure_builtin_kernels()

    def tensor(addr, rows, cols, mode):
        buf, off = runtime().proxy_space.resolve(addr)
        return buf.tensor((rows, cols), offset=off, mode=mode)

    return runtime().enqueue_compute(
        _stream(stream_id),
        "__dgemm",
        args=(
            tensor(c_addr, m, n, OperandMode.INOUT),
            tensor(a_addr, m, k, OperandMode.IN),
            tensor(b_addr, k, n, OperandMode.IN),
            alpha,
            beta,
        ),
        label="app_dgemm",
    )


def _coll_buffer(addr: int):
    buf, off = runtime().proxy_space.resolve(addr)
    if off != 0:
        raise HStreamsBadArgument(
            "collectives take a buffer base address; pass offset= for "
            "an interior range"
        )
    return buf


def hStreams_app_broadcast(addr: int, domains: Sequence[int], **kw):
    """Replicate a buffer to ``domains`` over a planned schedule.

    The collective lowers to pipelined chunk transfers (see
    :mod:`repro.core.collectives`) instead of a per-domain transfer
    loop. Returns a ``CollectiveResult``.
    """
    return runtime().broadcast(_coll_buffer(addr), domains, **kw)


def hStreams_app_scatter(addr: int, domains: Sequence[int], **kw):
    """Distribute contiguous slices of a buffer, one per domain."""
    return runtime().scatter(_coll_buffer(addr), domains, **kw)


def hStreams_app_gather(addr: int, domains: Sequence[int], **kw):
    """Pull each domain's slice of a buffer back to the host."""
    return runtime().gather(_coll_buffer(addr), domains, **kw)


def hStreams_app_reduce(addr: int, domains: Sequence[int], **kw):
    """Combine each domain's instance into the host's (op=sum/prod/max/min)."""
    return runtime().reduce(_coll_buffer(addr), domains, **kw)


def hStreams_app_allreduce(addr: int, domains: Sequence[int], **kw):
    """Reduce into the host, then broadcast the result back out."""
    return runtime().allreduce(_coll_buffer(addr), domains, **kw)


def hStreams_app_event_wait(events: Sequence[HEvent]) -> None:
    """Block the source until all ``events`` complete."""
    runtime().event_wait(list(events), wait_all=True)


def hStreams_app_stream_sync(stream_id: int) -> None:
    """Block until a stream drains."""
    runtime().stream_synchronize(_stream(stream_id))


def hStreams_app_thread_sync() -> None:
    """Block until all streams drain."""
    runtime().thread_synchronize()


# -- core API ----------------------------------------------------------------------


def hStreams_StreamCreate(
    domain: int,
    cpu_mask: Optional[Sequence[int]] = None,
    ncores: Optional[int] = None,
) -> int:
    """Create one stream with an explicit placement (core API)."""
    return _register(
        runtime().stream_create(domain=domain, cpu_mask=cpu_mask, ncores=ncores)
    )


def hStreams_EnqueueCompute(
    stream_id: int, func_name: str, args: Sequence = (), cost=None
) -> HEvent:
    """Enqueue a compute action (core API; args may include Operands)."""
    return runtime().enqueue_compute(_stream(stream_id), func_name, args=args, cost=cost)


def hStreams_EnqueueData1D(
    stream_id: int, addr: int, nbytes: int, direction: XferDirection
) -> HEvent:
    """Enqueue a 1-D transfer of a proxy range (core API)."""
    op = _resolve(addr, nbytes, OperandMode.INOUT)
    return runtime().enqueue_xfer(_stream(stream_id), op, direction)


def hStreams_EventStreamWait(
    stream_id: int, events: Sequence[HEvent], addrs: Optional[Sequence[int]] = None
) -> HEvent:
    """Enqueue a sync action; ``addrs`` scope it to those buffers."""
    operands: Optional[List[Buffer]] = None
    if addrs is not None:
        operands = [runtime().proxy_space.resolve(a)[0] for a in addrs]
    return runtime().event_stream_wait(_stream(stream_id), list(events), operands=operands)


def hStreams_EventWait(
    events: Sequence[HEvent], wait_all: bool = True, timeout: Optional[float] = None
) -> None:
    """Host-side wait on any/all of a set of events."""
    runtime().event_wait(list(events), wait_all=wait_all, timeout=timeout)


def hStreams_StreamSynchronize(stream_id: int) -> None:
    """Core-API stream drain."""
    runtime().stream_synchronize(_stream(stream_id))


def hStreams_ThreadSynchronize() -> None:
    """Core-API global drain."""
    runtime().thread_synchronize()


def hStreams_Alloc1D(nbytes: int, domains: Sequence[int] = ()) -> int:
    """Allocate a buffer, optionally instantiating in ``domains``."""
    return runtime().buffer_create(nbytes=nbytes, domains=domains).proxy_base


def hStreams_DeAlloc(addr: int) -> None:
    """Destroy the buffer containing ``addr``."""
    buf, _ = runtime().proxy_space.resolve(addr)
    runtime().buffer_destroy(buf)


def hStreams_RegisterSinkFunction(name: str, fn=None, cost_fn=None) -> None:
    """Register a sink-side function (the C library looks these up in
    sink-side shared objects; here they are Python callables)."""
    runtime().register_kernel(name, fn=fn, cost_fn=cost_fn)
