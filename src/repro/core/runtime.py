"""The hStreams runtime: domains, streams, buffers, enqueue, and sync.

The :class:`HStreams` class is the library's front door. It owns the
backend-independent logic — resource partitioning, the proxy address
space, operand collection, intra-stream dependence computation — and
delegates *execution* to a pluggable backend:

* ``backend="thread"`` — real execution of registered Python kernels on
  per-stream worker threads, with per-domain numpy address spaces.
* ``backend="sim"`` — virtual-time execution on the calibrated platform
  models, used to regenerate the paper's performance figures.

The source endpoint (the thread calling these APIs) is single-threaded,
as in the paper's applications.
"""

from __future__ import annotations

import contextlib
import os as _os
from dataclasses import replace as _dc_replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.actions import (
    Action,
    ActionKind,
    Operand,
    OperandMode,
    XferDirection,
)
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsInvalid,
    HStreamsNotFound,
    HStreamsNotInitialized,
)
from repro.core.events import HEvent
from repro.core.memory import EvictionPolicy, MemoryManager
from repro.core.properties import MemType, RuntimeConfig
from repro.core.scheduler import FAILURE_POLICIES, Scheduler
from repro.core.stream import Stream
from repro.core.sync import Sanitizer, sanitize_mode_from_env
from repro.sim.kernels import KernelCost
from repro.sim.platforms import Platform, make_platform
from repro.sim.trace import Tracer

__all__ = ["DomainInfo", "HStreams", "KernelSpec"]

#: When set (by ``repro.analysis.capture.capture_session``), every
#: HStreams constructed is forced into capture mode and appended here,
#: so the program checker can analyze runtimes a program creates
#: internally without the program opting in.
_capture_registry: Optional[List["HStreams"]] = None


class DomainInfo:
    """One discoverable domain: its device and resource bookkeeping."""

    def __init__(self, index: int, device):
        self.index = index
        self.device = device
        self._core_cursor = 0
        #: Back-reference to the owning runtime's memory manager, set
        #: by :class:`HStreams`; ``None`` for bare DomainInfo objects.
        self._memory: Optional[MemoryManager] = None

    @property
    def allocated_bytes(self) -> int:
        """Bytes charged against this domain's capacity.

        Delegates to the runtime's
        :class:`~repro.core.memory.MemoryManager`, the single authority
        over per-domain byte accounting.
        """
        return self._memory.allocated_bytes(self.index) if self._memory else 0

    @property
    def is_host(self) -> bool:
        """Domain 0 is the host (the streams' source endpoint)."""
        return self.index == 0

    @property
    def props(self) -> Dict[str, Any]:
        """Discoverable domain properties (paper §II)."""
        return {
            "name": self.device.name,
            "kind": self.device.kind,
            "cores": self.device.total_cores,
            "threads": self.device.total_threads,
            "clock_ghz": self.device.clock_ghz,
            "ram_gb": self.device.ram_gb,
            "peak_dp_gflops": self.device.peak_dp_gflops,
        }

    def take_cores(self, ncores: int) -> Tuple[int, ...]:
        """Hand out the next ``ncores`` cores, wrapping when exhausted.

        Wrapping implements stream oversubscription: multiple streams
        mapped onto a common set of resources, which the paper lists as a
        tuner's prerogative.
        """
        total = self.device.total_cores
        if ncores < 1 or ncores > total:
            raise HStreamsBadArgument(
                f"domain {self.index}: ncores={ncores} outside 1..{total}"
            )
        mask = tuple((self._core_cursor + i) % total for i in range(ncores))
        self._core_cursor = (self._core_cursor + ncores) % total
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Domain {self.index} {self.device.name}>"


class KernelSpec:
    """A registered kernel: a callable (thread backend), a cost model
    (sim backend), or both."""

    def __init__(
        self,
        name: str,
        fn: Optional[Callable] = None,
        cost_fn: Optional[Callable[..., KernelCost]] = None,
    ):
        if fn is None and cost_fn is None:
            raise HStreamsBadArgument(
                f"kernel {name!r} needs a callable, a cost model, or both"
            )
        self.name = name
        self.fn = fn
        self.cost_fn = cost_fn


class HStreams:
    """An initialized hStreams runtime instance."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        backend: Union[str, Any] = "thread",
        config: Optional[RuntimeConfig] = None,
        trace: bool = True,
        capture_only: bool = False,
        eviction_policy: Union[str, EvictionPolicy] = "manual",
        transfer_elision: bool = True,
        failure_policy: str = "poison",
        sanitize: Union[bool, str, None] = None,
    ):
        if failure_policy not in FAILURE_POLICIES:
            raise HStreamsBadArgument(
                f"unknown failure_policy {failure_policy!r}; "
                f"use one of {FAILURE_POLICIES}"
            )
        #: What a failed action does to the rest of the run: ``"poison"``
        #: transitively cancels its dependents, ``"fail_fast"``
        #: additionally cancels all enqueued work and rejects new
        #: enqueues, ``"retry"`` re-executes transient failures with
        #: capped exponential backoff before poisoning.
        self.failure_policy = failure_policy
        #: Live :class:`~repro.core.faults.FaultInjector`, set by
        #: :func:`~repro.core.faults.inject_faults`; backends consult it
        #: before executing each action.
        self.fault_injector = None
        if sanitize is None:
            mode = sanitize_mode_from_env()
        elif sanitize is True:
            mode = "raise"
        elif sanitize is False:
            mode = None
        else:
            mode = sanitize
        #: The rtsan dynamic lock-discipline sanitizer
        #: (:mod:`repro.core.sync`), or None — the zero-overhead
        #: default, in which every lock this runtime creates is a plain
        #: ``threading`` primitive.
        self.sanitizer: Optional[Sanitizer] = Sanitizer(mode) if mode else None
        self.platform = platform if platform is not None else make_platform("HSW", 1)
        self.config = config if config is not None else RuntimeConfig()
        self.tracer = Tracer(enabled=trace)
        self.proxy_space = ProxyAddressSpace()
        self.domains: List[DomainInfo] = [
            DomainInfo(i, dev) for i, dev in enumerate(self.platform.devices)
        ]
        #: The memory subsystem: instance lifecycle, per-domain capacity
        #: accounting, coherence states, transfer elision, and eviction.
        #: Created before the backend attaches (the sim backend hands it
        #: the COI buffer pool during attach).
        self.memory = MemoryManager(
            self, policy=eviction_policy, transfer_elision=transfer_elision
        )
        for dom in self.domains:
            dom._memory = self.memory
        self.streams: List[Stream] = []
        self.buffers: List[Buffer] = []
        self._kernels: Dict[str, KernelSpec] = {}
        # Lazily-created per-domain streams and per-(buffer, domain)
        # scratch buffers owned by the collectives planner
        # (repro.core.collectives). Cached so repeated collectives of
        # the same shape create nothing — which is also what makes a
        # collective capturable: run it once outside capture_graph()
        # to warm these, since stream/buffer creation is illegal inside
        # a capture scope.
        self._coll_streams: Dict[int, Stream] = {}
        self._coll_scratch: Dict[Tuple[int, int, int], Buffer] = {}
        self._next_stream_id = 0
        self._initialized = True
        #: Action counters by kind plus transfer byte volume.
        self.stats: Dict[str, int] = {
            "computes": 0, "transfers": 0, "syncs": 0, "bytes_transferred": 0,
        }
        forced = _capture_registry is not None
        if capture_only or forced:
            # Capture mode: record the full action graph for the hazard
            # analyzer without dispatching any real (or virtual) work.
            from repro.core.capture import CaptureBackend

            self.backend = CaptureBackend()
        elif isinstance(backend, str):
            self.backend = _make_backend(backend)
        else:
            self.backend = backend
        self.backend.attach(self)
        #: The backend-agnostic scheduling core; both backends dispatch
        #: exclusively through it.
        self.scheduler = Scheduler(self)
        # The manager observes first: it decides transfer elision at
        # admission (before dispatch and before other observers record
        # the action) and commits coherence states at completion.
        self.scheduler.observers.append(self.memory)
        #: The program-capture recorder, set only in capture mode.
        self.capture = None
        #: The live :class:`~repro.core.replay.GraphRecorder` while a
        #: ``capture_graph()`` scope is open, else None.
        self._graph_recorder = None
        if capture_only or forced:
            from repro.core.capture import ProgramCapture

            self.capture = ProgramCapture(self)
            self.scheduler.observers.append(self.capture)
            if forced:
                _capture_registry.append(self)
        if self.sanitizer is not None:
            # Swap this runtime's core objects onto access-checked
            # subclasses — last, so constructor-time setup (which
            # happens-before any publication to worker threads) is not
            # access-checked. Stream windows follow in on_stream_create.
            self.sanitizer.instrument(self.scheduler)
            self.sanitizer.instrument(self.scheduler.graph)
            self.sanitizer.instrument(self.scheduler.failure)
            self.sanitizer.instrument(self.memory)

    # -- lifecycle ------------------------------------------------------------

    def _check_init(self) -> None:
        if not self._initialized:
            raise HStreamsNotInitialized("runtime has been finalized")

    def fini(self) -> None:
        """Tear the runtime down. Waits for in-flight work first.

        A run failure the caller has *not* yet observed still raises
        here — errors are never silently swallowed — but one that
        already surfaced at an earlier synchronization is not raised a
        second time, so ``fini`` in a ``finally:`` (or context-manager
        exit) after handling the error is safe. Backend resources are
        released either way.
        """
        if not self._initialized:
            return
        failure = self.scheduler.failure
        _, already_seen = failure.snapshot()
        try:
            try:
                self.backend.wait_all()
            except BaseException as exc:
                errors, _ = failure.snapshot()
                if not (already_seen and errors and exc is errors[0]):
                    raise
        finally:
            self.backend.close()
            if self.sanitizer is not None:
                self.sanitizer.close()
            self._initialized = False

    @property
    def initialized(self) -> bool:
        """Whether the runtime is live (``fini()`` not yet called)."""
        return self._initialized

    @property
    def failed(self) -> bool:
        """Whether any action failed (and the failure was not cleared)."""
        return self.scheduler.failure.failed

    def failure_errors(
        self, namespace: Optional[str] = None
    ) -> List[BaseException]:
        """Every recorded action error, in completion order.

        With ``namespace`` given, only that namespace's errors (a
        tenant's private failure ledger). ``None`` returns the full
        ledger across all namespaces, classic streams included.
        """
        if namespace is None:
            return self.scheduler.failure.snapshot()[0]
        return self.scheduler.failure.errors_in(namespace)

    def clear_failure(
        self, namespace: Optional[str] = None
    ) -> List[BaseException]:
        """Acknowledge and reset the run's failure state.

        Drops the error ledger and the poison tombstones: subsequent
        synchronizations stop re-raising, and new enqueues no longer
        cancel against past failures. Returns the dropped errors.
        With ``namespace`` given, only that namespace's errors and
        tombstones are dropped — other tenants' state is untouched.
        """
        self._check_init()
        return self.scheduler.clear_failure(namespace)

    def set_namespace_quota(self, namespace: str, limit: Optional[int]) -> None:
        """Cap a namespace's in-flight actions at ``limit``.

        Enqueues into streams of ``namespace`` raise
        :class:`~repro.core.errors.HStreamsQuotaExceeded` while the cap
        is reached; ``None`` removes the cap. This is the scheduler-side
        backstop behind the service tier's admission control.
        """
        self._check_init()
        self.scheduler.set_namespace_quota(namespace, limit)

    def namespace_inflight(self, namespace: str) -> int:
        """Actions currently in flight for one namespace."""
        return self.scheduler.namespace_inflight(namespace)

    def __enter__(self) -> "HStreams":
        return self

    def __exit__(self, *exc) -> None:
        self.fini()

    # -- domains ---------------------------------------------------------------

    @property
    def ndomains(self) -> int:
        """Number of discoverable domains (host + cards)."""
        return len(self.domains)

    def domain(self, index: int) -> DomainInfo:
        """Domain by index; 0 is the host."""
        try:
            return self.domains[index]
        except IndexError:
            raise HStreamsNotFound(
                f"no domain {index}; platform has {self.ndomains}"
            ) from None

    @property
    def card_domains(self) -> List[DomainInfo]:
        """All non-host domains."""
        return self.domains[1:]

    # -- streams ----------------------------------------------------------------

    def stream_create(
        self,
        domain: int = 0,
        ncores: Optional[int] = None,
        cpu_mask: Optional[Sequence[int]] = None,
        strict_fifo: bool = False,
        name: str = "",
        namespace: str = "",
    ) -> Stream:
        """Create a stream whose sink is ``domain`` (the "core API" path).

        Provide either ``ncores`` (the runtime picks the next free cores,
        wrapping for oversubscription) or an explicit ``cpu_mask``.
        Omitting both binds the whole domain to the stream.

        A non-empty ``namespace`` places the stream in an isolated
        failure/quota scope (the multi-tenant service model): its
        failures only poison and only surface to waits scoped to the
        same namespace, ``set_namespace_quota`` bounds its in-flight
        work, and ``metrics()["namespaces"]`` reports it separately.
        """
        self._check_init()
        dom = self.domain(domain)
        if cpu_mask is not None:
            if ncores is not None:
                raise HStreamsBadArgument("give ncores or cpu_mask, not both")
            mask = tuple(int(c) for c in cpu_mask)
            for c in mask:
                if not (0 <= c < dom.device.total_cores):
                    raise HStreamsBadArgument(
                        f"cpu {c} outside domain {domain}'s 0.."
                        f"{dom.device.total_cores - 1}"
                    )
        else:
            mask = dom.take_cores(ncores if ncores is not None else dom.device.total_cores)
        stream = Stream(
            self._next_stream_id,
            domain,
            mask,
            strict_fifo=strict_fifo,
            name=name,
            namespace=namespace,
        )
        self._next_stream_id += 1
        self.streams.append(stream)
        self.backend.make_stream(stream)
        self.scheduler.on_stream_create(stream)
        return stream

    def app_init(
        self,
        streams_per_domain: int,
        oversubscription: int = 1,
        use_host: bool = False,
        strict_fifo: bool = False,
    ) -> List[Stream]:
        """The "app API" convenience: evenly divide resources into streams.

        Partitions each card domain (plus the host when ``use_host``) into
        ``streams_per_domain`` equal-width places and creates
        ``oversubscription`` logical streams per place. Returns the new
        streams, grouped card-major in creation order.
        """
        self._check_init()
        if streams_per_domain < 1 or oversubscription < 1:
            raise HStreamsBadArgument(
                "streams_per_domain and oversubscription must be >= 1"
            )
        targets = [d for d in self.domains if use_host or not d.is_host]
        if not targets:
            raise HStreamsNotFound("no target domains for app_init")
        created: List[Stream] = []
        for dom in targets:
            width = dom.device.total_cores // streams_per_domain
            if width < 1:
                raise HStreamsBadArgument(
                    f"domain {dom.index} has {dom.device.total_cores} cores; "
                    f"cannot make {streams_per_domain} streams"
                )
            for place in range(streams_per_domain):
                base = place * width
                mask = tuple(range(base, base + width))
                for _ in range(oversubscription):
                    stream = Stream(
                        self._next_stream_id,
                        dom.index,
                        mask,
                        strict_fifo=strict_fifo,
                    )
                    self._next_stream_id += 1
                    self.streams.append(stream)
                    self.backend.make_stream(stream)
                    self.scheduler.on_stream_create(stream)
                    created.append(stream)
        return created

    def streams_in(self, domain: int) -> List[Stream]:
        """All streams whose sink is ``domain``."""
        return [s for s in self.streams if s.domain == domain]

    def stream_destroy(self, stream: Stream, raise_failures: bool = True) -> None:
        """Destroy a stream: drain it, then release its backend state.

        Unlike CUDA, destruction is optional housekeeping — streams are
        plain integers and the runtime reclaims everything at ``fini()``
        — but long-lived processes that churn through streams (the
        Abaqus solver pattern) can return resources early.

        With ``raise_failures=False`` the drain barrier does not
        re-raise the (namespace's) pending failure ledger: cleanup
        paths that already observed or recorded the errors — the
        service tier closing a tenant session — tear the stream down
        regardless. Callers on this path must ensure the stream is
        quiescent first (a raising ledger short-circuits the wait).
        """
        self._check_init()
        if stream not in self.streams:
            raise HStreamsNotFound(f"stream {stream.id} is not active")
        if raise_failures:
            self.stream_synchronize(stream)
        else:
            try:
                self.stream_synchronize(stream)
            except Exception:
                pass
        self.backend.on_stream_destroy(stream)
        self.scheduler.on_stream_destroy(stream)
        self.streams.remove(stream)

    # -- buffers -----------------------------------------------------------------

    def buffer_create(
        self,
        nbytes: Optional[int] = None,
        array: Optional[np.ndarray] = None,
        name: str = "",
        mem_type: MemType = MemType.DDR,
        domains: Sequence[int] = (),
        read_only: bool = False,
    ) -> Buffer:
        """Create a buffer in the proxy address space.

        Pass ``array`` to wrap caller memory as the host instance (thread
        backend: zero-copy), or ``nbytes`` for a size-only buffer. Listing
        ``domains`` instantiates eagerly there; otherwise instantiation is
        lazy at first use.
        """
        self._check_init()
        if (nbytes is None) == (array is None):
            raise HStreamsBadArgument("give exactly one of nbytes or array")
        buf = Buffer(
            self.proxy_space,
            nbytes=nbytes if nbytes is not None else 0,
            name=name,
            mem_type=mem_type,
            read_only=read_only,
            host_array=array,
        )
        self.buffers.append(buf)
        self.scheduler.notify_buffer("create", buf)
        for d in {0, *domains}:
            self._ensure_instance(buf, d)
        return buf

    def wrap(self, array: np.ndarray, name: str = "") -> Buffer:
        """Shorthand for wrapping an existing numpy array."""
        return self.buffer_create(array=array, name=name)

    def buffer_destroy(self, buf: Buffer) -> None:
        """Release a buffer's instances and proxy range.

        In-flight actions that still reference the buffer make the
        destroy raise :class:`~repro.core.errors.HStreamsBusy` —
        destroying it would yank instances out from under running
        tasks; synchronize the streams touching it first.
        """
        self._check_init()
        self.memory.destroy(buf)
        buf.destroy()
        self.buffers.remove(buf)
        self.scheduler.notify_buffer("destroy", buf)

    def buffer_evict(self, buf: Buffer, domain: int) -> None:
        """Release a buffer's instance in one (non-host) domain.

        This is how a bounded working set cycles card memory when the
        full tile set exceeds the 16 GB card (the reference codes do
        exactly this to reach n=30000 in Fig. 6) — or, with
        ``eviction_policy="lru"``, what the memory manager does
        automatically under capacity pressure. In-flight actions that
        still reference the instance make the eviction raise
        :class:`~repro.core.errors.HStreamsBusy` — synchronize the
        streams touching it first.
        """
        self._check_init()
        self.memory.evict(buf, domain)

    def _ensure_instance(self, buf: Buffer, domain: int) -> None:
        self.memory.instantiate(buf, domain)

    # -- kernels -------------------------------------------------------------------

    def register_kernel(
        self,
        name: str,
        fn: Optional[Callable] = None,
        cost_fn: Optional[Callable[..., KernelCost]] = None,
    ) -> None:
        """Register a sink-side kernel by name.

        ``fn(*args)`` runs under the thread backend with operand arguments
        resolved to numpy views in the sink domain. ``cost_fn(*args)``
        returns a :class:`KernelCost` for the sim backend; it receives the
        same argument list with operands left as-is.
        """
        self._check_init()
        self._kernels[name] = KernelSpec(name, fn=fn, cost_fn=cost_fn)

    def kernel(self, name: str) -> KernelSpec:
        """Look up a registered kernel."""
        try:
            return self._kernels[name]
        except KeyError:
            raise HStreamsNotFound(f"no kernel registered as {name!r}") from None

    # -- enqueue --------------------------------------------------------------------

    @staticmethod
    def _collect_operands(args: Sequence, extra: Sequence) -> Tuple[Operand, ...]:
        ops: List[Operand] = []
        for item in tuple(args) + tuple(extra):
            if isinstance(item, Operand):
                ops.append(item)
            elif isinstance(item, Buffer):
                ops.append(item.all_inout())
        for op in ops:
            if op.mode.writes and op.buffer.read_only:
                raise HStreamsBadArgument(
                    f"buffer {op.buffer.name!r} is read-only; writing "
                    "operands are not allowed (declare the usage property "
                    "accordingly, paper §II)"
                )
        return tuple(ops)

    def enqueue_compute(
        self,
        stream: Stream,
        kernel: str,
        args: Sequence = (),
        operands: Sequence = (),
        cost: Optional[KernelCost] = None,
        label: str = "",
    ) -> HEvent:
        """Enqueue a compute task into ``stream``.

        Operand arguments (``Operand`` or bare ``Buffer`` entries in
        ``args``/``operands``) define the dependence footprint. The task
        expands across all cores in the stream's sink mask.
        """
        self._check_init()
        spec = self.kernel(kernel)
        ops = self._collect_operands(args, operands)
        if cost is None and spec.cost_fn is not None:
            cost = spec.cost_fn(*args)
        action = Action(
            kind=ActionKind.COMPUTE,
            stream=stream,
            operands=ops,
            kernel=kernel,
            args=tuple(args),
            cost=cost,
            label=label,
        )
        for op in ops:
            self._ensure_instance(op.buffer, stream.domain)
        return self._enqueue(action)

    def enqueue_xfer(
        self,
        stream: Stream,
        operand: Union[Operand, Buffer],
        direction: XferDirection = XferDirection.SRC_TO_SINK,
        label: str = "",
    ) -> HEvent:
        """Enqueue a data transfer between the source (host) and the sink.

        In host-as-target streams the source and sink instances alias, so
        the transfer is optimized away (paper §V) — it completes
        immediately but still participates in dependence ordering.
        """
        self._check_init()
        if isinstance(operand, Buffer):
            operand = operand.all(
                OperandMode.OUT
                if direction is XferDirection.SRC_TO_SINK
                else OperandMode.IN
            )
        else:
            mode = (
                OperandMode.OUT
                if direction is XferDirection.SRC_TO_SINK
                else OperandMode.IN
            )
            # Rebuild with only the mode changed: dtype/shape must survive
            # so sink-side views keep the caller's element type.
            operand = _dc_replace(operand, mode=mode)
        action = Action(
            kind=ActionKind.XFER,
            stream=stream,
            operands=(operand,),
            direction=direction,
            nbytes=operand.nbytes,
            label=label,
        )
        self._ensure_instance(operand.buffer, 0)
        self._ensure_instance(operand.buffer, stream.domain)
        return self._enqueue(action)

    def event_stream_wait(
        self,
        stream: Stream,
        events: Sequence[HEvent],
        operands: Optional[Sequence] = None,
        label: str = "",
    ) -> HEvent:
        """Enqueue a synchronization action that waits on ``events``.

        With ``operands`` given, only subsequent actions touching those
        ranges are ordered after the wait; with ``operands=None`` the wait
        is a full barrier in its stream. This is the cross-stream
        dependence mechanism (there are no implicit dependences between
        streams, paper §II).
        """
        self._check_init()
        ops = self._collect_operands((), operands or ())
        action = Action(
            kind=ActionKind.SYNC,
            stream=stream,
            operands=ops,
            label=label,
            barrier=operands is None,
        )
        action.deps.extend(events)
        return self._enqueue(action)

    def _enqueue(self, action: Action) -> HEvent:
        assert action.stream is not None
        if action.kind is ActionKind.COMPUTE:
            self.stats["computes"] += 1
        elif action.kind is ActionKind.XFER:
            self.stats["transfers"] += 1
            self.stats["bytes_transferred"] += action.nbytes
        else:
            self.stats["syncs"] += 1
        self.backend.advance_host(self.config.enqueue_overhead_s)
        return self.scheduler.enqueue(action)

    # -- collectives ----------------------------------------------------------------

    def _collective_stream(self, domain: int) -> Stream:
        """The planner's lazily-created stream sinking in ``domain``."""
        stream = self._coll_streams.get(domain)
        if stream is not None and stream in self.streams:
            return stream
        stream = self.stream_create(domain=domain, ncores=1, name=f"coll-d{domain}")
        self._coll_streams[domain] = stream
        return stream

    def _collective_scratch(self, buf: Buffer, domain: int, nbytes: int) -> Buffer:
        """Cached staging buffer for ``buf``'s contribution from ``domain``."""
        key = (buf.uid, domain, nbytes)
        scratch = self._coll_scratch.get(key)
        if scratch is not None and scratch in self.buffers:
            return scratch
        scratch = self.buffer_create(
            nbytes=nbytes, name=f"coll-scratch:{buf.name or buf.uid}:d{domain}"
        )
        self._coll_scratch[key] = scratch
        return scratch

    def broadcast(self, buf: Buffer, domains: Sequence[int], **kw):
        """Replicate a host buffer range to every domain in ``domains``.

        Lowers to chunked transfer actions over a schedule
        (``schedule=`` "auto", "serial", "ring", "multicast", "tree";
        see :mod:`repro.core.collectives`) instead of a loop of
        ``enqueue_xfer``. Returns a
        :class:`~repro.core.collectives.CollectiveResult` whose
        ``arrivals[d]`` event fires once domain ``d`` holds the payload.
        Accepts ``offset``/``nbytes`` (range), ``chunk_bytes``,
        ``streams`` (per-domain override dict), ``after`` (events or
        actions the collective must follow), and ``label``.
        """
        self._check_init()
        from repro.core.collectives import plan_broadcast

        return plan_broadcast(self, buf, domains, **kw)

    def scatter(self, buf: Buffer, domains: Sequence[int], **kw):
        """Distribute contiguous slices of a host range, one per domain.

        ``parts={domain: (offset, nbytes)}`` overrides the even split.
        Returns a :class:`~repro.core.collectives.CollectiveResult`.
        """
        self._check_init()
        from repro.core.collectives import plan_scatter

        return plan_scatter(self, buf, domains, **kw)

    def gather(self, buf: Buffer, domains: Sequence[int], **kw):
        """Pull each domain's slice of a range back to the host
        (:meth:`scatter`'s inverse). Returns a
        :class:`~repro.core.collectives.CollectiveResult`; its
        ``arrivals[d]`` fires when ``d``'s slice has landed home.
        """
        self._check_init()
        from repro.core.collectives import plan_gather

        return plan_gather(self, buf, domains, **kw)

    def reduce(self, buf: Buffer, domains: Sequence[int], **kw):
        """Combine each domain's instance of a range into the host's.

        ``op=`` "sum" (default), "prod", "max", or "min", elementwise
        over ``dtype`` (default float64). Returns a
        :class:`~repro.core.collectives.CollectiveResult` whose
        ``arrivals[0]`` fires once the host holds the combined value.
        """
        self._check_init()
        from repro.core.collectives import plan_reduce

        return plan_reduce(self, buf, domains, **kw)

    def allreduce(self, buf: Buffer, domains: Sequence[int], **kw):
        """:meth:`reduce` into the host, then :meth:`broadcast` back out."""
        self._check_init()
        from repro.core.collectives import plan_allreduce

        return plan_allreduce(self, buf, domains, **kw)

    # -- graph capture & replay ------------------------------------------------------

    @property
    def capturing(self) -> bool:
        """Whether a :meth:`capture_graph` scope is currently open.

        Layers that elide work when a producer polls complete (the
        linalg dataflow helper) must check this and behave as on a cold
        machine while capturing, or the template would be missing edges.
        """
        return self._graph_recorder is not None

    @contextlib.contextmanager
    def capture_graph(self):
        """Record every action enqueued in this scope into a template.

        Capture is *warm*: the recorded actions still execute normally,
        so the scope costs one ordinary iteration of the program. Yields
        the :class:`~repro.core.replay.GraphTemplate`, finalized when the
        scope exits cleanly; see :meth:`replay`. Scopes do not nest, and
        host synchronization, buffer lifecycle, and stream lifecycle
        calls inside the scope raise
        :class:`~repro.core.errors.HStreamsInvalid` (a template is a pure
        action DAG over pre-existing streams and buffers).
        """
        self._check_init()
        if self._graph_recorder is not None:
            raise HStreamsInvalid("capture_graph() scopes do not nest")
        from repro.core.replay import GraphRecorder

        rec = GraphRecorder(self)
        if self.sanitizer is not None:
            self.sanitizer.instrument(rec)
        with self.scheduler._lock:
            self.scheduler.observers.append(rec)
        self._graph_recorder = rec
        try:
            yield rec.template
        finally:
            self._graph_recorder = None
            with self.scheduler._lock:
                self.scheduler.observers.remove(rec)
        # Only a clean exit finalizes: a scope that raised recorded an
        # incomplete DAG, and replaying it would be silent corruption.
        rec.template.finalized = True

    def replay(self, graph, bindings: Optional[Dict[Buffer, Buffer]] = None):
        """Re-admit a captured graph with its pre-computed dependences.

        ``graph`` is a :class:`~repro.core.replay.GraphTemplate` (which
        is instantiated here, optionally rebinding buffers via
        ``bindings``) or an already-built single-use
        :class:`~repro.core.replay.GraphInstance`. Admission goes through
        :meth:`~repro.core.scheduler.Scheduler.admit_instance`, the
        batched form of the admission pipeline's final stage: no
        dependence scan runs, the template's edges are injected directly.
        Replay does not block; the returned instance's ``events`` are
        waitable as usual, and template streams must be quiescent on
        entry (synchronize first).
        """
        self._check_init()
        from repro.core.replay import GraphInstance, GraphTemplate

        if isinstance(graph, GraphTemplate):
            instance = graph.instantiate(bindings)
        elif isinstance(graph, GraphInstance):
            if bindings is not None:
                raise HStreamsBadArgument(
                    "bindings apply at instantiation; this GraphInstance "
                    "is already bound — pass them to instantiate() or "
                    "replay the template directly"
                )
            instance = graph
        else:
            raise HStreamsBadArgument(
                f"replay() takes a GraphTemplate or GraphInstance, got "
                f"{type(graph).__name__}"
            )
        template = instance.template
        if template.runtime is not self:
            raise HStreamsInvalid(
                "graph template was captured on a different runtime; "
                "streams and buffers do not transfer"
            )
        if self._graph_recorder is not None:
            raise HStreamsInvalid("cannot replay() inside capture_graph()")
        if instance.consumed:
            raise HStreamsInvalid(
                "graph instance was already replayed; instances are "
                "single-use — instantiate() the template again"
            )
        # Quiescence preflight. The template dropped its edges to
        # pre-capture work (external_deps); requiring the involved
        # streams to be idle re-establishes that ordering wholesale.
        for stream in template.streams + [
            s for s in template.external_streams if s not in template.streams
        ]:
            if stream not in self.streams:
                raise HStreamsNotFound(
                    f"cannot replay: stream {stream.name!r} was destroyed "
                    "after capture"
                )
            if self.scheduler.pending_completions(stream):
                raise HStreamsInvalid(
                    f"cannot replay into busy stream {stream.name!r}; "
                    "synchronize it first (replay assumes pre-replay work "
                    "has completed)"
                )
        instance.consumed = True
        for key, value in template.stat_delta().items():
            self.stats[key] += value
        # One host-overhead advance per replayed batch — per-action
        # enqueue overhead is exactly what replay amortizes away.
        self.backend.advance_host(self.config.enqueue_overhead_s)
        for buf, domain in instance.instance_sites():
            self._ensure_instance(buf, domain)
        self.scheduler.admit_instance(instance)
        return instance

    # -- synchronization -----------------------------------------------------------

    def event_wait(
        self,
        events: Sequence[HEvent],
        wait_all: bool = True,
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
    ) -> None:
        """Block the source until any/all of ``events`` complete.

        Waiting on a *set* with any/all semantics saves the CPU-spinning
        the paper calls out in the CUDA comparison. Without an explicit
        ``timeout``, ``RuntimeConfig.wait_timeout_s`` applies.

        ``scope`` restricts failure surfacing to one stream namespace
        (see :meth:`stream_create`): a tenant waiting on its own events
        never observes another tenant's errors. ``None`` keeps the
        classic behavior of raising any pending run failure.
        """
        self._check_init()
        if timeout is None:
            timeout = self.config.wait_timeout_s
        self.backend.wait_events(
            list(events), wait_all=wait_all, timeout=timeout, scope=scope
        )
        self.backend.advance_host(self.config.sync_overhead_s)
        # With wait-any semantics only *some* event completed; the
        # happens-before edge to the host is the completed subset.
        observed = (
            list(events) if wait_all else [e for e in events if e.is_complete()]
        )
        self.scheduler.notify_host_sync("event_wait", events=observed)

    def stream_synchronize(
        self, stream: Stream, timeout: Optional[float] = None
    ) -> None:
        """Block until every action enqueued into ``stream`` completed.

        Without an explicit ``timeout``, ``RuntimeConfig.wait_timeout_s``
        applies. A namespaced stream's synchronization is automatically
        scoped: only failures from its own namespace surface here.
        """
        self._check_init()
        if timeout is None:
            timeout = self.config.wait_timeout_s
        scope = stream.namespace or None
        pending = self.scheduler.pending_completions(stream)
        if pending:
            self.backend.wait_events(
                pending, wait_all=True, timeout=timeout, scope=scope
            )
        else:
            # Nothing in flight, but an unacknowledged failure must
            # still surface at every synchronization point.
            self.scheduler.failure.raise_pending(namespace=scope)
        self.backend.advance_host(self.config.sync_overhead_s)
        self.scheduler.notify_host_sync("stream_synchronize", stream=stream)

    def thread_synchronize(self, timeout: Optional[float] = None) -> None:
        """Block until all actions in all streams completed.

        Without an explicit ``timeout``, ``RuntimeConfig.wait_timeout_s``
        applies.
        """
        self._check_init()
        if timeout is None:
            timeout = self.config.wait_timeout_s
        self.backend.wait_all(timeout=timeout)
        self.backend.advance_host(self.config.sync_overhead_s)
        self.scheduler.notify_host_sync("thread_synchronize")

    # -- time & observability ----------------------------------------------------------

    def elapsed(self) -> float:
        """Source-side clock: virtual seconds (sim) or wall seconds (thread)."""
        return self.backend.now()

    def metrics(self) -> Dict[str, Any]:
        """Scheduling observability snapshot (see ``Scheduler.metrics``).

        Reports per-action lifecycle timing (dependence-stall,
        dispatch-stall, execution), per-stream queue depths, and
        throughput counters — identical structure under both backends,
        with timestamps on the owning backend's clock. The ``memory``
        key adds the memory subsystem's view: per-domain capacity
        accounting, transfer-elision and eviction counters, and (sim
        backend) COI buffer-pool hit rates — see
        :meth:`repro.core.memory.MemoryManager.metrics`.
        """
        self._check_init()
        # One lock scope for both blocks: the scheduler and memory
        # snapshots describe the same instant, so a reader thread never
        # sees memory counters from after actions the scheduler block
        # has not retired yet (or vice versa).
        with self.scheduler._lock:
            out = self.scheduler.metrics()
            out["memory"] = self.memory.metrics()
        fabric = getattr(self.backend, "fabric_metrics", None)
        if fabric is not None:
            # Sim backend only: interconnect occupancy/queueing counters
            # (engine state is source-thread-owned — no lock needed).
            out["fabric"] = fabric()
        backend_block = getattr(self.backend, "backend_metrics", None)
        if backend_block is not None:
            # Process backend only: worker/IPC/segment counters (guarded
            # by the backend's own leaf lock — no scheduler lock needed).
            out["backend"] = backend_block()
        return out


def _make_backend(name: str):
    """Backend factory by name ("thread", "process", or "sim").

    ``REPRO_BACKEND=process`` in the environment upgrades ``"thread"``
    requests to the process backend. Both are real-execution backends
    with identical observable semantics, so this is how CI (and local
    runs) drive the thread-labeled parity suites — the fault×policy
    matrix, the Hypothesis dep-set oracle, the failure/timeout tests —
    through the process backend unchanged. Explicit ``"sim"`` requests
    are never overridden: virtual time is part of what those tests
    assert.
    """
    if name == "thread" and _os.environ.get("REPRO_BACKEND") == "process":
        name = "process"
    if name == "thread":
        from repro.core.thread_backend import ThreadBackend

        return ThreadBackend()
    if name == "process":
        from repro.core.process_backend import ProcessBackend

        return ProcessBackend()
    if name == "sim":
        from repro.core.sim_backend import SimBackend

        return SimBackend()
    raise HStreamsBadArgument(
        f"unknown backend {name!r}; use 'thread', 'process', or 'sim'"
    )
