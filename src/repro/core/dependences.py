"""Intra-stream dependence analysis.

The FIFO order of a stream plus the memory operands of its actions
*implicitly* specify the actual dependences (paper §II): a later action
depends on an earlier one iff their operand ranges conflict (overlap with
at least one writer). Everything else is free to execute and complete out
of order — the behaviour that distinguishes hStreams from CUDA Streams'
strict FIFO execution.

A stream may instead be created *strict* (``strict_fifo=True``), in which
case every action depends on its immediate predecessor; the CUDA-Streams
comparator model is built from such streams.
"""

from __future__ import annotations

from typing import List

from repro.core.actions import Action

__all__ = ["StreamWindow"]


class StreamWindow:
    """Tracks the not-yet-completed actions of one stream.

    ``deps_for`` computes the set of earlier in-flight actions a new
    action must wait for; completed predecessors impose no constraint and
    are pruned lazily.
    """

    def __init__(self, strict_fifo: bool = False):
        self.strict_fifo = strict_fifo
        self._recent: List[Action] = []
        self.enqueued_count = 0

    def _prune(self) -> None:
        self._recent = [
            a
            for a in self._recent
            if a.completion is None or not a.completion.is_complete()
        ]

    def deps_for(self, action: Action) -> List[Action]:
        """Earlier in-flight actions that ``action`` must follow.

        For a strict stream: just the most recent action. Otherwise: every
        in-flight predecessor with a conflicting operand, *cut off* at the
        newest conflicting barrier (anything older is already ordered
        through it transitively — barriers conflict with everything).
        """
        self._prune()
        if self.strict_fifo:
            return [self._recent[-1]] if self._recent else []
        deps: List[Action] = []
        for prev in reversed(self._recent):
            if prev.conflicts_with(action):
                deps.append(prev)
                if prev.barrier:
                    break  # the barrier already orders everything older
        deps.reverse()
        return deps

    def add(self, action: Action) -> None:
        """Record a newly enqueued action."""
        self._recent.append(action)
        self.enqueued_count += 1

    @property
    def in_flight(self) -> int:
        """Number of tracked, possibly-incomplete actions."""
        self._prune()
        return len(self._recent)

    def pending_completions(self) -> List:
        """Completion events of the still-incomplete actions."""
        self._prune()
        return [
            a.completion
            for a in self._recent
            if a.completion is not None and not a.completion.is_complete()
        ]
