"""Intra-stream dependence analysis: FIFO policies over a stream view.

The FIFO order of a stream plus the memory operands of its actions
*implicitly* specify the actual dependences (paper §II): a later action
depends on an earlier one iff their operand ranges conflict (overlap with
at least one writer). Everything else is free to execute and complete out
of order — the behaviour that distinguishes hStreams from CUDA Streams'
strict FIFO execution.

Which predecessors an action must wait for is a *policy* applied by the
scheduler, not a property of the window itself:

* :class:`RelaxedPolicy` — operand-conflict relaxation (hStreams);
* :class:`StrictFifoPolicy` — every action waits on its immediate
  predecessor (the CUDA-Streams comparator is built from streams using
  this policy, rather than being special-cased in the dependence scan).

:class:`StreamWindow` itself is a thin per-stream view over the action
graph: the scheduler retires entries incrementally as actions complete
(O(1) per completion), so the window holds only the in-flight frontier
and never needs a full prune rescan. Used standalone (unit tests), it
falls back to lazily dropping completed entries during iteration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.actions import Action

__all__ = ["DependencePolicy", "RelaxedPolicy", "StrictFifoPolicy", "StreamWindow"]


class DependencePolicy:
    """How a stream orders a new action against its in-flight history."""

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        """Earlier in-flight actions ``action`` must follow."""
        raise NotImplementedError


class RelaxedPolicy(DependencePolicy):
    """hStreams semantics: depend only on conflicting predecessors.

    The scan walks newest-first and *cuts off* at the newest conflicting
    barrier — anything older is already ordered through it transitively
    (barriers conflict with everything).
    """

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        deps: List[Action] = []
        for prev in window.live_newest_first():
            if prev.conflicts_with(action):
                deps.append(prev)
                if prev.barrier:
                    break  # the barrier already orders everything older
        deps.reverse()
        return deps


class StrictFifoPolicy(DependencePolicy):
    """CUDA-Streams semantics: depend on the immediate predecessor.

    Ordering is transitive through the chain, so one edge per action
    reproduces full in-order execution.
    """

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        for prev in window.live_newest_first():
            return [prev]
        return []


class StreamWindow:
    """Per-stream view over the in-flight actions of the shared graph.

    The scheduler calls :meth:`retire` as each action completes, so the
    live set shrinks incrementally; ``deps_for`` then only ever scans
    genuinely in-flight work.
    """

    def __init__(
        self,
        strict_fifo: bool = False,
        policy: Optional[DependencePolicy] = None,
    ):
        self.strict_fifo = strict_fifo
        if policy is None:
            policy = StrictFifoPolicy() if strict_fifo else RelaxedPolicy()
        self.policy = policy
        #: In-flight actions by sequence number, in enqueue order.
        self._live: Dict[int, Action] = {}
        self.enqueued_count = 0
        self.retired_count = 0

    # -- maintenance ---------------------------------------------------------

    def add(self, action: Action) -> None:
        """Record a newly enqueued action."""
        self._live[action.seq] = action
        self.enqueued_count += 1

    def retire(self, action: Action) -> None:
        """Drop one completed action from the view (O(1))."""
        if self._live.pop(action.seq, None) is not None:
            self.retired_count += 1

    def live_newest_first(self) -> Iterator[Action]:
        """In-flight actions, newest first.

        Completed entries nobody retired (standalone use, without a
        scheduler) are dropped as the scan encounters them.
        """
        for seq in reversed(list(self._live)):
            action = self._live.get(seq)
            if action is None:  # retired concurrently by the scheduler
                continue
            done = action.completion is not None and action.completion.is_complete()
            if done:
                if self._live.pop(seq, None) is not None:
                    self.retired_count += 1
                continue
            yield action

    # -- queries -------------------------------------------------------------

    def deps_for(self, action: Action) -> List[Action]:
        """Earlier in-flight actions that ``action`` must follow, under
        this stream's FIFO policy."""
        return self.policy.deps_for(self, action)

    @property
    def in_flight(self) -> int:
        """Number of tracked, incomplete actions."""
        return sum(1 for _ in self.live_newest_first())

    def pending_completions(self) -> List:
        """Completion events of the still-incomplete actions."""
        pending = [
            a.completion for a in self.live_newest_first() if a.completion is not None
        ]
        pending.reverse()
        return pending
