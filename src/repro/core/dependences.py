"""Intra-stream dependence analysis: FIFO policies over a stream view.

The FIFO order of a stream plus the memory operands of its actions
*implicitly* specify the actual dependences (paper §II): a later action
depends on an earlier one iff their operand ranges conflict (overlap with
at least one writer). Everything else is free to execute and complete out
of order — the behaviour that distinguishes hStreams from CUDA Streams'
strict FIFO execution.

Which predecessors an action must wait for is a *policy* applied by the
scheduler, not a property of the window itself:

* :class:`RelaxedPolicy` — operand-conflict relaxation (hStreams);
* :class:`StrictFifoPolicy` — every action waits on its immediate
  predecessor (the CUDA-Streams comparator is built from streams using
  this policy, rather than being special-cased in the dependence scan);
* :class:`NaiveRelaxedPolicy` — the original O(window) newest-first scan,
  kept as the semantic oracle for the property tests and the before/after
  axis of the hot-path microbenchmarks.

:class:`StreamWindow` itself is a per-stream view over the action graph
that maintains a **conflict index**: live actions are bucketed by the
buffers their (cached) operand footprints touch, with barrier actions in
a dedicated lane. ``RelaxedPolicy`` therefore examines only predecessors
that touch an overlapping buffer — the enqueue cost is O(conflicts), not
O(in-flight window depth). The scheduler retires entries incrementally
as actions complete (O(1) per completion); used standalone (unit tests),
the window lazily drops completed entries as scans encounter them.

The window also counts its work — :attr:`StreamWindow.scan_candidates`
(predecessors examined) and :attr:`StreamWindow.scan_comparisons`
(interval compares performed) — which are the deterministic counters the
perf harness (:mod:`repro.bench.perf`) gates CI regressions on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.actions import Action
from repro.core.sync import caller_locked, guarded_by

__all__ = [
    "DependencePolicy",
    "NaiveRelaxedPolicy",
    "RelaxedPolicy",
    "StrictFifoPolicy",
    "StreamWindow",
]


class DependencePolicy:
    """How a stream orders a new action against its in-flight history."""

    __slots__ = ()

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        """Earlier in-flight actions ``action`` must follow."""
        raise NotImplementedError


class RelaxedPolicy(DependencePolicy):
    """hStreams semantics: depend only on conflicting predecessors.

    The scan *cuts off* at the newest conflicting barrier — anything
    older is already ordered through it transitively (barriers conflict
    with everything). On a :class:`StreamWindow` the scan goes through
    the conflict index (O(conflicts)); on any other window-like object
    (e.g. the analyzer's shadow windows) it falls back to the naive
    newest-first walk, which keeps the semantics in one place.
    """

    __slots__ = ()

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        scan = getattr(window, "conflict_scan", None)
        if scan is not None:
            return scan(action)
        return _naive_scan(window, action)


class NaiveRelaxedPolicy(DependencePolicy):
    """The pre-index O(window) scan, byte-for-byte the old behaviour.

    Exists as the oracle the conflict index is verified against (the
    Hypothesis property test) and as the "before" side of the hot-path
    microbenchmarks. Not used by any production stream.
    """

    __slots__ = ()

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        return _naive_scan(window, action)


def _naive_scan(window: "StreamWindow", action: Action) -> List[Action]:
    """Newest-first full-window scan (the original RelaxedPolicy)."""
    deps: List[Action] = []
    counting = isinstance(window, StreamWindow)
    for prev in window.live_newest_first():
        if counting:
            window.scan_candidates += 1
            window.scan_comparisons += max(
                1, len(prev.footprint) * len(action.footprint)
            )
        if prev.conflicts_with(action):
            deps.append(prev)
            if prev.barrier:
                break  # the barrier already orders everything older
    deps.reverse()
    return deps


class StrictFifoPolicy(DependencePolicy):
    """CUDA-Streams semantics: depend on the immediate predecessor.

    Ordering is transitive through the chain, so one edge per action
    reproduces full in-order execution.
    """

    __slots__ = ()

    def deps_for(self, window: "StreamWindow", action: Action) -> List[Action]:
        for prev in window.live_newest_first():
            return [prev]
        return []


@guarded_by("_lock", "_live", "_by_buffer", "_barriers")
class StreamWindow:
    """Per-stream view over the in-flight actions of the shared graph.

    Maintains the conflict index: ``_by_buffer`` buckets live non-barrier
    actions by the buffer uids their footprints touch; ``_barriers`` is
    the dedicated barrier lane (barriers conflict with everything, so
    they never belong in a per-buffer bucket). ``_live`` keeps the full
    in-flight set in enqueue order for the strict policy, barrier
    enqueues, and ``pending_completions``.

    The scheduler calls :meth:`retire` as each action completes, so the
    live set shrinks incrementally; standalone, completed entries are
    dropped lazily as scans encounter them. :attr:`in_flight` is a
    maintained O(1) counter either way — it observes a completion at
    retirement or at the next scan that touches the entry, never by
    polling every completion event.

    Locking: under a scheduler, every mutation happens inside the
    scheduler lock (``_lock`` is wired to it when rtsan is enabled —
    the ``caller_locked`` contracts below are what the static and
    dynamic passes verify). Standalone windows (unit tests, benchmark
    harnesses) are single-threaded and carry ``_lock = None``.
    """

    __slots__ = (
        "strict_fifo",
        "policy",
        "_lock",
        "_live",
        "_by_buffer",
        "_barriers",
        "_in_flight",
        "enqueued_count",
        "retired_count",
        "scan_candidates",
        "scan_comparisons",
    )

    def __init__(
        self,
        strict_fifo: bool = False,
        policy: Optional[DependencePolicy] = None,
    ):
        self.strict_fifo = strict_fifo
        #: The owning scheduler's lock (wired by Scheduler.on_stream_create
        #: under rtsan); None for standalone/single-threaded windows.
        self._lock = None
        if policy is None:
            policy = StrictFifoPolicy() if strict_fifo else RelaxedPolicy()
        self.policy = policy
        #: In-flight actions by sequence number, in enqueue order.
        self._live: Dict[int, Action] = {}
        #: Conflict index: buffer uid -> {seq: action}, enqueue order.
        self._by_buffer: Dict[int, Dict[int, Action]] = {}
        #: Barrier lane: {seq: barrier action}, enqueue order.
        self._barriers: Dict[int, Action] = {}
        self._in_flight = 0
        self.enqueued_count = 0
        self.retired_count = 0
        #: Predecessors examined by dependence scans (deterministic).
        self.scan_candidates = 0
        #: Interval compares performed by dependence scans (deterministic).
        self.scan_comparisons = 0

    # -- maintenance ---------------------------------------------------------

    @caller_locked("_lock")
    def add(self, action: Action) -> None:
        """Record a newly enqueued action and index its footprint."""
        self._live[action.seq] = action
        self.enqueued_count += 1
        self._in_flight += 1
        if action.barrier:
            self._barriers[action.seq] = action
        else:
            for uid, _start, _end, _writes in action.footprint:
                bucket = self._by_buffer.get(uid)
                if bucket is None:
                    bucket = self._by_buffer[uid] = {}
                bucket[action.seq] = action

    @caller_locked("_lock")
    def retire(self, action: Action) -> None:
        """Drop one completed action from the view and index (O(1))."""
        if self._live.pop(action.seq, None) is None:
            return
        self.retired_count += 1
        self._in_flight -= 1
        self._unindex(action)

    @caller_locked("_lock")
    def _unindex(self, action: Action) -> None:
        if action.barrier:
            self._barriers.pop(action.seq, None)
            return
        for uid, _start, _end, _writes in action.footprint:
            bucket = self._by_buffer.get(uid)
            if bucket is not None:
                bucket.pop(action.seq, None)
                if not bucket:
                    del self._by_buffer[uid]

    @staticmethod
    def _completed(action: Action) -> bool:
        completion = action.completion
        return completion is not None and completion.is_complete()

    @caller_locked("_lock")
    def live_newest_first(self) -> Iterator[Action]:
        """In-flight actions, newest first.

        Completed entries nobody retired (standalone use, without a
        scheduler) are dropped as the scan encounters them.
        """
        for seq in reversed(list(self._live)):
            action = self._live.get(seq)
            if action is None:  # retired concurrently by the scheduler
                continue
            if self._completed(action):
                self.retire(action)
                continue
            yield action

    # -- the conflict-indexed scan -------------------------------------------

    @caller_locked("_lock")
    def _newest_live_barrier(self) -> Optional[Action]:
        """The newest incomplete barrier, lazily dropping completed ones."""
        dead: Optional[List[Action]] = None
        found: Optional[Action] = None
        for seq in reversed(self._barriers):
            barrier = self._barriers[seq]
            if self._completed(barrier):
                if dead is None:
                    dead = []
                dead.append(barrier)
                continue
            found = barrier
            break
        if dead is not None:
            for barrier in dead:
                self.retire(barrier)
        return found

    @caller_locked("_lock")
    def conflict_scan(self, action: Action) -> List[Action]:
        """Conflicting live predecessors of ``action``, in enqueue order.

        Semantically identical to the naive newest-first scan: collect
        every incomplete predecessor whose operands conflict, cut off at
        the newest live barrier (which is itself always a dependence —
        barriers conflict with everything). The index makes the work
        proportional to the predecessors *touching the same buffers*,
        not the whole in-flight window.
        """
        barrier = self._newest_live_barrier()
        barrier_seq = barrier.seq if barrier is not None else -1

        if action.barrier:
            # A barrier orders after everything live since the previous
            # barrier: its dependence set is inherently O(window).
            deps: List[Action] = []
            for prev in self.live_newest_first():
                self.scan_candidates += 1
                self.scan_comparisons += 1
                deps.append(prev)
                if prev.barrier:
                    break
            deps.reverse()
            return deps

        found: Dict[int, Action] = {}
        dead: Optional[List[Action]] = None
        for uid, start, end, writes in action.footprint:
            bucket = self._by_buffer.get(uid)
            if not bucket:
                continue
            for seq in reversed(bucket):
                if seq <= barrier_seq:
                    break  # ordered transitively through the barrier
                if seq in found:
                    continue
                prev = bucket[seq]
                self.scan_candidates += 1
                if self._completed(prev):
                    if dead is None:
                        dead = []
                    dead.append(prev)
                    continue
                for prev_uid, prev_start, prev_end, prev_writes in prev.footprint:
                    if prev_uid != uid:
                        continue
                    self.scan_comparisons += 1
                    if (
                        (writes or prev_writes)
                        and start < prev_end
                        and prev_start < end
                    ):
                        found[seq] = prev
                        break
            if dead is not None:
                # Retire outside the bucket iteration (retire mutates it).
                for prev in dead:
                    self.retire(prev)
                dead = None
        if barrier is not None:
            found[barrier_seq] = barrier
        if not found:
            return []
        return [found[seq] for seq in sorted(found)]

    # -- queries -------------------------------------------------------------

    def deps_for(self, action: Action) -> List[Action]:
        """Earlier in-flight actions that ``action`` must follow, under
        this stream's FIFO policy."""
        return self.policy.deps_for(self, action)

    @property
    def in_flight(self) -> int:
        """Number of tracked, unretired actions (O(1) counter).

        Under a scheduler this is exact — every completion retires its
        entry. Standalone, a completed-but-unretired entry counts until
        the next scan (or an explicit :meth:`retire`) observes it.
        """
        return self._in_flight

    @caller_locked("_lock")
    def pending_completions(self) -> List:
        """Completion events of the still-incomplete actions.

        Non-mutating: completed entries are merely filtered, never
        dropped — retirement stays the scheduler's (or the lazy scans')
        job. Under a scheduler, call through
        :meth:`~repro.core.scheduler.Scheduler.pending_completions`,
        which snapshots under the lock.
        """
        return [
            a.completion
            for a in self._live.values()
            if a.completion is not None and not a.completion.is_complete()
        ]

    # -- deep checks (rtsan) --------------------------------------------------

    @caller_locked("_lock")
    def check_index(self, label: str = "window") -> List[str]:
        """Recompute the conflict index from ``_live`` and diff it.

        The invariant behind ``RelaxedPolicy``'s O(conflicts) scan: the
        indexed scan consults only the per-buffer buckets and the
        barrier lane, the naive oracle scans the live set — so if every
        live non-barrier action is bucketed under exactly its footprint
        uids, every bucket entry is live, and the barrier lane is
        exactly the live barriers, the two compute identical dependence
        sets for any probe. Under a scheduler (eager retirement) the
        equalities are strict. Returns human-readable problems; empty
        means consistent.
        """
        problems: List[str] = []
        if self._in_flight != len(self._live):
            problems.append(
                f"{label}: in_flight counter {self._in_flight} != "
                f"{len(self._live)} live entries"
            )
        if self.enqueued_count - self.retired_count != self._in_flight:
            problems.append(
                f"{label}: enqueued {self.enqueued_count} - retired "
                f"{self.retired_count} != in_flight {self._in_flight}"
            )
        live_barriers = {s for s, a in self._live.items() if a.barrier}
        if set(self._barriers) != live_barriers:
            problems.append(
                f"{label}: barrier lane {sorted(self._barriers)} != live "
                f"barriers {sorted(live_barriers)}"
            )
        expected: Dict[int, set] = {}
        for seq, action in self._live.items():
            if action.barrier:
                continue
            for uid, _start, _end, _writes in action.footprint:
                expected.setdefault(uid, set()).add(seq)
        actual = {uid: set(bucket) for uid, bucket in self._by_buffer.items()}
        if actual != expected:
            for uid in sorted(set(actual) | set(expected)):
                a, e = actual.get(uid, set()), expected.get(uid, set())
                if a != e:
                    problems.append(
                        f"{label}: buffer {uid} bucket {sorted(a)} != "
                        f"recomputed {sorted(e)}"
                    )
        return problems
