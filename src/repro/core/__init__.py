"""The hStreams core library: the paper's primary contribution.

Three abstractions (paper §II):

* :class:`~repro.core.runtime.DomainInfo` — a *domain* is a set of compute
  and storage resources sharing coherent memory (the host, one KNC card).
* :class:`~repro.core.stream.Stream` — a FIFO task queue whose *source*
  endpoint enqueues actions and whose *sink* endpoint (a domain plus CPU
  mask) executes them. Actions may execute **out of order** whenever their
  memory operands do not overlap; the FIFO semantic is never violated.
* :class:`~repro.core.buffer.Buffer` — memory encapsulated in a unified
  *source proxy address space* with per-domain physical instantiations and
  automatic operand address translation.

The scheduling logic is backend-independent: the **thread backend** really
executes Python/numpy tasks on worker threads (per-domain address spaces,
real copies for transfers); the **process backend** runs one worker
process per domain over shared-memory buffer instances, so CPU-bound
kernels on different domains overlap past the GIL; the **sim backend**
drives a discrete-event engine with calibrated device models so the
paper's performance figures can be regenerated.
"""

from repro.core.actions import Action, ActionKind, Operand, OperandMode, XferDirection
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.collectives import REDUCE_OPS, SCHEDULES, CollectiveResult
from repro.core.errors import (
    HStreamsError,
    HStreamsBackendDied,
    HStreamsBadArgument,
    HStreamsCancelled,
    HStreamsInvalid,
    HStreamsNotFound,
    HStreamsNotInitialized,
    HStreamsOutOfMemory,
    HStreamsTimedOut,
    is_transient,
    mark_transient,
)
from repro.core.events import HEvent
from repro.core.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    inject_faults,
)
from repro.core.properties import MemType, RuntimeConfig
from repro.core.replay import GraphInstance, GraphTemplate
from repro.core.runtime import DomainInfo, HStreams
from repro.core.stream import Stream

__all__ = [
    "Action",
    "ActionKind",
    "Operand",
    "OperandMode",
    "XferDirection",
    "Buffer",
    "ProxyAddressSpace",
    "CollectiveResult",
    "SCHEDULES",
    "REDUCE_OPS",
    "HStreamsError",
    "HStreamsBackendDied",
    "HStreamsBadArgument",
    "HStreamsCancelled",
    "HStreamsInvalid",
    "HStreamsNotFound",
    "HStreamsNotInitialized",
    "HStreamsOutOfMemory",
    "HStreamsTimedOut",
    "is_transient",
    "mark_transient",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "inject_faults",
    "GraphInstance",
    "GraphTemplate",
    "HEvent",
    "MemType",
    "RuntimeConfig",
    "DomainInfo",
    "HStreams",
    "Stream",
]
