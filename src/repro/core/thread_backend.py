"""Thread backend: real execution of hStreams actions.

This backend makes the runtime a genuinely usable library: registered
Python kernels execute on worker threads with operand arguments resolved
to numpy views in the sink domain's address space, and transfers really
copy bytes between per-domain instances.

Mapping of the paper's resources:

* each stream's compute slot is one single-worker executor — compute
  tasks in a stream serialize (the sink's cores run one task at a time)
  but may start in *readiness* order, i.e. out of FIFO order when
  operands don't conflict;
* transfers run on a separate DMA-like worker pool, so they overlap with
  compute exactly as PCIe DMA engines do;
* per-domain address spaces are separate numpy allocations; the host
  instance of a wrapped array is the caller's own memory (zero-copy), so
  host-as-target transfers alias away.

The backend is a pure executor: dependence tracking, readiness dispatch,
and completion propagation belong to the shared
:class:`~repro.core.scheduler.Scheduler`, which only hands this backend
actions whose dependences are already satisfied. Kernel exceptions do
not deadlock the runtime: the failing action still completes (releasing
its dependents), and the first error re-raises on the next
synchronization.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

import numpy as np

from repro.core.actions import Action, ActionKind, Operand, XferDirection
from repro.core.backend import Backend
from repro.core.buffer import Buffer
from repro.core.errors import HStreamsInternalError, HStreamsTimedOut
from repro.core.events import HEvent

__all__ = ["ThreadBackend"]

_ANY_POLL_S = 5e-5  # poll period for wait-any


class ThreadBackend(Backend):
    """Real-execution backend on worker threads."""

    def __init__(self, xfer_workers: int = 4):
        if xfer_workers < 1:
            raise ValueError("need at least one transfer worker")
        self._xfer_workers = xfer_workers

    # -- lifecycle -------------------------------------------------------------

    def attach(self, runtime) -> None:
        self.runtime = runtime
        self._lock = threading.Lock()
        self._stream_pools: Dict[int, ThreadPoolExecutor] = {}
        self._xfer_pool = ThreadPoolExecutor(
            max_workers=self._xfer_workers, thread_name_prefix="hstr-xfer"
        )
        self._t0 = time.perf_counter()
        self._error: Optional[BaseException] = None

    def close(self) -> None:
        for pool in self._stream_pools.values():
            pool.shutdown(wait=True)
        self._xfer_pool.shutdown(wait=True)

    # -- handles & events --------------------------------------------------------

    def make_handle(self) -> threading.Event:
        return threading.Event()

    def event_done(self, event: HEvent) -> bool:
        return event.handle.is_set()

    def signal_completion(self, event: HEvent, when: float) -> None:
        event.handle.set()

    # -- provisioning --------------------------------------------------------------

    def make_stream(self, stream) -> None:
        self._stream_pools[stream.id] = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"hstr-{stream.name}"
        )

    def on_stream_destroy(self, stream) -> None:
        pool = self._stream_pools.pop(stream.id, None)
        if pool is not None:
            pool.shutdown(wait=True)

    def make_instance(self, buf: Buffer, domain: int) -> np.ndarray:
        if domain == 0 and buf.host_array is not None:
            return buf.host_array.view(np.uint8).reshape(-1)
        return np.zeros(buf.nbytes, dtype=np.uint8)

    # -- execution ------------------------------------------------------------------

    def execute(self, action: Action) -> None:
        """Dispatch a dependence-free action onto its worker pool.

        Compute and sync actions go to the stream's single worker (the
        sink's compute slot); transfers ride the DMA-like pool so they
        overlap with compute.
        """
        assert action.stream is not None
        if action.kind is ActionKind.XFER:
            self._xfer_pool.submit(self._run, action)
        else:
            self._stream_pools[action.stream.id].submit(self._run, action)

    def _run(self, action: Action) -> None:
        scheduler = self.runtime.scheduler
        start = time.perf_counter() - self._t0
        scheduler.on_start(action, when=start)
        error: Optional[BaseException] = None
        try:
            self._execute(action)
        except BaseException as exc:  # noqa: BLE001 - surfaced at next sync
            error = exc
            with self._lock:
                if self._error is None:
                    self._error = exc
        end = time.perf_counter() - self._t0
        assert action.stream is not None
        lane = (
            f"xfer:d{action.stream.domain}"
            if action.kind is ActionKind.XFER
            else action.stream.lane
        )
        kind = {
            ActionKind.COMPUTE: "compute",
            ActionKind.XFER: "transfer",
            ActionKind.SYNC: "sync",
        }[action.kind]
        self.runtime.tracer.record(lane, start, end, action.display, kind=kind)
        scheduler.on_complete(action, when=end, error=error)

    def _resolve(self, action: Action, item: Any) -> Any:
        assert action.stream is not None
        domain = action.stream.domain
        if isinstance(item, Operand):
            return item.buffer.view(
                domain,
                item.offset,
                item.nbytes,
                dtype=item.dtype if item.dtype is not None else np.float64,
                shape=item.shape,
            )
        if isinstance(item, Buffer):
            return item.instance_array(domain)
        return item

    def _execute(self, action: Action) -> None:
        if action.kind is ActionKind.COMPUTE:
            spec = self.runtime.kernel(action.kernel)
            if spec.fn is None:
                raise HStreamsInternalError(
                    f"kernel {action.kernel!r} has no callable for the thread backend"
                )
            args = [self._resolve(action, a) for a in action.args]
            spec.fn(*args)
        elif action.kind is ActionKind.XFER:
            op = action.operands[0]
            sink = action.stream.domain  # type: ignore[union-attr]
            if sink == 0 or action.elided:
                # Host-as-target transfers alias away; elided transfers
                # would re-copy bytes the destination already holds.
                return
            src_dom, dst_dom = (
                (0, sink)
                if action.direction is XferDirection.SRC_TO_SINK
                else (sink, 0)
            )
            src = op.buffer.instance_array(src_dom)[op.offset : op.end]
            dst = op.buffer.instance_array(dst_dom)[op.offset : op.end]
            np.copyto(dst, src)
        # SYNC: its dependences were satisfied before the scheduler
        # dispatched it; there is nothing left to execute.

    # -- waiting --------------------------------------------------------------------------

    def _raise_pending_error(self) -> None:
        with self._lock:
            err, self._error = self._error, None
        if err is not None:
            raise err

    def wait_events(
        self,
        events: list,
        wait_all: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        if wait_all:
            for ev in events:
                remaining = None if deadline is None else deadline - time.monotonic()
                if not ev.handle.wait(remaining):
                    raise HStreamsTimedOut(
                        f"timed out waiting for {len(events)} event(s)"
                    )
        else:
            while events and not any(ev.handle.is_set() for ev in events):
                if deadline is not None and time.monotonic() > deadline:
                    raise HStreamsTimedOut("timed out in wait-any")
                time.sleep(_ANY_POLL_S)
        self._raise_pending_error()

    def wait_all(self) -> None:
        self.runtime.scheduler.wait_idle()
        self._raise_pending_error()

    def now(self) -> float:
        return time.perf_counter() - self._t0
