"""Thread backend: real execution of hStreams actions.

This backend makes the runtime a genuinely usable library: registered
Python kernels execute on worker threads with operand arguments resolved
to numpy views in the sink domain's address space, and transfers really
copy bytes between per-domain instances.

Mapping of the paper's resources:

* each stream's compute slot is one single-worker executor — compute
  tasks in a stream serialize (the sink's cores run one task at a time)
  but may start in *readiness* order, i.e. out of FIFO order when
  operands don't conflict;
* transfers run on a separate DMA-like worker pool, so they overlap with
  compute exactly as PCIe DMA engines do;
* per-domain address spaces are separate numpy allocations; the host
  instance of a wrapped array is the caller's own memory (zero-copy), so
  host-as-target transfers alias away.

The backend is a pure executor: dependence tracking, readiness dispatch,
completion propagation, and failure policy belong to the shared
:class:`~repro.core.scheduler.Scheduler`, which only hands this backend
actions whose dependences are already satisfied. Kernel exceptions do
not deadlock the runtime: the failing action still completes, the
scheduler applies the failure policy (poisoning dependents into
CANCELLED, or retrying transient errors), and every error is kept in
the scheduler's :class:`~repro.core.scheduler.FailureState` ledger —
the next synchronization re-raises the first with the rest attached,
and keeps re-raising until ``HStreams.clear_failure()``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

import numpy as np

from repro.core.actions import Action, ActionKind, Operand, XferDirection
from repro.core.backend import Backend
from repro.core.buffer import Buffer
from repro.core.errors import HStreamsInternalError, HStreamsTimedOut
from repro.core.events import HEvent
from repro.core.sync import make_condition

__all__ = ["ThreadBackend"]


class ThreadBackend(Backend):
    """Real-execution backend on worker threads."""

    def __init__(self, xfer_workers: int = 4):
        if xfer_workers < 1:
            raise ValueError("need at least one transfer worker")
        self._xfer_workers = xfer_workers

    # -- lifecycle -------------------------------------------------------------

    def attach(self, runtime) -> None:
        self.runtime = runtime
        # Mutated only by the single source thread (make_stream /
        # on_stream_destroy) and read by it in execute; workers never
        # touch the dict, so it needs no lock.
        self._stream_pools: Dict[int, ThreadPoolExecutor] = {}
        self._xfer_pool = ThreadPoolExecutor(
            max_workers=self._xfer_workers, thread_name_prefix="hstr-xfer"
        )
        # Every completion (success, failure, or cancellation) notifies
        # this condition; host wait paths block on it instead of polling.
        # One backend-wide condition suffices: the source endpoint is a
        # single thread, so there is at most one waiter, and failures in
        # *any* stream must wake a wait on any other (a dead producer's
        # events may never fire). Its lock is private (not the
        # scheduler's): completion signaling is ordered *after* the
        # scheduler lock in every path that takes both.
        self._completion_cv = make_condition(
            None,
            "backend.completion",
            sanitizer=getattr(runtime, "sanitizer", None),
        )
        self._t0 = time.perf_counter()

    def close(self) -> None:
        for pool in self._stream_pools.values():
            pool.shutdown(wait=True)
        self._xfer_pool.shutdown(wait=True)

    # -- handles & events --------------------------------------------------------

    def make_handle(self) -> threading.Event:
        return threading.Event()

    def event_done(self, event: HEvent) -> bool:
        return event.handle.is_set()

    def signal_completion(self, event: HEvent, when: float) -> None:
        with self._completion_cv:
            # Set under the condition lock: a waiter cannot check its
            # predicate and miss both the flag and the wake-up.
            event.handle.set()
            self._completion_cv.notify_all()

    # -- provisioning --------------------------------------------------------------

    def make_stream(self, stream) -> None:
        self._stream_pools[stream.id] = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"hstr-{stream.name}"
        )

    def on_stream_destroy(self, stream) -> None:
        pool = self._stream_pools.pop(stream.id, None)
        if pool is not None:
            pool.shutdown(wait=True)

    def make_instance(self, buf: Buffer, domain: int) -> np.ndarray:
        if domain == 0 and buf.host_array is not None:
            return buf.host_array.view(np.uint8).reshape(-1)
        return np.zeros(buf.nbytes, dtype=np.uint8)

    # -- execution ------------------------------------------------------------------

    def execute(self, action: Action) -> None:
        """Dispatch a dependence-free action onto its worker pool.

        Compute and sync actions go to the stream's single worker (the
        sink's compute slot); transfers ride the DMA-like pool so they
        overlap with compute.
        """
        assert action.stream is not None
        if action.kind is ActionKind.XFER:
            self._xfer_pool.submit(self._run, action)
        else:
            self._stream_pools[action.stream.id].submit(self._run, action)

    def execute_after(self, action: Action, delay: float) -> None:
        """Retry dispatch: re-run ``action`` after ``delay`` wall seconds.

        The backoff sleep rides the same worker the action runs on (the
        stream's compute slot, or the DMA pool for transfers), which
        also keeps retried work ordered before anything enqueued behind
        it in the same stream.
        """
        assert action.stream is not None
        if action.kind is ActionKind.XFER:
            self._xfer_pool.submit(self._run, action, delay)
        else:
            self._stream_pools[action.stream.id].submit(self._run, action, delay)

    def _run(self, action: Action, delay: float = 0.0) -> None:
        if delay > 0.0:
            # time.sleep() may return before the full delay has elapsed
            # under coarse OS clocks / interrupted waits; re-check the
            # monotonic deadline and re-arm so a retry backoff never
            # dispatches early (the sim backend's virtual backoff is
            # exact, and the two must agree on ordering).
            deadline = time.monotonic() + delay
            remaining = delay
            while remaining > 0.0:
                time.sleep(remaining)
                remaining = deadline - time.monotonic()
        scheduler = self.runtime.scheduler
        injector = self.runtime.fault_injector
        start = time.perf_counter() - self._t0
        scheduler.on_start(action, when=start)
        error: Optional[BaseException] = None
        try:
            if injector is not None:
                injector.check(action)
            self._execute(action)
        except BaseException as exc:  # noqa: BLE001 - surfaced at next sync
            error = exc
        end = time.perf_counter() - self._t0
        budget = self.runtime.config.action_timeout_s
        if error is None and budget is not None and end - start > budget:
            # Python kernels cannot be preempted: enforce the per-action
            # budget post-hoc by failing the action once it returns.
            error = HStreamsTimedOut(
                f"{action.display!r} ran {end - start:.6f} s, over the "
                f"action_timeout_s budget of {budget} s"
            )
        assert action.stream is not None
        lane = (
            f"xfer:d{action.stream.domain}"
            if action.kind is ActionKind.XFER
            else action.stream.lane
        )
        kind = {
            ActionKind.COMPUTE: "compute",
            ActionKind.XFER: "transfer",
            ActionKind.SYNC: "sync",
        }[action.kind]
        self.runtime.tracer.record(lane, start, end, action.display, kind=kind)
        scheduler.on_complete(action, when=end, error=error)

    def _resolve(self, action: Action, item: Any) -> Any:
        assert action.stream is not None
        domain = action.stream.domain
        if isinstance(item, Operand):
            return item.buffer.view(
                domain,
                item.offset,
                item.nbytes,
                dtype=item.dtype if item.dtype is not None else np.float64,
                shape=item.shape,
            )
        if isinstance(item, Buffer):
            return item.instance_array(domain)
        return item

    def _execute(self, action: Action) -> None:
        if action.kind is ActionKind.COMPUTE:
            spec = self.runtime.kernel(action.kernel)
            if spec.fn is None:
                raise HStreamsInternalError(
                    f"kernel {action.kernel!r} has no callable for the thread backend"
                )
            args = [self._resolve(action, a) for a in action.args]
            spec.fn(*args)
        elif action.kind is ActionKind.XFER:
            op = action.operands[0]
            sink = action.stream.domain  # type: ignore[union-attr]
            if sink == 0 or action.elided:
                # Host-as-target transfers alias away; elided transfers
                # would re-copy bytes the destination already holds.
                return
            src_dom, dst_dom = (
                (0, sink)
                if action.direction is XferDirection.SRC_TO_SINK
                else (sink, 0)
            )
            if action.src_domain is not None:
                # Collective forwarding hop: copy out of the peer
                # instance the chunk already landed in, not the host's.
                src_dom = action.src_domain
            src = op.buffer.instance_array(src_dom)[op.offset : op.end]
            dst = op.buffer.instance_array(dst_dom)[op.offset : op.end]
            np.copyto(dst, src)
        # SYNC: its dependences were satisfied before the scheduler
        # dispatched it; there is nothing left to execute.

    # -- waiting --------------------------------------------------------------------------

    def _raise_pending_error(self, scope: Optional[str] = None) -> None:
        """Surface run failures: first error raised, rest attached.

        Sticky — every synchronization keeps raising until the caller
        invokes ``HStreams.clear_failure()``. With ``scope`` given,
        only that namespace's failures surface (tenant isolation).
        """
        self.runtime.scheduler.failure.raise_pending(namespace=scope)

    def wait_events(
        self,
        events: list,
        wait_all: bool = True,
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
    ) -> None:
        failure = self.runtime.scheduler.failure
        # A pending failure satisfies the wait immediately: the awaited
        # events may belong to dead producers and never fire (e.g. under
        # fail_fast). The failure is raised by _raise_pending_error after
        # the loop, exactly as the old poll loops surfaced it. A scoped
        # wait only unblocks on its own namespace's failures — but a
        # scoped tenant's events can only be cancelled by failures in
        # that same namespace (poisoning never crosses the border), so
        # the events still fire and the wait still returns.
        if scope is None:
            def failed() -> bool:
                return failure.failed
        else:
            def failed() -> bool:
                return failure.failed_in(scope)
        if wait_all:
            def satisfied() -> bool:
                return failed() or all(
                    ev.handle.is_set() for ev in events
                )
        else:
            def satisfied() -> bool:
                return (
                    failed()
                    or not events
                    or any(ev.handle.is_set() for ev in events)
                )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._completion_cv:
            while not satisfied():
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise HStreamsTimedOut(
                        "timed out waiting for "
                        f"{'all' if wait_all else 'any'} of "
                        f"{len(events)} event(s)"
                    )
                self._completion_cv.wait(remaining)
        self._raise_pending_error(scope)

    def wait_all(
        self, timeout: Optional[float] = None, scope: Optional[str] = None
    ) -> None:
        self.runtime.scheduler.wait_idle(timeout)
        self._raise_pending_error(scope)

    def now(self) -> float:
        return time.perf_counter() - self._t0
