"""Graph capture and replay: record an action DAG once, re-admit it cheaply.

Steady-state pipelines (RTM is the canonical one) enqueue the *same*
action DAG every iteration; per-action Python admission — operand
collection, action construction, and above all the stream-window
dependence scan — then dominates runtime, the overhead class CUDA
Graphs eliminate by recording a stream graph once and replaying it.
This module is the hStreams analogue:

* ``with hs.capture_graph() as g:`` records every action enqueued in
  the scope into a :class:`GraphTemplate`. Capture is **warm**: the
  recorded iteration still executes normally (thread or sim backend),
  so capture costs one ordinary iteration, not a dry run.
* The template's dependence edges are recomputed with the analyzer's
  shadow-window machinery (:func:`~repro.core.capture.policy_dep_seqs`)
  over the *full* capture history plus the explicit event waits. That
  is a schedule-independent superset of the edges any replay needs —
  "it happened to be complete at enqueue time" is timing, not ordering.
* ``hs.replay(g)`` re-admits the DAG through
  :meth:`~repro.core.scheduler.Scheduler.enqueue_precomputed`, which
  injects the pre-computed edges directly into the scheduler's live
  :class:`~repro.core.graph.ActionGraph` — no window scan runs (the
  dependence scan counters stay at zero during replay).
* ``g.instantiate(bindings)`` rebinds buffer operands (capture buffer →
  same-size replacement), the parameterized-slot mechanism: capture
  once on one set of tiles, replay across the working set.

Replayed actions are full citizens of the runtime: the memory manager
re-decides transfer elision against *this* replay's coherence state
(clones arrive with ``elided`` cleared), fault injectors arm them in
template order (replay admits on the single source thread, so arming
stays deterministic, exactly as for enqueues), and failure policies
poison/retry/cancel them identically on both backends.

Templates are pure action DAGs over pre-existing streams and buffers:
host synchronizations, buffer create/destroy/evict, and stream
lifecycle changes inside a capture scope raise
:class:`~repro.core.errors.HStreamsInvalid`. Replay requires the
template's streams to be quiescent (synchronize first) — that is what
makes dropping capture-time edges to *pre-capture* work sound: anything
the captured iteration depended on from before the scope has completed
by the time a replay is admissible.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.actions import Action, ActionKind, Operand
from repro.core.capture import ActionEvent, ProgramTrace, policy_dep_seqs
from repro.core.errors import HStreamsBadArgument, HStreamsInvalid
from repro.core.scheduler import SchedulerObserver
from repro.core.sites import user_site
from repro.core.sync import caller_locked, guarded_by

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.buffer import Buffer
    from repro.core.events import HEvent
    from repro.core.runtime import HStreams
    from repro.core.stream import Stream

__all__ = ["GraphRecorder", "GraphTemplate", "GraphInstance"]


@guarded_by("_lock", "_index_by_seq", "_pos")
class GraphRecorder(SchedulerObserver):
    """Scheduler observer filling a :class:`GraphTemplate`.

    Registered by :meth:`~repro.core.runtime.HStreams.capture_graph`
    for the duration of the scope. For every admitted action it resolves
    the template-internal dependence edges (explicit event waits plus
    shadow-window policy deps, mapped from global seqs to template
    indices) and appends a matching
    :class:`~repro.core.capture.ActionEvent` to the template's
    :class:`~repro.core.capture.ProgramTrace`, so the hazard analyzer
    can validate the template directly (:meth:`GraphTemplate.validate`).
    """

    def __init__(self, runtime: "HStreams") -> None:
        self.runtime = runtime
        self.template = GraphTemplate(runtime)
        self._shadows: dict = {}
        # The scheduler's lock guards the recorder's state: every
        # mutation happens in on_enqueue, which the scheduler invokes
        # with its lock held.
        self._lock = runtime.scheduler._lock
        #: Global action seq -> template index, for edge mapping.
        self._index_by_seq: Dict[int, int] = {}
        self._pos = 0

    # -- scheduler callbacks ---------------------------------------------------

    @caller_locked("_lock")
    def on_enqueue(
        self,
        action: "Action",
        deps: List["Action"],
        dangling: List["HEvent"],
    ) -> None:
        by_seq = {d.seq: d for d in deps}
        seqs = set(by_seq)
        seqs.update(policy_dep_seqs(self._shadows, action))
        ordered = tuple(sorted(seqs))
        dep_idx: List[int] = []
        for seq in ordered:
            idx = self._index_by_seq.get(seq)
            if idx is None:
                # A dependence on pre-capture work. Dropped from the
                # template: replay preflight requires the involved
                # streams to be quiescent, which subsumes any edge to
                # work that predates the capture scope. Policy deps are
                # same-stream (already a template stream); an explicit
                # wait may point at a foreign stream — record it so the
                # preflight covers it too.
                self.template.external_deps += 1
                dep = by_seq.get(seq)
                if dep is not None and dep.stream is not None:
                    ext = self.template.external_streams
                    if dep.stream not in ext:
                        ext.append(dep.stream)
            else:
                dep_idx.append(idx)
        t = self.template
        self._index_by_seq[action.seq] = len(t.protos)
        t.protos.append(action)
        t.dep_indices.append(tuple(dep_idx))
        self._pos += 1
        t.trace.events.append(
            ActionEvent(
                pos=self._pos,
                action=action,
                dep_seqs=ordered,
                site=user_site(),
            )
        )

    def on_dangling_wait(self, action: "Action", event: "HEvent") -> bool:
        # Under a capture-only runtime every completed-and-folded
        # producer lands here (capture events never report complete);
        # those are ordinary edges. Waits on truly foreign events are
        # left unclaimed so the scheduler's normal rejection holds.
        return event.backend is self.runtime.backend

    def on_host_sync(self, kind, stream=None, events=()) -> None:
        raise HStreamsInvalid(
            f"cannot {kind} inside capture_graph(): a graph template is a "
            "pure action DAG — move host synchronization outside the "
            "capture scope (replay each captured segment, syncing between)"
        )

    def on_buffer(self, kind, buf, domain=None) -> None:
        raise HStreamsInvalid(
            f"cannot {kind} buffer {buf.name!r} inside capture_graph(): "
            "templates replay over pre-existing buffers — create/destroy/"
            "evict outside the capture scope (rebind replacements via "
            "instantiate(bindings))"
        )

    def on_stream_create(self, stream) -> None:
        raise HStreamsInvalid(
            f"cannot create stream {stream.name!r} inside capture_graph(): "
            "templates replay into pre-existing streams"
        )

    def on_stream_destroy(self, stream) -> None:
        raise HStreamsInvalid(
            f"cannot destroy stream {stream.name!r} inside capture_graph(): "
            "a template holds actions bound to it"
        )


class GraphTemplate:
    """A captured, parameterized action DAG.

    Produced by :meth:`~repro.core.runtime.HStreams.capture_graph`;
    consumed by :meth:`instantiate` /
    :meth:`~repro.core.runtime.HStreams.replay`. The prototypes keep the
    exact operands, kernels, costs, and labels of the captured actions;
    ``dep_indices[i]`` are the template-internal producers of prototype
    ``i`` (indices into ``protos``), pre-computed once at capture.
    """

    def __init__(self, runtime: "HStreams") -> None:
        self.runtime = runtime
        #: The captured actions, in admission order.
        self.protos: List[Action] = []
        #: Per-prototype producer indices into :attr:`protos`.
        self.dep_indices: List[Tuple[int, ...]] = []
        #: Capture-time edges to pre-capture work, dropped from the
        #: template (covered by the replay quiescence preflight).
        self.external_deps = 0
        #: Streams outside :attr:`streams` that dropped external deps
        #: pointed into; replay's quiescence preflight covers them too.
        self.external_streams: List["Stream"] = []
        #: The capture-scope trace, for :meth:`validate` (hsan).
        self.trace = ProgramTrace()
        #: Set on clean ``capture_graph()`` exit; replaying a template
        #: whose capture scope raised is refused.
        self.finalized = False
        #: Memoized :meth:`GraphInstance.instance_sites` result for
        #: unbound instances — the (buffer, domain) set is a template
        #: property until a rebinding changes the buffers.
        self._sites: Optional[List[Tuple["Buffer", int]]] = None

    def __len__(self) -> int:
        return len(self.protos)

    @property
    def streams(self) -> List["Stream"]:
        """The streams the template enqueues into, in first-use order."""
        out: List["Stream"] = []
        seen: set = set()
        for proto in self.protos:
            stream = proto.stream
            if stream is not None and stream.id not in seen:
                seen.add(stream.id)
                out.append(stream)
        return out

    def stat_delta(self) -> Dict[str, int]:
        """Per-replay increments for ``HStreams.stats``."""
        delta = {"computes": 0, "transfers": 0, "syncs": 0, "bytes_transferred": 0}
        for proto in self.protos:
            if proto.kind is ActionKind.COMPUTE:
                delta["computes"] += 1
            elif proto.kind is ActionKind.XFER:
                delta["transfers"] += 1
                delta["bytes_transferred"] += proto.nbytes
            else:
                delta["syncs"] += 1
        return delta

    def validate(self) -> list:
        """Run the hazard analyzer's rules over the captured trace.

        Returns the analyzer's diagnostics (empty = clean). A synthetic
        trailing ``thread_synchronize`` is appended for analysis: a
        template cannot contain host syncs (they are rejected during
        capture), but every replay cycle ends with one, so end-of-program
        lints like ``unwaited-event`` would otherwise fire on every
        template. Lazy import: ``core`` stays importable without
        :mod:`repro.analysis`.
        """
        self._check_finalized()
        from repro.analysis.checker import analyze_trace
        from repro.core.capture import SyncEvent

        events = list(self.trace.events)
        events.append(SyncEvent(pos=len(events) + 1, kind="thread_synchronize"))
        return analyze_trace(ProgramTrace(events=events))

    def _check_finalized(self) -> None:
        if not self.finalized:
            raise HStreamsInvalid(
                "graph template is not finalized: its capture_graph() scope "
                "is still open or exited with an error"
            )

    # -- instantiation ---------------------------------------------------------

    def instantiate(
        self, bindings: Optional[Dict["Buffer", "Buffer"]] = None
    ) -> "GraphInstance":
        """Build a replayable instance, optionally rebinding buffers.

        ``bindings`` maps capture-time buffers to same-size replacements
        (the template's parameterized operand slots); omitted buffers
        keep their captured binding. Each instance is single-use —
        completion events are per-admission — so replay-many means
        instantiate-many (the clone path is deliberately cheap).
        """
        self._check_finalized()
        remap: Dict[int, "Buffer"] = {}
        if bindings:
            for old, new in bindings.items():
                if new.nbytes != old.nbytes:
                    raise HStreamsBadArgument(
                        f"cannot rebind buffer {old.name!r} ({old.nbytes}B) "
                        f"to {new.name!r} ({new.nbytes}B): sizes must match"
                    )
                remap[old.uid] = new
        actions: List[Action] = []
        for proto in self.protos:
            a = proto.clone_for_replay()
            if remap:
                self._rebind(a, remap)
            actions.append(a)
        return GraphInstance(self, actions, rebound=bool(remap))

    def _rebind(self, action: Action, remap: Dict[int, "Buffer"]) -> None:
        """Swap rebound buffers into one cloned action's operands/args."""
        if any(op.buffer.uid in remap for op in action.operands):
            action.operands = tuple(
                self._rebind_operand(op, remap) for op in action.operands
            )
            # The footprint caches buffer uids: rebuild over the new
            # operands (zero-length operands stay excluded).
            action.footprint = tuple(
                (op.buffer.uid, op.offset, op.end, op.mode.writes)
                for op in action.operands
                if op.nbytes > 0
            )
        if action.args:
            action.args = tuple(
                self._rebind_arg(item, remap) for item in action.args
            )

    @staticmethod
    def _rebind_operand(op: Operand, remap: Dict[int, "Buffer"]) -> Operand:
        new = remap.get(op.buffer.uid)
        if new is None:
            return op
        if op.mode.writes and new.read_only:
            raise HStreamsBadArgument(
                f"cannot rebind a writing operand to read-only buffer "
                f"{new.name!r}"
            )
        # dataclasses.replace re-runs validation against the new buffer;
        # equal sizes guarantee the range still fits.
        return _dc_replace(op, buffer=new)

    def _rebind_arg(self, item, remap: Dict[int, "Buffer"]):
        if isinstance(item, Operand):
            return self._rebind_operand(item, remap)
        if getattr(item, "uid", None) in remap:  # bare Buffer argument
            return remap[item.uid]
        return item


class GraphInstance:
    """One replayable instantiation of a :class:`GraphTemplate`.

    Holds the cloned actions with their pre-computed producer lists and
    the buffer instances to ensure before admission. Single-use:
    :meth:`~repro.core.runtime.HStreams.replay` consumes it and returns
    it, so completion events are reachable as :attr:`events`.
    """

    def __init__(
        self,
        template: GraphTemplate,
        actions: List[Action],
        rebound: bool = False,
    ) -> None:
        self.template = template
        self.actions = actions
        #: Whether :meth:`GraphTemplate.instantiate` rebound any buffer
        #: (rebinding invalidates the template's memoized site set).
        self.rebound = rebound
        self._dep_lists: Optional[List[Tuple[Action, ...]]] = None
        self.consumed = False

    @property
    def dep_lists(self) -> List[Tuple[Action, ...]]:
        """Per-action producer actions (template edges over the clones).

        Built lazily: batched replay admission only materializes these
        when a registered observer consumes edges (see
        :attr:`~repro.core.scheduler.SchedulerObserver.wants_deps`) or
        when poison fallback needs per-action producer context.
        """
        if self._dep_lists is None:
            actions = self.actions
            self._dep_lists = [
                tuple(actions[i] for i in idx)
                for idx in self.template.dep_indices
            ]
        return self._dep_lists

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def events(self) -> List["HEvent"]:
        """The completion events, in template order (set by replay)."""
        return [a.completion for a in self.actions]

    def instance_sites(self) -> List[Tuple["Buffer", int]]:
        """The (buffer, domain) instances replay must ensure exist.

        Mirrors the enqueue paths: compute operands in the sink domain;
        transfer operands at both endpoints. Deduplicated — ensured once
        per replay, not once per action. Unbound instances share the
        template's memoized set (the buffers are the prototypes' own, so
        the sites cannot differ between replays); rebound instances
        recompute over their swapped buffers.
        """
        if not self.rebound and self.template._sites is not None:
            return self.template._sites
        out: List[Tuple["Buffer", int]] = []
        seen: set = set()

        def need(buf: "Buffer", domain: int) -> None:
            key = (buf.uid, domain)
            if key not in seen:
                seen.add(key)
                out.append((buf, domain))

        for action in self.actions:
            stream = action.stream
            if stream is None:
                continue
            if action.kind is ActionKind.COMPUTE:
                for op in action.operands:
                    need(op.buffer, stream.domain)
            elif action.kind is ActionKind.XFER:
                op = action.operands[0]
                need(op.buffer, 0)
                need(op.buffer, stream.domain)
                if action.src_domain is not None:
                    need(op.buffer, action.src_domain)
        if not self.rebound:
            self.template._sites = out
        return out
