"""The backend-agnostic action scheduler.

One scheduling core drives both backends (paper layering: hStreams above
COI above SCIF). The scheduler owns everything between ``enqueue`` and
``execute``:

* **edge registration** — intra-stream dependences from the per-stream
  window view (operand-conflict relaxation, or strict FIFO as a policy),
  plus explicit cross-stream event waits;
* **incremental ready-set dispatch** — an action is handed to the
  executor the moment its last dependence finishes, never rescanned;
* **completion propagation** — a finishing action decrements its
  dependents' wait counts, retires its node and its stream-window entry
  (O(1)), and dispatches whatever became ready;
* **cycle/deadlock detection** — the graph enforces acyclicity on edge
  registration and can name the blocked actions when nothing can make
  progress;
* **lifecycle observability** — per-action enqueue/ready/start/end
  timestamps, dependence-stall and dispatch-stall totals, and per-stream
  queue-depth metrics, exported through :meth:`metrics` and the runtime
  :class:`~repro.sim.trace.Tracer`;
* **observer hooks** — :class:`SchedulerObserver` instances registered
  in :attr:`Scheduler.observers` see every admission (with its resolved
  dependence edges), completion, host synchronization, and buffer
  lifecycle transition. This is the attachment point for the hazard
  analyzer: :mod:`repro.analysis` uses it both for whole-program capture
  (``HStreams(capture_only=True)``) and for the online checker that runs
  the same happens-before rules incrementally during real execution.

Backends are pure executors: they implement
``execute(action) -> completion`` for actions whose dependences the
scheduler has already satisfied, and report back through
:meth:`on_start` / :meth:`on_complete`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence

from repro.core.actions import ActionKind
from repro.core.errors import HStreamsBadArgument
from repro.core.events import HEvent
from repro.core.graph import ActionGraph, ActionRecord, ActionState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.buffer import Buffer
    from repro.core.runtime import HStreams
    from repro.core.stream import Stream

__all__ = ["Scheduler", "SchedulerObserver", "StreamStats"]


class SchedulerObserver:
    """Hook interface over scheduler and runtime lifecycle events.

    Subclass and append to :attr:`Scheduler.observers`. All callbacks
    are invoked with the scheduler lock held (keep them fast, do not
    call back into the runtime) and default to no-ops, so observers
    override only what they need. The hazard analyzer's capture recorder
    and online checker are the two in-tree observers.
    """

    def on_enqueue(
        self,
        action: "Action",
        deps: List["Action"],
        dangling: List[HEvent],
    ) -> None:
        """``action`` was admitted. ``deps`` are the live actions it was
        ordered after (explicit event waits plus intra-stream policy
        dependences); ``dangling`` are waits this observer claimed via
        :meth:`on_dangling_wait`."""

    def on_action_complete(self, action: "Action", record: ActionRecord) -> None:
        """``action`` reached a terminal state."""

    def on_dangling_wait(self, action: "Action", event: HEvent) -> bool:
        """``action`` waits on an incomplete event no live node owns.

        Return True to claim (record) the dangling wait; when no
        observer claims it the scheduler raises, as it always did.
        """
        return False

    def on_host_sync(
        self,
        kind: str,
        stream: Optional["Stream"] = None,
        events: Sequence[HEvent] = (),
    ) -> None:
        """The source thread blocked: ``kind`` is one of ``event_wait``,
        ``stream_synchronize``, ``thread_synchronize``."""

    def on_stream_create(self, stream: "Stream") -> None:
        """A stream was created."""

    def on_stream_destroy(self, stream: "Stream") -> None:
        """A stream was destroyed (after draining)."""

    def on_buffer(self, kind: str, buf: "Buffer", domain: Optional[int] = None) -> None:
        """Buffer lifecycle: ``kind`` is ``create``, ``destroy``, or
        ``evict`` (with ``domain`` set for evictions)."""


class StreamStats:
    """Per-stream scheduling aggregates (live + retired)."""

    __slots__ = (
        "stream",
        "depth",
        "max_depth",
        "enqueued",
        "completed",
        "failed",
        "dep_stall_s",
        "dispatch_stall_s",
        "exec_s",
        "destroyed",
    )

    def __init__(self, stream: "Stream"):
        self.stream = stream
        #: Current number of in-flight actions in the stream.
        self.depth = 0
        #: High-water mark of :attr:`depth`.
        self.max_depth = 0
        self.enqueued = 0
        self.completed = 0
        self.failed = 0
        self.dep_stall_s = 0.0
        self.dispatch_stall_s = 0.0
        self.exec_s = 0.0
        #: Whether the stream has been torn down; its stats survive in
        #: the final :meth:`Scheduler.metrics` snapshot regardless.
        self.destroyed = False

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view for :meth:`Scheduler.metrics`."""
        return {
            "name": self.stream.name,
            "lane": self.stream.lane,
            "depth": self.depth,
            "max_depth": self.max_depth,
            "enqueued": self.enqueued,
            "completed": self.completed,
            "failed": self.failed,
            "dep_stall_s": self.dep_stall_s,
            "dispatch_stall_s": self.dispatch_stall_s,
            "exec_s": self.exec_s,
            "destroyed": self.destroyed,
        }


class Scheduler:
    """Shared scheduling core in front of a pluggable executor backend."""

    def __init__(self, runtime: "HStreams"):
        self.runtime = runtime
        self.graph = ActionGraph()
        # Reentrant: a backend may finish one action while the host
        # thread is enqueueing another; the sim backend completes from
        # inside the engine loop which may nest through event callbacks.
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._streams: Dict[int, StreamStats] = {}
        history = int(runtime.config.metrics_history)
        self._records: Deque[ActionRecord] = deque(maxlen=history if history > 0 else 0)
        self._totals = {
            "enqueued": 0,
            "completed": 0,
            "failed": 0,
            "dep_stall_s": 0.0,
            "dispatch_stall_s": 0.0,
            "exec_s": 0.0,
        }
        self._by_kind = {
            kind.value: {"count": 0, "dep_stall_s": 0.0, "exec_s": 0.0}
            for kind in ActionKind
        }
        #: Registered :class:`SchedulerObserver` hooks (capture recorder,
        #: online checker). Appended to directly; order is call order.
        self.observers: List[SchedulerObserver] = []

    # -- stream registry ------------------------------------------------------

    def on_stream_create(self, stream: "Stream") -> None:
        """Start tracking scheduling metrics for a new stream."""
        with self._lock:
            self._streams[stream.id] = StreamStats(stream)
            for obs in self.observers:
                obs.on_stream_create(stream)

    def on_stream_destroy(self, stream: "Stream") -> None:
        """A (drained) stream was torn down.

        Mirrors :meth:`on_stream_create` so metrics, the tracer, and
        the capture recorder see teardown; the stream's
        :class:`StreamStats` are kept, flagged ``destroyed``.
        """
        with self._lock:
            stats = self._stream_stats(stream)
            stats.destroyed = True
            self.runtime.tracer.counter(
                f"sched:{stream.lane}", self.runtime.backend.now(), stats.depth
            )
            for obs in self.observers:
                obs.on_stream_destroy(stream)

    def _stream_stats(self, stream: "Stream") -> StreamStats:
        stats = self._streams.get(stream.id)
        if stats is None:  # streams made outside stream_create (tests)
            stats = StreamStats(stream)
            self._streams[stream.id] = stats
        return stats

    # -- enqueue ----------------------------------------------------------------

    def enqueue(self, action: "Action") -> HEvent:
        """Admit an action: wire its dependence edges and dispatch if ready.

        ``action.deps`` may already hold explicit cross-stream event
        waits (``event_stream_wait``); intra-stream dependences are
        computed here from the stream's window view under its FIFO
        policy. Returns the action's completion event.
        """
        backend = self.runtime.backend
        stream = action.stream
        assert stream is not None
        ready = False
        with self._lock:
            now = backend.now()
            for prev in stream.window.deps_for(action):
                assert prev.completion is not None
                action.deps.append(prev.completion)
            # Resolve and validate every dependence before mutating the
            # graph, so a rejected enqueue leaves no zombie node behind.
            dep_nodes: List = []
            dangling: List[HEvent] = []
            seen: set = set()
            # For observers: every resolved ordering edge, including ones
            # whose action already completed (capture mode completes
            # everything instantly, so the live graph alone would record
            # no edges at all).
            dep_actions: List["Action"] = []
            dep_seen: set = set()
            for ev in action.deps:
                if ev.action is not None and ev.action.seq not in dep_seen:
                    dep_seen.add(ev.action.seq)
                    dep_actions.append(ev.action)
                dep_node = self.graph.get(ev.action)
                if dep_node is not None:
                    if dep_node.action.seq in seen:
                        continue
                    seen.add(dep_node.action.seq)
                    dep_nodes.append(dep_node)
                elif not ev.is_complete():
                    # An observer (the capture recorder) may claim the
                    # dangling wait as a diagnostic instead of an error.
                    # Every observer gets to see it (no short-circuit).
                    claims = [obs.on_dangling_wait(action, ev) for obs in self.observers]
                    if any(claims):
                        dangling.append(ev)
                        continue
                    raise HStreamsBadArgument(
                        f"{action.display!r} waits on an event unknown to "
                        "this runtime's scheduler; cross-runtime event "
                        "dependences are not supported"
                    )
            node = self.graph.add(action, now)
            action.completion = HEvent(backend, backend.make_handle(), action)
            for dep_node in dep_nodes:
                self.graph.add_edge(dep_node, node)
            stream.window.add(action)
            stats = self._stream_stats(stream)
            stats.enqueued += 1
            stats.depth += 1
            if stats.depth > stats.max_depth:
                stats.max_depth = stats.depth
            self._totals["enqueued"] += 1
            self._outstanding += 1
            self.runtime.tracer.counter(f"sched:{stream.lane}", now, stats.depth)
            for obs in self.observers:
                obs.on_enqueue(action, dep_actions, dangling)
            if node.waiting == 0:
                node.transition(ActionState.READY)
                node.t_ready = now
                ready = True
        if ready:
            backend.execute(action)
        return action.completion

    # -- executor callbacks --------------------------------------------------------

    def on_start(self, action: "Action", when: Optional[float] = None) -> None:
        """Executor callback: real (or virtual) execution began."""
        with self._lock:
            node = self.graph.get(action)
            if node is None:  # already retired (defensive)
                return
            node.transition(ActionState.RUNNING)
            node.t_start = when if when is not None else self.runtime.backend.now()

    def on_complete(
        self,
        action: "Action",
        when: Optional[float] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Executor callback: the action finished (or failed).

        Signals the completion event, retires the node and its stream
        window entry, folds lifecycle timings into the metrics, and
        dispatches every dependent whose last dependence this was. A
        failed action still releases its dependents — the error is
        surfaced at the next synchronization, exactly as before.
        """
        backend = self.runtime.backend
        to_dispatch: List["Action"] = []
        with self._lock:
            node = self.graph.get(action)
            if node is None:  # double completion (defensive)
                return
            end = when if when is not None else backend.now()
            node.t_end = end
            node.error = error
            node.transition(
                ActionState.FAILED if error is not None else ActionState.COMPLETE
            )
            assert action.completion is not None
            action.completion.timestamp = end
            backend.signal_completion(action.completion, end)
            record = node.record()
            action.completion.record = record
            if self._records.maxlen != 0:
                self._records.append(record)
            self._fold(node, record)
            for obs in self.observers:
                obs.on_action_complete(action, record)
            stream = action.stream
            assert stream is not None
            stream.window.retire(action)
            stats = self._stream_stats(stream)
            stats.depth -= 1
            self.runtime.tracer.counter(f"sched:{stream.lane}", end, stats.depth)
            for dep_node in node.dependents:
                dep_node.waiting -= 1
                if dep_node.waiting == 0 and dep_node.state is ActionState.ENQUEUED:
                    dep_node.transition(ActionState.READY)
                    dep_node.t_ready = end
                    to_dispatch.append(dep_node.action)
            node.dependents = []
            self.graph.pop(node)
            self._outstanding -= 1
            if self._outstanding == 0:
                self._idle.notify_all()
        for nxt in to_dispatch:
            backend.execute(nxt)

    def _fold(self, node, record: ActionRecord) -> None:
        """Accumulate one finished node into the aggregates."""
        failed = node.state is ActionState.FAILED
        stats = self._stream_stats(node.action.stream)
        if failed:
            stats.failed += 1
            self._totals["failed"] += 1
        else:
            stats.completed += 1
            self._totals["completed"] += 1
        stats.dep_stall_s += record.dep_stall
        stats.dispatch_stall_s += record.dispatch_stall
        stats.exec_s += record.exec_time
        self._totals["dep_stall_s"] += record.dep_stall
        self._totals["dispatch_stall_s"] += record.dispatch_stall
        self._totals["exec_s"] += record.exec_time
        kind = self._by_kind[record.kind]
        kind["count"] += 1
        kind["dep_stall_s"] += record.dep_stall
        kind["exec_s"] += record.exec_time

    # -- observer notifications ---------------------------------------------------

    def notify_host_sync(
        self,
        kind: str,
        stream: Optional["Stream"] = None,
        events: Sequence[HEvent] = (),
    ) -> None:
        """Runtime callback: the source thread performed a blocking sync.

        Host synchronizations are happens-before edges (everything the
        host observed orders before whatever it enqueues next), so the
        hazard analyzer needs to see them even when the backend had
        nothing left to wait for.
        """
        with self._lock:
            for obs in self.observers:
                obs.on_host_sync(kind, stream=stream, events=list(events))

    def notify_buffer(
        self, kind: str, buf: "Buffer", domain: Optional[int] = None
    ) -> None:
        """Runtime callback: buffer lifecycle transition (create /
        destroy / evict), forwarded to observers for lifetime lints."""
        with self._lock:
            for obs in self.observers:
                obs.on_buffer(kind, buf, domain=domain)

    # -- queries -----------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Number of admitted, not-yet-finished actions."""
        with self._lock:
            return self._outstanding

    def enqueue_time(self, action: "Action") -> float:
        """The backend-clock time at which ``action`` was admitted."""
        with self._lock:
            node = self.graph.get(action)
            return node.t_enqueue if node is not None else 0.0

    def wait_idle(self) -> None:
        """Block the calling (host) thread until no action is in flight."""
        with self._idle:
            while self._outstanding > 0:
                self._idle.wait()

    def inflight_touching(
        self, buf: "Buffer", domain: Optional[int] = None
    ) -> List["Action"]:
        """Live actions with an operand on ``buf``.

        With ``domain`` given, only actions whose stream sinks into that
        domain count — the query behind the busy check in
        :meth:`~repro.core.runtime.HStreams.buffer_evict`.
        """
        with self._lock:
            out: List["Action"] = []
            for node in self.graph.nodes():
                a = node.action
                if domain is not None and (
                    a.stream is None or a.stream.domain != domain
                ):
                    continue
                if any(op.buffer is buf for op in a.operands):
                    out.append(a)
            return out

    def find_stalled(self) -> List["Action"]:
        """Actions that can never run because nothing can unblock them."""
        with self._lock:
            return [n.action for n in self.graph.stalled()]

    # -- metrics --------------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """A point-in-time snapshot of scheduling observability data.

        Keys:

        * ``actions`` — enqueued / completed / failed / in-flight counts;
        * ``lifecycle`` — total dependence-stall, dispatch-stall, and
          execution seconds across all finished actions;
        * ``by_kind`` — the same split per action kind;
        * ``streams`` — per-stream queue depth (current and high-water),
          throughput counts, and stall totals;
        * ``records`` — the most recent per-action lifecycle records
          (bounded by ``RuntimeConfig.metrics_history``).
        """
        with self._lock:
            return {
                "actions": {
                    "enqueued": self._totals["enqueued"],
                    "completed": self._totals["completed"],
                    "failed": self._totals["failed"],
                    "in_flight": self._outstanding,
                },
                "lifecycle": {
                    "dep_stall_s": self._totals["dep_stall_s"],
                    "dispatch_stall_s": self._totals["dispatch_stall_s"],
                    "exec_s": self._totals["exec_s"],
                },
                "by_kind": {k: dict(v) for k, v in self._by_kind.items()},
                "streams": {
                    sid: stats.snapshot() for sid, stats in self._streams.items()
                },
                "records": list(self._records),
            }
