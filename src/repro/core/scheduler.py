"""The backend-agnostic action scheduler.

One scheduling core drives both backends (paper layering: hStreams above
COI above SCIF). The scheduler owns everything between ``enqueue`` and
``execute``:

* **edge registration** — intra-stream dependences from the per-stream
  window view (operand-conflict relaxation, or strict FIFO as a policy),
  plus explicit cross-stream event waits;
* **incremental ready-set dispatch** — an action is handed to the
  executor the moment its last dependence finishes, never rescanned;
* **completion propagation** — a finishing action decrements its
  dependents' wait counts, retires its node and its stream-window entry
  (O(1)), and dispatches whatever became ready;
* **cycle/deadlock detection** — the graph enforces acyclicity on edge
  registration and can name the blocked actions when nothing can make
  progress;
* **lifecycle observability** — per-action enqueue/ready/start/end
  timestamps, dependence-stall and dispatch-stall totals, and per-stream
  queue-depth metrics, exported through :meth:`metrics` and the runtime
  :class:`~repro.sim.trace.Tracer`;
* **observer hooks** — :class:`SchedulerObserver` instances registered
  in :attr:`Scheduler.observers` see every admission (with its resolved
  dependence edges), completion, host synchronization, and buffer
  lifecycle transition. This is the attachment point for the hazard
  analyzer: :mod:`repro.analysis` uses it both for whole-program capture
  (``HStreams(capture_only=True)``) and for the online checker that runs
  the same happens-before rules incrementally during real execution.

Backends are pure executors: they implement
``execute(action) -> completion`` for actions whose dependences the
scheduler has already satisfied, and report back through
:meth:`on_start` / :meth:`on_complete`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.actions import ActionKind
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsCancelled,
    HStreamsTimedOut,
    is_transient,
)
from repro.core.events import HEvent
from repro.core.graph import ActionGraph, ActionNode, ActionRecord, ActionState
from repro.core.sites import user_site
from repro.core.sync import caller_locked, guarded_by, make_condition, make_lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.buffer import Buffer
    from repro.core.runtime import HStreams
    from repro.core.stream import Stream

__all__ = ["FailureState", "Scheduler", "SchedulerObserver", "StreamStats"]

#: Recognized values of ``HStreams(failure_policy=...)``.
FAILURE_POLICIES = ("poison", "fail_fast", "retry")

#: Shared empty dangling-wait list for the common enqueue (no explicit
#: waits claimed): handed to observers read-only, never mutated.
_NO_DANGLING: List["HEvent"] = []

#: Shared empty producer list: handed to deps-blind observers during
#: batched replay admission (see ``SchedulerObserver.wants_deps``).
_NO_DEPS: List["Action"] = []


@guarded_by("_lock", "errors", "observed", "_namespaces")
class FailureState:
    """Thread-safe ledger of every error a run has observed.

    Backends and the scheduler :meth:`record` errors as actions fail;
    host-facing wait paths call :meth:`raise_pending`, which raises the
    *first* error with every subsequent one attached (as an ``errors``
    attribute, plus ``add_note`` summaries where the interpreter
    supports them) — later failures are never silently dropped. The
    state is *sticky*: once failed, every synchronization keeps raising
    until :meth:`clear` (``HStreams.clear_failure()``) is called.

    Every entry carries the *namespace* of the stream whose action
    failed (empty for the classic single-user runtime). Namespace-scoped
    queries (``failed_in``/``raise_pending(namespace=...)``/
    ``clear(namespace=...)``) see only matching entries — the isolation
    contract of the multi-tenant service tier: tenant B's waits never
    raise tenant A's errors. Unscoped calls see everything, exactly as
    before namespaces existed.
    """

    def __init__(self, sanitizer=None) -> None:
        self._lock = make_lock("failure", sanitizer=sanitizer)
        #: Every recorded error, in completion order.
        self.errors: List[BaseException] = []
        #: Parallel to :attr:`errors`: the failing action's stream
        #: namespace ("" outside the service tier).
        self._namespaces: List[str] = []
        #: Whether :meth:`raise_pending` has surfaced the failure to the
        #: host at least once (``fini`` uses this to avoid re-raising an
        #: error the caller already handled).
        self.observed = False

    @property
    def failed(self) -> bool:
        """Whether any error has been recorded (and not cleared)."""
        with self._lock:
            return bool(self.errors)

    def failed_in(self, namespace: str) -> bool:
        """Whether an error was recorded against ``namespace``."""
        with self._lock:
            return namespace in self._namespaces

    def snapshot(self) -> Tuple[List[BaseException], bool]:
        """A consistent ``(errors, observed)`` pair for host-side
        inspection (``fini``, ``failure_errors``)."""
        with self._lock:
            return list(self.errors), self.observed

    def errors_in(self, namespace: Optional[str]) -> List[BaseException]:
        """Recorded errors, filtered to ``namespace`` (None = all)."""
        with self._lock:
            if namespace is None:
                return list(self.errors)
            return [
                err
                for err, ns in zip(self.errors, self._namespaces)
                if ns == namespace
            ]

    def record(self, error: BaseException, namespace: str = "") -> None:
        """Append a terminal action failure to the ledger."""
        with self._lock:
            self.errors.append(error)
            self._namespaces.append(namespace)

    def raise_pending(self, namespace: Optional[str] = None) -> None:
        """Raise the first recorded error, with the rest attached.

        No-op when nothing failed. Does *not* clear the ledger — the
        runtime stays marked failed until explicitly cleared. With
        ``namespace`` given, only errors recorded against that exact
        namespace are considered (and attached): a scoped wait stays
        blind to other tenants' failures.
        """
        with self._lock:
            if namespace is None:
                pending = self.errors
            else:
                pending = [
                    err
                    for err, ns in zip(self.errors, self._namespaces)
                    if ns == namespace
                ]
            if not pending:
                return
            first = pending[0]
            # The global observed flag drives fini()'s "already handled"
            # suppression, which re-raises self.errors[0]; a scoped
            # raise therefore only counts when it surfaced that error.
            if first is self.errors[0]:
                self.observed = True
            first.errors = list(pending)  # type: ignore[attr-defined]
            if hasattr(first, "add_note"):  # pragma: no branch
                if len(pending) > 1 and not getattr(
                    first, "_hstreams_noted", False
                ):
                    first._hstreams_noted = True  # type: ignore[attr-defined]
                    for extra in pending[1:]:
                        first.add_note(
                            f"also failed: {type(extra).__name__}: {extra}"
                        )
                # Note (once) where in user code the failure first
                # surfaced: actions fail on worker threads, so the
                # original traceback never points at the program.
                if not getattr(first, "_hstreams_site_noted", False):
                    site = user_site()
                    if site is not None:
                        first._hstreams_site_noted = True  # type: ignore[attr-defined]
                        first.add_note(f"surfaced at {site[0]}:{site[1]}")
            raise first

    def clear(self, namespace: Optional[str] = None) -> List[BaseException]:
        """Reset to the no-failure state; returns the dropped errors.

        With ``namespace`` given, only that namespace's entries drop —
        a tenant acknowledging its own failure leaves every other
        tenant's ledger (and the global observed flag) untouched unless
        nothing else remains.
        """
        with self._lock:
            if namespace is None:
                dropped, self.errors = self.errors, []
                self._namespaces = []
                self.observed = False
                return dropped
            dropped = []
            kept_errors: List[BaseException] = []
            kept_ns: List[str] = []
            for err, ns in zip(self.errors, self._namespaces):
                if ns == namespace:
                    dropped.append(err)
                else:
                    kept_errors.append(err)
                    kept_ns.append(ns)
            self.errors = kept_errors
            self._namespaces = kept_ns
            if not self.errors:
                self.observed = False
            return dropped


class SchedulerObserver:
    """Hook interface over scheduler and runtime lifecycle events.

    Subclass and append to :attr:`Scheduler.observers`. All callbacks
    are invoked with the scheduler lock held (keep them fast, do not
    call back into the runtime) and default to no-ops, so observers
    override only what they need. The hazard analyzer's capture recorder
    and online checker are the two in-tree observers.
    """

    #: Whether :meth:`on_enqueue` reads its ``deps`` argument. Batched
    #: replay admission skips materializing per-clone producer tuples
    #: when every registered observer declares ``False`` (the memory
    #: manager and fault injector do); observers that consume edges —
    #: trace capture, the online checker — keep the default.
    wants_deps: bool = True

    def on_enqueue(
        self,
        action: "Action",
        deps: List["Action"],
        dangling: List[HEvent],
    ) -> None:
        """``action`` was admitted. ``deps`` are the live actions it was
        ordered after (explicit event waits plus intra-stream policy
        dependences); ``dangling`` are waits this observer claimed via
        :meth:`on_dangling_wait`."""

    def on_action_complete(self, action: "Action", record: ActionRecord) -> None:
        """``action`` reached a terminal state."""

    def on_dangling_wait(self, action: "Action", event: HEvent) -> bool:
        """``action`` waits on an incomplete event no live node owns.

        Return True to claim (record) the dangling wait; when no
        observer claims it the scheduler raises, as it always did.
        """
        return False

    def on_host_sync(
        self,
        kind: str,
        stream: Optional["Stream"] = None,
        events: Sequence[HEvent] = (),
    ) -> None:
        """The source thread blocked: ``kind`` is one of ``event_wait``,
        ``stream_synchronize``, ``thread_synchronize``."""

    def on_stream_create(self, stream: "Stream") -> None:
        """A stream was created."""

    def on_stream_destroy(self, stream: "Stream") -> None:
        """A stream was destroyed (after draining)."""

    def on_buffer(self, kind: str, buf: "Buffer", domain: Optional[int] = None) -> None:
        """Buffer lifecycle: ``kind`` is ``create``, ``destroy``, or
        ``evict`` (with ``domain`` set for evictions)."""


class StreamStats:
    """Per-stream scheduling aggregates (live + retired)."""

    __slots__ = (
        "stream",
        "depth",
        "max_depth",
        "enqueued",
        "completed",
        "failed",
        "cancelled",
        "retried",
        "dep_stall_s",
        "dispatch_stall_s",
        "exec_s",
        "destroyed",
    )

    def __init__(self, stream: "Stream"):
        self.stream = stream
        #: Current number of in-flight actions in the stream.
        self.depth = 0
        #: High-water mark of :attr:`depth`.
        self.max_depth = 0
        self.enqueued = 0
        self.completed = 0
        self.failed = 0
        #: Actions poisoned into CANCELLED by a failed producer.
        self.cancelled = 0
        #: Retry attempts consumed under ``failure_policy="retry"``.
        self.retried = 0
        self.dep_stall_s = 0.0
        self.dispatch_stall_s = 0.0
        self.exec_s = 0.0
        #: Whether the stream has been torn down; its stats survive in
        #: the final :meth:`Scheduler.metrics` snapshot regardless.
        self.destroyed = False

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view for :meth:`Scheduler.metrics`."""
        window = self.stream.window
        return {
            "name": self.stream.name,
            "lane": self.stream.lane,
            "namespace": self.stream.namespace,
            "dep_scan_candidates": window.scan_candidates,
            "dep_scan_comparisons": window.scan_comparisons,
            "depth": self.depth,
            "max_depth": self.max_depth,
            "enqueued": self.enqueued,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "retried": self.retried,
            "dep_stall_s": self.dep_stall_s,
            "dispatch_stall_s": self.dispatch_stall_s,
            "exec_s": self.exec_s,
            "destroyed": self.destroyed,
        }


@guarded_by(
    "_lock",
    "_outstanding",
    "_streams",
    "_records",
    "_totals",
    "_poisoned",
    "_by_kind",
    "observers",
    "namespace_quotas",
    "_ns_inflight",
)
class Scheduler:
    """Shared scheduling core in front of a pluggable executor backend."""

    def __init__(self, runtime: "HStreams"):
        self.runtime = runtime
        #: The runtime's rtsan sanitizer, or None (the common case).
        #: Checked on the hot path as a single attribute test.
        self._sanitizer = getattr(runtime, "sanitizer", None)
        # Reentrant: a backend may finish one action while the host
        # thread is enqueueing another; the sim backend completes from
        # inside the engine loop which may nest through event callbacks.
        # no_block: sleeping while holding this lock stalls admission
        # and completion on every thread (rtsan blocking-under-lock).
        self._lock = make_lock(
            "scheduler",
            reentrant=True,
            no_block=True,
            sanitizer=self._sanitizer,
        )
        self._idle = make_condition(self._lock, "scheduler.idle")
        self.graph = ActionGraph(lock=self._lock)
        self._outstanding = 0
        self._streams: Dict[int, StreamStats] = {}
        history = int(runtime.config.metrics_history)
        self._records: Deque[ActionRecord] = deque(maxlen=history if history > 0 else 0)
        self._totals = {
            "enqueued": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "retried": 0,
            "dep_stall_s": 0.0,
            "dispatch_stall_s": 0.0,
            "exec_s": 0.0,
        }
        #: Run-wide failure ledger; host wait paths raise through it.
        self.failure = FailureState(sanitizer=self._sanitizer)
        #: Failed/cancelled actions (by seq) with their errors, so work
        #: enqueued *after* a failure deterministically poisons too when
        #: it depends on — or operand-conflicts with — a dead producer.
        #: Cleared by :meth:`clear_failure`.
        self._poisoned: Dict[int, Tuple["Action", BaseException]] = {}
        self._by_kind = {
            kind.value: {"count": 0, "dep_stall_s": 0.0, "exec_s": 0.0}
            for kind in ActionKind
        }
        #: Registered :class:`SchedulerObserver` hooks (capture recorder,
        #: online checker). Appended to directly; order is call order.
        self.observers: List[SchedulerObserver] = []
        #: Per-namespace hard admission quotas (max in-flight actions);
        #: set via :meth:`set_namespace_quota`. Streams in the empty
        #: namespace are never quota-checked.
        self.namespace_quotas: Dict[str, int] = {}
        #: Live in-flight action count per (non-empty) namespace; the
        #: counter behind the quota check and the per-tenant metrics.
        self._ns_inflight: Dict[str, int] = {}

    # -- stream registry ------------------------------------------------------

    def on_stream_create(self, stream: "Stream") -> None:
        """Start tracking scheduling metrics for a new stream."""
        with self._lock:
            self._streams[stream.id] = StreamStats(stream)
            if self._sanitizer is not None:
                # The window's live set and conflict index are mutated
                # only under this lock; wire the guard and instrument.
                stream.window._lock = self._lock
                self._sanitizer.instrument(stream.window)
            for obs in self.observers:
                obs.on_stream_create(stream)

    def on_stream_destroy(self, stream: "Stream") -> None:
        """A (drained) stream was torn down.

        Mirrors :meth:`on_stream_create` so metrics, the tracer, and
        the capture recorder see teardown; the stream's
        :class:`StreamStats` are kept, flagged ``destroyed``.
        """
        with self._lock:
            stats = self._stream_stats(stream)
            stats.destroyed = True
            self.runtime.tracer.counter(
                f"sched:{stream.lane}", self.runtime.backend.now(), stats.depth
            )
            for obs in self.observers:
                obs.on_stream_destroy(stream)

    @caller_locked("_lock")
    def _stream_stats(self, stream: "Stream") -> StreamStats:
        stats = self._streams.get(stream.id)
        if stats is None:  # streams made outside stream_create (tests)
            stats = StreamStats(stream)
            self._streams[stream.id] = stats
        return stats

    # -- enqueue ----------------------------------------------------------------

    def enqueue(self, action: "Action") -> HEvent:
        """Admit an action: wire its dependence edges and dispatch if ready.

        ``action.deps`` may already hold explicit cross-stream event
        waits (``event_stream_wait``); intra-stream dependences are
        computed here from the stream's window view under its FIFO
        policy. Returns the action's completion event.

        Admission is a pipeline — compute window dependences, resolve
        and validate them (:meth:`_resolve_deps`), then admit
        (:meth:`_admit`). The dependence-computation stage is the only
        part replay (:meth:`enqueue_precomputed`) skips: a replayed
        action arrives with its edges already known, so no window scan
        runs at all.
        """
        backend = self.runtime.backend
        stream = action.stream
        assert stream is not None
        with self._lock:
            if self.failure_policy == "fail_fast":
                # Refuse new work outright once anything failed — in the
                # enqueueing stream's namespace only, when it has one:
                # one tenant's fail_fast never rejects another's work.
                self.failure.raise_pending(
                    namespace=stream.namespace or None
                )
            self._check_quota(stream)
            now = backend.now()
            # Intra-stream policy dependences come back as live actions;
            # the list is ours, so it doubles as the observer-facing
            # ``dep_actions`` without another allocation. ``action.deps``
            # stays what the caller put there: explicit event waits.
            window_deps = stream.window.deps_for(action)
            dep_nodes, dep_actions, dangling = self._resolve_deps(
                action, window_deps
            )
            ready = self._admit(action, now, dep_nodes, dep_actions, dangling)
            if self._sanitizer is not None:
                self._sanitizer.check_scheduler(self)
        if ready:
            backend.execute(action)
        return action.completion

    def enqueue_precomputed(
        self, action: "Action", dep_actions: Sequence["Action"]
    ) -> HEvent:
        """Admit an action whose dependence edges are already known.

        The replay path (:meth:`~repro.core.runtime.HStreams.replay`):
        ``dep_actions`` are the producers a captured template recorded
        for this action, so the window dependence scan — the
        per-action cost the scan counters measure — is skipped
        entirely. Producers that already finished resolve to no live
        node, exactly as satisfied dependences do on the enqueue path.
        Everything downstream of dependence computation (poison checks,
        graph insertion, observers, elision, readiness dispatch) is the
        shared :meth:`_admit` stage, so replayed actions execute
        identically to enqueued ones on every backend.
        """
        backend = self.runtime.backend
        assert action.stream is not None
        with self._lock:
            if self.failure_policy == "fail_fast":
                self.failure.raise_pending(
                    namespace=action.stream.namespace or None
                )
            self._check_quota(action.stream)
            now = backend.now()
            get_node = self.graph.get
            dep_nodes = [
                node for node in map(get_node, dep_actions) if node is not None
            ]
            ready = self._admit(
                action, now, dep_nodes, list(dep_actions), _NO_DANGLING
            )
            if self._sanitizer is not None:
                self._sanitizer.check_scheduler(self)
        if ready:
            backend.execute(action)
        return action.completion

    def set_namespace_quota(self, namespace: str, limit: Optional[int]) -> None:
        """Cap a namespace's in-flight actions at ``limit`` (None clears).

        The hard backstop behind the service tier's admission window:
        an enqueue into a stream of this namespace raises
        :class:`~repro.core.errors.HStreamsQuotaExceeded` once ``limit``
        actions are in flight, instead of growing the window unboundedly.
        """
        if not namespace:
            raise HStreamsBadArgument("namespace quotas need a non-empty namespace")
        if limit is not None and limit < 1:
            raise HStreamsBadArgument(f"quota for {namespace!r} must be >= 1")
        with self._lock:
            if limit is None:
                self.namespace_quotas.pop(namespace, None)
            else:
                self.namespace_quotas[namespace] = limit

    @caller_locked("_lock")
    def _check_quota(self, stream: "Stream") -> None:
        """Reject admission when the stream namespace's quota is full."""
        ns = stream.namespace
        if not ns or not self.namespace_quotas:
            return
        limit = self.namespace_quotas.get(ns)
        if limit is not None and self._ns_inflight.get(ns, 0) >= limit:
            from repro.core.errors import HStreamsQuotaExceeded

            raise HStreamsQuotaExceeded(
                f"namespace {ns!r} has {limit} action(s) in flight "
                "(its quota); synchronize or defer before enqueueing more"
            )

    def namespace_inflight(self, namespace: str) -> int:
        """Current in-flight action count of ``namespace``."""
        with self._lock:
            return self._ns_inflight.get(namespace, 0)

    def window_producers(self, stream, probe: "Action") -> List["Action"]:
        """Live in-window producers a hypothetical ``probe`` would follow.

        The collectives planner admits its chunk actions through
        :meth:`enqueue_precomputed`, which skips the window scan — so it
        asks here, once per participating stream over the collective's
        *whole* footprint, for the external ordering a normal enqueue
        would have discovered, and threads the result into its first
        chunk on that stream. One scan per stream per collective instead
        of one per chunk; the scan counters account it like any other.
        """
        with self._lock:
            return list(stream.window.deps_for(probe))

    def admit_instance(self, instance) -> None:
        """Admit a whole replayed graph instance in one scheduler pass.

        The batch form of :meth:`enqueue_precomputed`, and the reason
        replay admission stays cheap: the lock is taken once, ``now`` is
        read once, per-stream stats and the depth counters are updated
        once per stream, and the template's edges are wired node-to-node
        by position — every producer of a template edge is an earlier
        member of this same batch, so no graph lookups run at all.
        Completions serialize on the scheduler lock, so nothing retires
        mid-batch and the in-batch waiting counts are exact; dispatch of
        the ready roots happens after the lock drops, exactly as for
        single admissions.

        With failures pending the batch falls back to per-action
        :meth:`enqueue_precomputed`: admission poisoning needs each
        action's producer and conflict context individually, and that
        path is not the one whose cost replay is optimizing.
        """
        backend = self.runtime.backend
        ready: List["Action"] = []
        with self._lock:
            if self.failure_policy == "fail_fast":
                self.failure.raise_pending()
            poisoned = bool(self._poisoned)
            if not poisoned:
                ready = self._admit_batch(instance, backend)
                if self._sanitizer is not None:
                    self._sanitizer.check_scheduler(self)
        if poisoned:
            for action, dep_actions in zip(instance.actions, instance.dep_lists):
                self.enqueue_precomputed(action, dep_actions)
            return
        execute = backend.execute
        for action in ready:
            execute(action)

    @caller_locked("_lock")
    def _admit_batch(self, instance, backend) -> List["Action"]:
        """Admit every clone of ``instance`` in template order.

        Lock held, no pending failures. Mirrors :meth:`_admit` stage by
        stage (graph node, completion event, edges, window entry,
        observers, readiness) with the per-action bookkeeping hoisted
        out of the loop. Template edges always point backwards in the
        batch (the recorder admits producers first) and clones draw
        fresh monotonic seqs, so the acyclicity invariant
        :meth:`~repro.core.graph.ActionGraph.add_edge` checks holds by
        construction. Returns the immediately dispatchable roots.
        """
        now = backend.now()
        make_handle = backend.make_handle
        graph_add = self.graph.add
        observers = self.observers
        dep_lists = (
            instance.dep_lists
            if any(getattr(obs, "wants_deps", True) for obs in observers)
            else None
        )
        nodes: List[ActionNode] = []
        ready: List["Action"] = []
        for i, action in enumerate(instance.actions):
            node = graph_add(action, now)
            action.completion = HEvent(backend, make_handle(), action)
            dep_idx = instance.template.dep_indices[i]
            for j in dep_idx:
                nodes[j].dependents.append(node)
            node.waiting = len(dep_idx)
            nodes.append(node)
            action.stream.window.add(action)
            deps = _NO_DEPS if dep_lists is None else dep_lists[i]
            for obs in observers:
                obs.on_enqueue(action, deps, _NO_DANGLING)
            if node.waiting == 0:
                node.transition(ActionState.READY)
                node.t_ready = now
                ready.append(action)
        self._totals["enqueued"] += len(nodes)
        self._outstanding += len(nodes)
        per_stream: Dict[int, List] = {}
        for action in instance.actions:
            entry = per_stream.get(action.stream.id)
            if entry is None:
                per_stream[action.stream.id] = [action.stream, 1]
            else:
                entry[1] += 1
        tracer = self.runtime.tracer
        for stream, count in per_stream.values():
            stats = self._stream_stats(stream)
            stats.enqueued += count
            stats.depth += count
            if stats.depth > stats.max_depth:
                stats.max_depth = stats.depth
            if stream.namespace:
                self._ns_inflight[stream.namespace] = (
                    self._ns_inflight.get(stream.namespace, 0) + count
                )
            tracer.counter(f"sched:{stream.lane}", now, stats.depth)
        return ready

    @caller_locked("_lock")
    def _resolve_deps(
        self, action: "Action", window_deps: List["Action"]
    ) -> Tuple[List[ActionNode], List["Action"], List[HEvent]]:
        """Resolve and validate every dependence before mutating the
        graph, so a rejected enqueue leaves no zombie node behind.

        Lock held. Returns ``(dep_nodes, dep_actions, dangling)``:
        the live producer nodes to edge against, every producer action
        (live or finished) for the observers, and any dangling waits an
        observer claimed.
        """
        dep_nodes: List[ActionNode] = []
        dangling: List[HEvent] = _NO_DANGLING
        dep_actions: List["Action"] = window_deps
        for prev in window_deps:
            dep_node = self.graph.get(prev)
            if dep_node is not None:  # retired concurrently (defensive)
                dep_nodes.append(dep_node)
        if action.deps:
            # Explicit waits may duplicate each other or a window
            # dependence; the common enqueue has none, so the dedup
            # set is built only on this path. ``dep_actions`` keeps
            # every waited action, including already-completed ones
            # (capture mode completes everything instantly, so the
            # live graph alone would record no edges at all).
            seen = {prev.seq for prev in window_deps}
            for ev in action.deps:
                dep = ev.action
                if dep is not None:
                    if dep.seq in seen:
                        continue
                    seen.add(dep.seq)
                    dep_actions.append(dep)
                dep_node = self.graph.get(dep)
                if dep_node is not None:
                    dep_nodes.append(dep_node)
                elif not ev.is_complete():
                    # An observer (the capture recorder) may claim the
                    # dangling wait as a diagnostic instead of an
                    # error. Every observer gets to see it (no
                    # short-circuit).
                    claims = [
                        obs.on_dangling_wait(action, ev)
                        for obs in self.observers
                    ]
                    if any(claims):
                        if dangling is _NO_DANGLING:
                            dangling = []
                        dangling.append(ev)
                        continue
                    raise HStreamsBadArgument(
                        f"{action.display!r} waits on an event unknown to "
                        "this runtime's scheduler; cross-runtime event "
                        "dependences are not supported"
                    )
        return dep_nodes, dep_actions, dangling

    @caller_locked("_lock")
    def _admit(
        self,
        action: "Action",
        now: float,
        dep_nodes: List[ActionNode],
        dep_actions: List["Action"],
        dangling: List[HEvent],
    ) -> bool:
        """Final admission stage, shared by enqueue and replay.

        Lock held; dependences already resolved. Checks admission
        poisoning, inserts the graph node with its edges, mints the
        completion event, updates the window and the stats, notifies
        observers, and returns whether the action is immediately
        dispatchable (no unfinished dependences, not poisoned).
        """
        stream = action.stream
        backend = self.runtime.backend
        # Determinism across enqueue/failure interleavings: work
        # admitted *after* a producer failed must poison exactly
        # like work admitted before (failed actions have already
        # left the live graph and the stream window, so the edge
        # machinery alone would happily run it on garbage).
        poison = self._admission_poison(action, dep_actions)
        node = self.graph.add(action, now)
        action.completion = HEvent(backend, backend.make_handle(), action)
        self.graph.add_edges(dep_nodes, node)
        stream.window.add(action)
        stats = self._stream_stats(stream)
        stats.enqueued += 1
        stats.depth += 1
        if stats.depth > stats.max_depth:
            stats.max_depth = stats.depth
        if stream.namespace:
            self._ns_inflight[stream.namespace] = (
                self._ns_inflight.get(stream.namespace, 0) + 1
            )
        self._totals["enqueued"] += 1
        self._outstanding += 1
        self.runtime.tracer.counter(f"sched:{stream.lane}", now, stats.depth)
        for obs in self.observers:
            obs.on_enqueue(action, dep_actions, dangling)
        if poison is not None:
            self._cancel_subgraph(node, poison, now)
        elif node.waiting == 0:
            node.transition(ActionState.READY)
            node.t_ready = now
            return True
        return False

    @caller_locked("_lock")
    def _admission_poison(
        self, action: "Action", dep_actions: Sequence["Action"]
    ) -> Optional[BaseException]:
        """Root error poisoning ``action`` at admission, if any.

        Called with the lock held, before the node exists. An action is
        poisoned on arrival when (under the poison/retry policies) one
        of its resolved producers — an explicit event wait, a window
        dependence, or a replayed template edge — is a failed/cancelled
        action, or its operands conflict with one: the ordering edge
        the dead producer would have supplied.
        """
        if not self._poisoned or self.failure_policy == "fail_fast":
            return None
        for dep in dep_actions:
            if dep.seq in self._poisoned:
                return self._poisoned[dep.seq][1]
        for dead, error in self._poisoned.values():
            if dead.conflicts_with(action):
                return error
        return None

    # -- executor callbacks --------------------------------------------------------

    def on_start(self, action: "Action", when: Optional[float] = None) -> None:
        """Executor callback: real (or virtual) execution began."""
        with self._lock:
            node = self.graph.get(action)
            if node is None:  # already retired (defensive)
                return
            node.transition(ActionState.RUNNING)
            node.t_start = when if when is not None else self.runtime.backend.now()

    @property
    def failure_policy(self) -> str:
        """The owning runtime's failure policy (defaults to poison)."""
        return getattr(self.runtime, "failure_policy", "poison")

    def on_complete(
        self,
        action: "Action",
        when: Optional[float] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Executor callback: the action finished (or failed).

        On success: signals the completion event, retires the node and
        its stream window entry, folds lifecycle timings into the
        metrics, and dispatches every dependent whose last dependence
        this was.

        On failure the configured policy applies. Under ``"retry"``, a
        transient error (:func:`~repro.core.errors.is_transient`) with
        attempts remaining re-dispatches the action after capped
        exponential backoff — the node stays live and its completion
        event does not fire. A terminal failure records the error in
        :attr:`failure`, then transitively **cancels** the dependents
        (they never run; their completion events fire with a
        :class:`~repro.core.errors.HStreamsCancelled` chained to the
        root error). ``"fail_fast"`` additionally cancels every other
        still-ENQUEUED action in the graph.
        """
        backend = self.runtime.backend
        to_dispatch: List["Action"] = []
        retry_delay: Optional[float] = None
        with self._lock:
            node = self.graph.get(action)
            if node is None:  # double completion (defensive)
                return
            end = when if when is not None else backend.now()
            if error is not None:
                cfg = self.runtime.config
                if (
                    self.failure_policy == "retry"
                    and is_transient(error)
                    and node.attempts < cfg.retry_limit
                ):
                    node.attempts += 1
                    retry_delay = min(
                        cfg.retry_backoff_s
                        * cfg.retry_backoff_factor ** (node.attempts - 1),
                        cfg.retry_backoff_max_s,
                    )
                    stream = action.stream
                    assert stream is not None
                    stats = self._stream_stats(stream)
                    stats.retried += 1
                    self._totals["retried"] += 1
                    tracer = self.runtime.tracer
                    tracer.record(
                        f"retry:{stream.lane}",
                        end,
                        end + retry_delay,
                        f"retry {node.attempts}: {action.display}",
                        kind="retry",
                    )
                    tracer.counter(f"retry:{stream.lane}", end, stats.retried)
                    # Back to READY for re-dispatch. A fault raised
                    # before on_start leaves the node READY already.
                    node.transition(ActionState.READY)
                    node.t_start = None
                else:
                    self.failure.record(
                        error,
                        namespace=(
                            action.stream.namespace if action.stream else ""
                        ),
                    )
                    node.t_end = end
                    node.error = error
                    node.transition(ActionState.FAILED)
                    self._finish_node(node, end, to_dispatch)
            else:
                node.t_end = end
                node.transition(ActionState.COMPLETE)
                self._finish_node(node, end, to_dispatch)
            if self._sanitizer is not None:
                self._sanitizer.check_scheduler(self)
        if retry_delay is not None:
            backend.execute_after(action, retry_delay)
        for nxt in to_dispatch:
            backend.execute(nxt)

    @caller_locked("_lock")
    def _finish_node(
        self,
        node: ActionNode,
        end: float,
        to_dispatch: List["Action"],
    ) -> None:
        """Terminal bookkeeping shared by completion, failure, and
        cancellation (lock held; ``node`` already in a terminal state
        with ``t_end``/``error`` set).

        Fires the completion event, records and folds metrics, retires
        the window entry, then releases (on success) or transitively
        cancels (on failure) the dependents.
        """
        backend = self.runtime.backend
        action = node.action
        assert action.completion is not None
        action.completion.timestamp = end
        backend.signal_completion(action.completion, end)
        record = node.record()
        action.completion.record = record
        if self._records.maxlen != 0:
            self._records.append(record)
        self._fold(node, record)
        for obs in self.observers:
            obs.on_action_complete(action, record)
        stream = action.stream
        assert stream is not None
        stream.window.retire(action)
        stats = self._stream_stats(stream)
        stats.depth -= 1
        if stream.namespace:
            self._ns_inflight[stream.namespace] -= 1
        self.runtime.tracer.counter(f"sched:{stream.lane}", end, stats.depth)
        failed = node.state is not ActionState.COMPLETE
        if failed:
            assert node.error is not None
            self._poisoned[action.seq] = (action, node.error)
            root = node.error
            if isinstance(root, HStreamsCancelled) and root.__cause__ is not None:
                root = root.__cause__
            for dep_node in node.dependents:
                self._cancel_subgraph(dep_node, root, end)
            if (
                self.failure_policy == "fail_fast"
                and node.state is ActionState.FAILED
            ):
                # Graph-wide cancellation stops at the namespace border:
                # a tenant's fail_fast takes down that tenant's pending
                # work, never another tenant's (or the shared default
                # namespace's). Classic runtimes (ns == "") keep the
                # original everything-cancels semantics.
                ns = stream.namespace
                for other in self.graph.nodes():
                    if other.state is ActionState.ENQUEUED and (
                        not ns
                        or (
                            other.action.stream is not None
                            and other.action.stream.namespace == ns
                        )
                    ):
                        self._cancel_subgraph(other, root, end)
        else:
            for dep_node in node.dependents:
                if dep_node.state.is_terminal:
                    continue
                dep_node.waiting -= 1
                if dep_node.waiting == 0 and dep_node.state is ActionState.ENQUEUED:
                    dep_node.transition(ActionState.READY)
                    dep_node.t_ready = end
                    to_dispatch.append(dep_node.action)
        node.dependents = []
        self.graph.pop(node)
        self._outstanding -= 1
        if self._outstanding == 0:
            self._idle.notify_all()

    @caller_locked("_lock")
    def _cancel_subgraph(
        self, node: ActionNode, root: BaseException, end: float
    ) -> None:
        """Poison ``node`` (and, transitively, its dependents) into
        CANCELLED because producer work it needs failed with ``root``.

        Lock held. READY/RUNNING nodes cannot be recalled from the
        executor and are left to finish normally — only not-yet-released
        (ENQUEUED) work is cancelled, which is exactly the set that
        would otherwise run on garbage inputs.
        """
        if node.state is not ActionState.ENQUEUED:
            return
        err = HStreamsCancelled(
            f"{node.action.display!r} cancelled: a producer it depends on "
            f"failed ({type(root).__name__}: {root})"
        )
        err.__cause__ = root
        node.error = err
        node.t_end = end
        node.transition(ActionState.CANCELLED)
        self._finish_node(node, end, [])

    @caller_locked("_lock")
    def _fold(self, node, record: ActionRecord) -> None:
        """Accumulate one finished node into the aggregates."""
        stats = self._stream_stats(node.action.stream)
        if node.state is ActionState.FAILED:
            stats.failed += 1
            self._totals["failed"] += 1
        elif node.state is ActionState.CANCELLED:
            stats.cancelled += 1
            self._totals["cancelled"] += 1
        else:
            stats.completed += 1
            self._totals["completed"] += 1
        stats.dep_stall_s += record.dep_stall
        stats.dispatch_stall_s += record.dispatch_stall
        stats.exec_s += record.exec_time
        self._totals["dep_stall_s"] += record.dep_stall
        self._totals["dispatch_stall_s"] += record.dispatch_stall
        self._totals["exec_s"] += record.exec_time
        kind = self._by_kind[record.kind]
        kind["count"] += 1
        kind["dep_stall_s"] += record.dep_stall
        kind["exec_s"] += record.exec_time

    # -- observer notifications ---------------------------------------------------

    def notify_host_sync(
        self,
        kind: str,
        stream: Optional["Stream"] = None,
        events: Sequence[HEvent] = (),
    ) -> None:
        """Runtime callback: the source thread performed a blocking sync.

        Host synchronizations are happens-before edges (everything the
        host observed orders before whatever it enqueues next), so the
        hazard analyzer needs to see them even when the backend had
        nothing left to wait for.
        """
        with self._lock:
            for obs in self.observers:
                obs.on_host_sync(kind, stream=stream, events=list(events))

    def notify_buffer(
        self, kind: str, buf: "Buffer", domain: Optional[int] = None
    ) -> None:
        """Runtime callback: buffer lifecycle transition (create /
        destroy / evict), forwarded to observers for lifetime lints."""
        with self._lock:
            for obs in self.observers:
                obs.on_buffer(kind, buf, domain=domain)

    # -- queries -----------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Number of admitted, not-yet-finished actions."""
        with self._lock:
            return self._outstanding

    def enqueue_time(self, action: "Action") -> float:
        """The backend-clock time at which ``action`` was admitted."""
        with self._lock:
            node = self.graph.get(action)
            return node.t_enqueue if node is not None else 0.0

    def wait_idle(self, timeout: Optional[float] = None) -> None:
        """Block the calling (host) thread until no action is in flight.

        With ``timeout`` (wall seconds), raises
        :class:`~repro.core.errors.HStreamsTimedOut` if work is still
        outstanding when it expires.
        """
        with self._idle:
            if timeout is None:
                while self._outstanding > 0:
                    self._idle.wait()
                return
            deadline = time.monotonic() + timeout
            while self._outstanding > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise HStreamsTimedOut(
                        f"wait_all timed out after {timeout} s with "
                        f"{self._outstanding} action(s) outstanding"
                    )
                self._idle.wait(remaining)

    def clear_failure(
        self, namespace: Optional[str] = None
    ) -> List[BaseException]:
        """Reset the failure ledger and the poison tombstones.

        After this, new enqueues no longer poison against past failures
        and host waits stop re-raising. Returns the dropped errors.
        With ``namespace`` given, only that namespace's ledger entries
        and tombstones drop — other tenants stay poisoned.
        """
        with self._lock:
            if namespace is None:
                self._poisoned.clear()
            else:
                self._poisoned = {
                    seq: entry
                    for seq, entry in self._poisoned.items()
                    if not (
                        entry[0].stream is not None
                        and entry[0].stream.namespace == namespace
                    )
                }
            return self.failure.clear(namespace)

    def inflight_touching(
        self, buf: "Buffer", domain: Optional[int] = None
    ) -> List["Action"]:
        """Live actions with an operand on ``buf``.

        With ``domain`` given, only actions whose stream sinks into that
        domain count — the query behind the busy check in
        :meth:`~repro.core.runtime.HStreams.buffer_evict`.
        """
        with self._lock:
            out: List["Action"] = []
            for node in self.graph.nodes():
                a = node.action
                if domain is not None and (
                    a.stream is None or a.stream.domain != domain
                ):
                    continue
                if any(op.buffer is buf for op in a.operands):
                    out.append(a)
            return out

    def find_stalled(self) -> List["Action"]:
        """Actions that can never run because nothing can unblock them."""
        with self._lock:
            return [n.action for n in self.graph.stalled()]

    def pending_completions(self, stream: "Stream") -> List[HEvent]:
        """Completion events of the stream's still-incomplete actions,
        snapshotted under the scheduler lock (the window's live set is
        guarded state; executor threads retire entries concurrently)."""
        with self._lock:
            return stream.window.pending_completions()

    # -- deep checks (rtsan) --------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Deep-check every scheduler bookkeeping invariant.

        Recomputes from first principles and diffs against the
        incrementally-maintained state: the outstanding counter vs the
        live graph, per-node lifecycle legality (live nodes are
        ENQUEUED/READY/RUNNING; ENQUEUED implies unfinished producers;
        ``waiting`` matches a recount over the producers' dependent
        lists), per-stream depth vs the live nodes of that stream, and
        each stream window's conflict index vs a from-scratch rebuild
        (:meth:`~repro.core.dependences.StreamWindow.check_index` — the
        naive-oracle equivalence). Returns human-readable problems;
        empty means consistent. Under rtsan this runs after every
        admission and completion transition.
        """
        with self._lock:
            return self._check_invariants_locked()

    @caller_locked("_lock")
    def _check_invariants_locked(self) -> List[str]:
        problems: List[str] = []
        nodes = list(self.graph.nodes())
        if self._outstanding != len(nodes):
            problems.append(
                f"outstanding counter {self._outstanding} != "
                f"{len(nodes)} live graph nodes"
            )
        live_states = (
            ActionState.ENQUEUED,
            ActionState.READY,
            ActionState.RUNNING,
        )
        incoming: Dict[int, int] = {}
        per_stream: Dict[int, int] = {}
        for node in nodes:
            if node.state not in live_states:
                problems.append(
                    f"{node.action.display!r} is live but in terminal "
                    f"state {node.state.name}"
                )
            for dep in node.dependents:
                if not dep.state.is_terminal:
                    incoming[dep.action.seq] = (
                        incoming.get(dep.action.seq, 0) + 1
                    )
            stream = node.action.stream
            if stream is not None:
                per_stream[stream.id] = per_stream.get(stream.id, 0) + 1
        for node in nodes:
            expected = incoming.get(node.action.seq, 0)
            if node.state is ActionState.ENQUEUED:
                if node.waiting != expected:
                    problems.append(
                        f"{node.action.display!r} waiting={node.waiting} "
                        f"but {expected} live producer edge(s)"
                    )
                if node.waiting <= 0:
                    problems.append(
                        f"{node.action.display!r} is ENQUEUED with "
                        f"waiting={node.waiting} (should be READY)"
                    )
            elif node.state in live_states and node.waiting != 0:
                problems.append(
                    f"{node.action.display!r} is {node.state.name} with "
                    f"waiting={node.waiting}"
                )
        for stats in self._streams.values():
            live_here = per_stream.get(stats.stream.id, 0)
            if stats.depth != live_here:
                problems.append(
                    f"stream {stats.stream.name!r} depth={stats.depth} "
                    f"but {live_here} live node(s)"
                )
            problems.extend(
                stats.stream.window.check_index(
                    f"stream {stats.stream.name!r}"
                )
            )
        per_ns: Dict[str, int] = {}
        for node in nodes:
            stream = node.action.stream
            if stream is not None and stream.namespace:
                per_ns[stream.namespace] = per_ns.get(stream.namespace, 0) + 1
        for ns, counted in self._ns_inflight.items():
            live_here = per_ns.get(ns, 0)
            if counted != live_here:
                problems.append(
                    f"namespace {ns!r} in-flight counter {counted} but "
                    f"{live_here} live node(s)"
                )
        return problems

    # -- metrics --------------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """A point-in-time snapshot of scheduling observability data.

        Keys:

        * ``actions`` — enqueued / completed / failed / cancelled /
          retried / in-flight counts;
        * ``lifecycle`` — total dependence-stall, dispatch-stall, and
          execution seconds across all finished actions;
        * ``by_kind`` — the same split per action kind;
        * ``streams`` — per-stream queue depth (current and high-water),
          throughput counts, and stall totals;
        * ``records`` — the most recent per-action lifecycle records
          (bounded by ``RuntimeConfig.metrics_history``).
        """
        with self._lock:
            return {
                "actions": {
                    "enqueued": self._totals["enqueued"],
                    "completed": self._totals["completed"],
                    "failed": self._totals["failed"],
                    "cancelled": self._totals["cancelled"],
                    "retried": self._totals["retried"],
                    "in_flight": self._outstanding,
                },
                "lifecycle": {
                    "dep_stall_s": self._totals["dep_stall_s"],
                    "dispatch_stall_s": self._totals["dispatch_stall_s"],
                    "exec_s": self._totals["exec_s"],
                },
                "by_kind": {k: dict(v) for k, v in self._by_kind.items()},
                "streams": {
                    sid: stats.snapshot() for sid, stats in self._streams.items()
                },
                "namespaces": self._namespace_metrics(),
                "records": list(self._records),
            }

    @caller_locked("_lock")
    def _namespace_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Per-namespace aggregates over the namespace's streams.

        Empty-namespace streams (the classic single-user runtime) are
        not aggregated — the block exists for the multi-tenant service
        tier, where each tenant session owns one namespace.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for stats in self._streams.values():
            ns = stats.stream.namespace
            if not ns:
                continue
            agg = out.get(ns)
            if agg is None:
                agg = out[ns] = {
                    "streams": 0,
                    "enqueued": 0,
                    "completed": 0,
                    "failed": 0,
                    "cancelled": 0,
                    "retried": 0,
                    "dep_stall_s": 0.0,
                    "exec_s": 0.0,
                    "in_flight": self._ns_inflight.get(ns, 0),
                    "quota": self.namespace_quotas.get(ns),
                }
            agg["streams"] += 1
            agg["enqueued"] += stats.enqueued
            agg["completed"] += stats.completed
            agg["failed"] += stats.failed
            agg["cancelled"] += stats.cancelled
            agg["retried"] += stats.retried
            agg["dep_stall_s"] += stats.dep_stall_s
            agg["exec_s"] += stats.exec_s
        return out
