"""Process backend: true multi-domain parallelism past the GIL.

Both existing backends execute Python compute kernels under one GIL, so
the thread backend cannot show real multi-domain overlap on CPU-bound
work. This backend runs one worker *process* per card domain and backs
every card-domain buffer instance with a POSIX shared-memory segment
(``multiprocessing.shared_memory``):

* the host process maps every segment, so H2D/D2H transfers stay the
  thread backend's single ``np.copyto`` memcpys over shared mappings
  (host-as-target transfers and elided transfers remain zero-copy);
* card-domain compute actions are shipped to the owning domain's worker
  over a per-worker command queue; the worker resolves operand specs to
  numpy views of the same segments and runs the kernel with its *own*
  interpreter and its own GIL — CPU-bound kernels on different domains
  genuinely overlap;
* a completion pump thread drains one shared done-queue, matches
  completions to in-flight actions, and wakes the stream-slot thread
  that dispatched them, which then reports through the inherited
  :meth:`ThreadBackend._run` epilogue — so ``on_start``/``on_complete``
  ordering, fault injection, the post-hoc action timeout, tracing, and
  retry backoff behave cell-for-cell like the thread backend.

Everything that is not a card-domain compute (transfers, host-domain
computes, syncs) — and any compute whose kernel or extra arguments
cannot cross a process boundary — executes host-side exactly as the
thread backend would. That fallback is always correct because the host
maps every segment; it only costs the parallelism for that one action
(counted in ``backend_metrics()["fallback_actions"]``).

Picklability is the remote-eligibility contract, under *every* start
method: a kernel callable that pickles (module-level function, builtin,
``operator`` member, functools partial of those) executes in the
worker; one that does not (lambdas, closures) executes host-side. This
is deliberate, not merely a transport constraint — a closure is exactly
the kernel that can capture host-process state (counters, lists, test
fixtures), and running it in a forked child would silently drop those
side effects. The gate keeps thread-backend programs semantically
identical on this backend, which is what lets the backend-parity suites
run here unchanged.

Segment lifecycle: the host creates each segment (its resource tracker
makes the unlink crash-safe), tells workers to attach lazily by name,
and refcounts attachments. Evict/destroy sends ``forget`` to every
attached worker and unlinks eagerly — the ``/dev/shm`` entry is gone
immediately; the memory itself is freed when the last mapping closes.
Because the memory manager deletes the instance's numpy view *after*
the evict hook runs, the host-side ``close()`` is deferred to a
graveyard drained once the view is gone (``shm.close()`` raises
``BufferError`` while exports exist).

Worker death (kill/OOM/segfault) is detected by the pump via
``Process.exitcode``: every action in flight on the dead worker fails
with a transient :class:`~repro.core.errors.HStreamsBackendDied`, so
waits never hang — under ``failure_policy="retry"`` the next dispatch
respawns a fresh worker and the action re-runs there.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as _queue
import threading
import time
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.actions import Action, ActionKind, Operand
from repro.core.buffer import Buffer
from repro.core.errors import (
    HStreamsBackendDied,
    HStreamsInternalError,
    is_transient,
    mark_transient,
)
from repro.core.thread_backend import ThreadBackend

__all__ = ["ProcessBackend"]


# ---------------------------------------------------------------------------
# Worker side (module-level so the "spawn" start method can pickle it)
# ---------------------------------------------------------------------------


def _worker_detach_resource_tracker() -> None:
    """Disconnect this worker process from the resource tracker.

    Two reasons, both load-bearing:

    * **Fork safety.** ``ResourceTracker._lock`` is a process-private
      ``threading.RLock``. A forked worker's memory image can contain
      it *held* — the host creates segments (``make_instance`` →
      ``register``) on one slot thread while another slot thread forks
      a worker — and the copy is never released in the child, so the
      worker's first segment attach would deadlock inside
      ``ensure_running`` before it ever read a command.
    * **Ownership.** Segments are the host's (see the class docstring):
      the host registers them with *its* tracker for crash-safe unlink.
      Attaching re-registers the name (no ``track=`` parameter before
      3.13), and a worker must never register or unregister in the
      shared tracker — unregistering would destroy the host's
      crash-safety, and registering is at best a redundant set-add.

    Patching the module attributes is enough: ``shared_memory`` calls
    ``resource_tracker.register(...)`` by attribute lookup.
    """
    from multiprocessing import resource_tracker

    resource_tracker.register = lambda *_a, **_k: None
    resource_tracker.unregister = lambda *_a, **_k: None
    resource_tracker.ensure_running = lambda *_a, **_k: None


def _worker_attach(cache: Dict[str, shared_memory.SharedMemory], name: str):
    """Attach (and cache) a host-created segment by name."""
    try:
        return cache[name]
    except KeyError:
        seg = shared_memory.SharedMemory(name=name)
        cache[name] = seg
        return seg


def _worker_resolve(cache: Dict[str, shared_memory.SharedMemory], spec: Tuple):
    """Rebuild one kernel argument from its picklable wire spec."""
    tag = spec[0]
    if tag == "obj":
        return spec[1]
    if tag == "view":
        _, name, offset, nbytes, dtype, shape = spec
        seg = _worker_attach(cache, name)
        flat = np.ndarray((nbytes,), dtype=np.uint8, buffer=seg.buf, offset=offset)
        typed = flat.view(dtype if dtype is not None else np.float64)
        return typed.reshape(shape) if shape is not None else typed
    if tag == "flat":
        _, name, nbytes = spec
        seg = _worker_attach(cache, name)
        return np.ndarray((nbytes,), dtype=np.uint8, buffer=seg.buf)
    raise ValueError(f"unknown operand spec tag {tag!r}")


def _worker_main(domain: int, cmd_q, done_q, kernels: Dict[str, Any]) -> None:
    """Per-domain worker loop: attach segments, run kernels, report."""
    _worker_detach_resource_tracker()
    cache: Dict[str, shared_memory.SharedMemory] = {}
    fns: Dict[str, Any] = dict(kernels)
    while True:
        cmd = cmd_q.get()
        if cmd is None:
            break
        tag = cmd[0]
        if tag == "forget":
            seg = cache.pop(cmd[1], None)
            if seg is not None:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - no views outlive exec
                    cache[cmd[1]] = seg
            continue
        # ("exec", seq, kernel_name, fn_bytes_or_None, arg_specs)
        _, seq, kname, fn_bytes, specs = cmd
        t0 = time.perf_counter()
        err_bytes = None
        transient = False
        try:
            if fn_bytes is not None:
                fns[kname] = pickle.loads(fn_bytes)
            fn = fns[kname]
            args = [_worker_resolve(cache, s) for s in specs]
            fn(*args)
            del args
        except BaseException as exc:  # noqa: BLE001 - shipped to the host
            transient = is_transient(exc)
            try:
                err_bytes = pickle.dumps(exc)
            except Exception:
                err_bytes = pickle.dumps(
                    RuntimeError(f"{type(exc).__name__}: {exc}")
                )
        done_q.put(
            ("done", domain, seq, time.perf_counter() - t0, err_bytes, transient)
        )
    for seg in cache.values():
        try:
            seg.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


# ---------------------------------------------------------------------------
# Host-side bookkeeping
# ---------------------------------------------------------------------------


class _Segment:
    """A host-created shared-memory segment backing one (buffer, domain)."""

    __slots__ = ("shm", "name", "nbytes", "attached", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory, nbytes: int):
        self.shm = shm
        self.name = shm.name
        self.nbytes = nbytes
        #: Worker domains that were told this segment's name (refcount).
        self.attached: Set[int] = set()
        self.unlinked = False


class _Worker:
    """One spawned worker process plus its command-side state."""

    __slots__ = ("domain", "process", "cmd_q", "known_kernels", "inflight")

    def __init__(self, domain: int, process, cmd_q, known_kernels: Set[str]):
        self.domain = domain
        self.process = process
        self.cmd_q = cmd_q
        #: Kernel names the worker already holds a callable for.
        self.known_kernels = known_kernels
        #: Action seqs shipped but not yet completed (for death reaping).
        self.inflight: Set[int] = set()


class _Remote:
    """Host-side wait state for one action executing in a worker."""

    __slots__ = ("event", "domain", "error", "duration")

    def __init__(self, domain: int):
        self.event = threading.Event()
        self.domain = domain
        self.error: Optional[BaseException] = None
        self.duration = 0.0


class ProcessBackend(ThreadBackend):
    """One worker process per domain over shared-memory buffer instances."""

    #: How often the completion pump checks worker liveness when idle.
    _REAP_INTERVAL_S = 0.1

    def __init__(self, xfer_workers: int = 4, start_method: Optional[str] = None):
        super().__init__(xfer_workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._start_method = start_method
        self._mp = mp.get_context(start_method)

    # -- lifecycle -------------------------------------------------------------

    def attach(self, runtime) -> None:
        super().attach(runtime)
        # One lock guards workers, segments, in-flight actions, and the
        # metric counters. It is a leaf lock: nothing is acquired under
        # it, and the scheduler lock is never taken while holding it.
        self._plock = threading.Lock()
        self._segments: Dict[Tuple[int, int], _Segment] = {}
        self._graveyard: List[shared_memory.SharedMemory] = []
        self._workers: Dict[int, _Worker] = {}
        self._inflight: Dict[int, _Remote] = {}
        self._ever_died: Set[int] = set()
        self._done_q = None
        self._pump_thread: Optional[threading.Thread] = None
        self._pump_stop = threading.Event()
        self._m: Dict[str, float] = {
            "remote_actions": 0,
            "fallback_actions": 0,
            "commands_sent": 0,
            "worker_deaths": 0,
            "respawns": 0,
            "bytes_zero_copy": 0,
            "bytes_copied": 0,
            "segments_created": 0,
            "segments_unlinked": 0,
            "ipc_wait_s": 0.0,
            "worker_exec_s": 0.0,
        }

    def close(self) -> None:
        # Drain the stream/xfer pools first: no new dispatches after this.
        super().close()
        with self._plock:
            workers = list(self._workers.values())
            self._workers.clear()
        for w in workers:
            try:
                w.cmd_q.put(None)
            except Exception:
                pass
        for w in workers:
            w.process.join(timeout=2.0)
            if w.process.is_alive():  # pragma: no cover - stuck worker
                w.process.terminate()
                w.process.join(timeout=1.0)
            try:
                w.cmd_q.close()
            except Exception:
                pass
        self._pump_stop.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=2.0)
            self._pump_thread = None
        if self._done_q is not None:
            try:
                self._done_q.close()
            except Exception:
                pass
            self._done_q = None
        # fini() does not destroy live buffers; unlink whatever remains
        # so no /dev/shm entry outlives the runtime. The host-side
        # close() of still-viewed segments stays deferred (the caller
        # may hold wrapped arrays); unlink alone removes the leak.
        with self._plock:
            segs = list(self._segments.values())
            self._segments.clear()
        for seg in segs:
            self._unlink(seg)
        self._drain_graveyard()

    # -- instances over shared memory ------------------------------------------

    def make_instance(self, buf: Buffer, domain: int) -> np.ndarray:
        if domain == 0:
            # Host instances keep the thread backend's semantics: the
            # wrapped caller array aliases away, plain allocations stay
            # process-private (host computes run host-side anyway).
            return super().make_instance(buf, domain)
        shm = shared_memory.SharedMemory(create=True, size=max(1, buf.nbytes))
        seg = _Segment(shm, buf.nbytes)
        with self._plock:
            self._segments[(buf.uid, domain)] = seg
            self._m["segments_created"] += 1
        # Linux zero-fills fresh segments, matching np.zeros parity.
        return np.ndarray((buf.nbytes,), dtype=np.uint8, buffer=shm.buf)

    def on_instance_evict(self, buf: Buffer, domain: int) -> None:
        if domain != 0:
            self._release_segment((buf.uid, domain))

    def on_buffer_destroy(self, buf: Buffer) -> None:
        with self._plock:
            keys = [k for k in self._segments if k[0] == buf.uid]
        for key in keys:
            self._release_segment(key)

    def _release_segment(self, key: Tuple[int, int]) -> None:
        with self._plock:
            seg = self._segments.pop(key, None)
            if seg is None:
                return
            holders = [
                self._workers.get(d)
                for d in seg.attached
                if d in self._workers
            ]
        for w in holders:
            if w is not None and w.process.is_alive():
                try:
                    w.cmd_q.put(("forget", seg.name))
                except Exception:
                    pass
        self._unlink(seg)
        self._drain_graveyard()

    def _unlink(self, seg: _Segment) -> None:
        if not seg.unlinked:
            seg.unlinked = True
            try:
                seg.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            with self._plock:
                self._m["segments_unlinked"] += 1
        # The manager deletes the instance's numpy view only after the
        # evict hook returns, so the export is still alive here — defer
        # the mapping close until the view is gone.
        self._graveyard.append(seg.shm)

    def _drain_graveyard(self) -> None:
        kept = []
        for shm in self._graveyard:
            try:
                shm.close()
            except BufferError:
                kept.append(shm)
        self._graveyard[:] = kept

    def live_segment_names(self) -> List[str]:
        """Names of segments currently backing instances (test hook)."""
        with self._plock:
            return sorted(seg.name for seg in self._segments.values())

    # -- workers ----------------------------------------------------------------

    def _kernel_snapshot(self) -> Dict[str, Any]:
        """Registered kernels a new worker can start with.

        Only picklable callables make the cut — even under ``fork``,
        where the child technically inherits closures by memory image.
        See the module docstring: picklability is the semantic gate for
        remote execution, not just the spawn transport's constraint.
        Kernels registered after the worker spawned ship per-command
        (same gate) or fall back to host execution.
        """
        out: Dict[str, Any] = {}
        for name, spec in self.runtime._kernels.items():
            fn = getattr(spec, "fn", None)
            if fn is None:
                continue
            try:
                pickle.dumps(fn)
            except Exception:
                continue
            out[name] = fn
        return out

    def _ensure_worker(self, domain: int) -> _Worker:
        """Return a live worker for ``domain``, spawning (or respawning
        after a death) as needed. Caller holds ``self._plock``."""
        w = self._workers.get(domain)
        if w is not None and w.process.exitcode is None:
            return w
        if w is not None:
            # Died between pump reaps; reap now so its in-flight actions
            # fail instead of hanging behind the fresh worker.
            self._reap_locked(domain, w)
        if self._done_q is None:
            self._done_q = self._mp.Queue()
        if self._pump_thread is None:
            self._pump_thread = threading.Thread(
                target=self._pump, name="hstr-pump", daemon=True
            )
            self._pump_thread.start()
        cmd_q = self._mp.Queue()
        kernels = self._kernel_snapshot()
        proc = self._mp.Process(
            target=_worker_main,
            args=(domain, cmd_q, self._done_q, kernels),
            name=f"hstr-worker-d{domain}",
            daemon=True,
        )
        proc.start()
        w = _Worker(domain, proc, cmd_q, set(kernels))
        self._workers[domain] = w
        if domain in self._ever_died:
            self._m["respawns"] += 1
        return w

    # -- execution ----------------------------------------------------------------

    def _execute(self, action: Action) -> None:
        assert action.stream is not None
        if action.kind is ActionKind.XFER:
            op = action.operands[0]
            with self._plock:
                if action.stream.domain == 0 or action.elided:
                    self._m["bytes_zero_copy"] += op.nbytes
                else:
                    self._m["bytes_copied"] += op.nbytes
            super()._execute(action)
            return
        if action.kind is ActionKind.COMPUTE and action.stream.domain != 0:
            spec = self.runtime.kernel(action.kernel)
            if spec.fn is not None and self._execute_remote(action, spec):
                return
            with self._plock:
                self._m["fallback_actions"] += 1
        super()._execute(action)

    def _remote_plan(
        self, action: Action, spec, worker: _Worker
    ) -> Optional[Tuple[Tuple, List[_Segment]]]:
        """Build the picklable exec command, or None to fall back host-side.

        Caller holds ``self._plock``.
        """
        fn_bytes = None
        if action.kernel not in worker.known_kernels:
            try:
                fn_bytes = pickle.dumps(spec.fn)
            except Exception:
                return None
        assert action.stream is not None
        domain = action.stream.domain
        specs: List[Tuple] = []
        touched: List[_Segment] = []
        for item in action.args:
            if isinstance(item, Operand):
                seg = self._segments.get((item.buffer.uid, domain))
                if seg is None:
                    return None
                specs.append(
                    ("view", seg.name, item.offset, item.nbytes, item.dtype,
                     item.shape)
                )
                touched.append(seg)
            elif isinstance(item, Buffer):
                seg = self._segments.get((item.uid, domain))
                if seg is None:
                    return None
                specs.append(("flat", seg.name, item.nbytes))
                touched.append(seg)
            else:
                try:
                    pickle.dumps(item)
                except Exception:
                    return None
                specs.append(("obj", item))
        return ("exec", action.seq, action.kernel, fn_bytes, specs), touched

    def _execute_remote(self, action: Action, spec) -> bool:
        """Ship a card compute to its domain worker and wait for it.

        Runs on the stream's single host-side slot thread, so stream
        ordering and the inherited ``_run`` epilogue (timeout, tracing,
        ``on_complete``) are untouched. Returns False to fall back.
        """
        assert action.stream is not None
        with self._plock:
            worker = self._ensure_worker(action.stream.domain)
            plan = self._remote_plan(action, spec, worker)
            if plan is None:
                return False
            cmd, touched = plan
            entry = _Remote(worker.domain)
            self._inflight[action.seq] = entry
            worker.inflight.add(action.seq)
            for seg in touched:
                seg.attached.add(worker.domain)
            if cmd[3] is not None:
                worker.known_kernels.add(action.kernel)
            try:
                worker.cmd_q.put(cmd)
            except Exception:
                self._inflight.pop(action.seq, None)
                worker.inflight.discard(action.seq)
                return False
            self._m["remote_actions"] += 1
            self._m["commands_sent"] += 1
        t0 = time.perf_counter()
        entry.event.wait()
        waited = time.perf_counter() - t0
        with self._plock:
            self._m["ipc_wait_s"] += waited
            self._m["worker_exec_s"] += entry.duration
        if entry.error is not None:
            raise entry.error
        return True

    # -- completion pump ----------------------------------------------------------

    def _pump(self) -> None:
        while not self._pump_stop.is_set():
            try:
                msg = self._done_q.get(timeout=self._REAP_INTERVAL_S)
            except (_queue.Empty, OSError, ValueError):
                if self._pump_stop.is_set():
                    break
                self._reap_dead_workers()
                continue
            self._deliver(msg)

    def _deliver(self, msg: Tuple) -> None:
        _, domain, seq, duration, err_bytes, transient = msg
        with self._plock:
            entry = self._inflight.pop(seq, None)
            w = self._workers.get(domain)
            if w is not None:
                w.inflight.discard(seq)
        if entry is None:
            # Already failed by death reaping (the completion raced the
            # exit notice) — the scheduler has the final say on retries.
            return
        error: Optional[BaseException] = None
        if err_bytes is not None:
            try:
                error = pickle.loads(err_bytes)
            except Exception:  # pragma: no cover - defensive
                error = HStreamsInternalError(
                    f"worker error for {seq} could not be unpickled"
                )
            if transient:
                mark_transient(error)
        entry.duration = duration
        entry.error = error
        entry.event.set()

    def _reap_dead_workers(self) -> None:
        with self._plock:
            dead = [
                (d, w)
                for d, w in list(self._workers.items())
                if w.process.exitcode is not None
            ]
        if not dead:
            return
        # Completions may have been queued before the worker died;
        # deliver those first so only truly lost actions fail.
        while True:
            try:
                msg = self._done_q.get_nowait()
            except (_queue.Empty, OSError, ValueError):
                break
            self._deliver(msg)
        with self._plock:
            for domain, w in dead:
                if self._workers.get(domain) is w:
                    self._reap_locked(domain, w)

    def _reap_locked(self, domain: int, w: _Worker) -> None:
        """Fail a dead worker's in-flight actions. Caller holds ``_plock``."""
        self._workers.pop(domain, None)
        self._ever_died.add(domain)
        self._m["worker_deaths"] += 1
        for seq in sorted(w.inflight):
            entry = self._inflight.pop(seq, None)
            if entry is None:
                continue
            entry.error = mark_transient(
                HStreamsBackendDied(
                    f"worker process for domain {domain} "
                    f"(pid {w.process.pid}) exited with code "
                    f"{w.process.exitcode} with action seq {seq} in flight"
                )
            )
            entry.event.set()
        w.inflight.clear()
        try:
            w.cmd_q.close()
        except Exception:
            pass

    # -- observability ------------------------------------------------------------

    def backend_metrics(self) -> Dict[str, Any]:
        """The ``metrics()["backend"]`` block: IPC and segment counters."""
        with self._plock:
            m = dict(self._m)
            workers = {
                d: {
                    "pid": w.process.pid,
                    "alive": w.process.exitcode is None,
                    "queue_depth": len(w.inflight),
                }
                for d, w in self._workers.items()
            }
            live = len(self._segments)
            pending_close = len(self._graveyard)
        remote = max(1, int(m["remote_actions"]))
        return {
            "name": "process",
            "start_method": self._start_method,
            "workers": workers,
            "remote_actions": int(m["remote_actions"]),
            "fallback_actions": int(m["fallback_actions"]),
            "commands_sent": int(m["commands_sent"]),
            "worker_deaths": int(m["worker_deaths"]),
            "respawns": int(m["respawns"]),
            "bytes_zero_copy": int(m["bytes_zero_copy"]),
            "bytes_copied": int(m["bytes_copied"]),
            "ipc_round_trip_s": max(
                0.0, (m["ipc_wait_s"] - m["worker_exec_s"]) / remote
            ),
            "worker_exec_s": m["worker_exec_s"],
            "segments": {
                "created": int(m["segments_created"]),
                "unlinked": int(m["segments_unlinked"]),
                "live": live,
                "pending_close": pending_close,
            },
        }
