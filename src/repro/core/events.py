"""Completion events.

Every enqueued action yields an :class:`HEvent`. Unlike CUDA, no explicit
event creation/destruction is needed (paper §IV), and waits may cover a
*set* of events with any/all semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action

__all__ = ["HEvent"]


class HEvent:
    """Handle for the completion of one enqueued action.

    The backend owns the underlying synchronization object (``handle``):
    a ``threading.Event`` under the thread backend, a sim-engine event
    under the sim backend.
    """

    __slots__ = ("backend", "handle", "action", "timestamp", "record")

    def __init__(self, backend: Any, handle: Any, action: Optional["Action"] = None):
        self.backend = backend
        self.handle = handle
        self.action = action
        #: Completion time (backend clock); set by the scheduler at completion.
        self.timestamp: Optional[float] = None
        #: Lifecycle summary (:class:`~repro.core.graph.ActionRecord`);
        #: set by the scheduler at completion.
        self.record: Optional[Any] = None

    def is_complete(self) -> bool:
        """Non-blocking completion poll."""
        return self.backend.event_done(self)

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block the source thread until this action completes.

        Without an explicit ``timeout``, the owning runtime's
        ``RuntimeConfig.wait_timeout_s`` applies (``None`` = forever).
        """
        if timeout is None:
            runtime = getattr(self.backend, "runtime", None)
            if runtime is not None:
                timeout = runtime.config.wait_timeout_s
        self.backend.wait_events([self], wait_all=True, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self.is_complete() else "pending"
        label = self.action.display if self.action is not None else "?"
        return f"<HEvent {label} {state}>"
