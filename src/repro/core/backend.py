"""The execution backend interface.

The runtime's scheduling logic (FIFO order, dependence relaxation, event
plumbing) is backend-independent; a backend only needs to *execute*
actions whose dependences the runtime has already computed, and to
provide completion handles and a clock. This mirrors the paper's layering
(hStreams above COI above SCIF): the same application code runs on the
thread backend (real execution) or the sim backend (virtual time).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.buffer import Buffer
    from repro.core.events import HEvent
    from repro.core.runtime import HStreams
    from repro.core.stream import Stream

__all__ = ["Backend"]


class Backend(ABC):
    """Execution engine behind an :class:`~repro.core.runtime.HStreams`."""

    runtime: "HStreams"

    @abstractmethod
    def attach(self, runtime: "HStreams") -> None:
        """Bind to a runtime; called once from ``HStreams.__init__``."""

    @abstractmethod
    def make_handle(self) -> Any:
        """A fresh completion handle for a new action's event."""

    @abstractmethod
    def event_done(self, event: "HEvent") -> bool:
        """Non-blocking completion poll for an event of this backend."""

    @abstractmethod
    def make_stream(self, stream: "Stream") -> None:
        """Provision backend state for a newly created stream."""

    @abstractmethod
    def make_instance(self, buf: "Buffer", domain: int) -> None:
        """Instantiate a buffer in a domain (allocating as needed)."""

    def on_buffer_destroy(self, buf: "Buffer") -> None:
        """Release backend state for a destroyed buffer."""

    def on_instance_evict(self, buf: "Buffer", domain: int) -> None:
        """Release backend state for one evicted domain instance."""

    def on_stream_destroy(self, stream: "Stream") -> None:
        """Release backend state for a destroyed (drained) stream."""

    @abstractmethod
    def submit(self, action: "Action") -> None:
        """Schedule an action whose ``deps``/``completion`` are set.

        The action must run only after every event in ``action.deps`` has
        completed, and must trigger ``action.completion`` when done.
        """

    @abstractmethod
    def wait_events(
        self,
        events: List["HEvent"],
        wait_all: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        """Block the source until any/all of ``events`` complete."""

    @abstractmethod
    def wait_all(self) -> None:
        """Block the source until every submitted action completed."""

    @abstractmethod
    def now(self) -> float:
        """The source-side clock (wall or virtual seconds)."""

    def advance_host(self, dt: float) -> None:
        """Charge ``dt`` seconds of API overhead to the source clock.

        Real backends ignore this (wall time passes by itself); the sim
        backend advances its virtual host clock.
        """

    def close(self) -> None:
        """Tear down backend resources."""
