"""The execution backend (executor) interface.

All scheduling lives in :class:`~repro.core.scheduler.Scheduler`: FIFO
policies, dependence edges, ready-set dispatch, completion propagation,
and lifecycle metrics are backend-independent. A backend is a pure
*executor*: it only ever sees actions whose dependences are already
satisfied, runs them, and reports lifecycle events back to the
scheduler. This mirrors the paper's layering (hStreams above COI above
SCIF): the same application code runs on the thread backend (real
execution) or the sim backend (virtual time).

The executor contract for :meth:`Backend.execute`:

1. the scheduler calls ``execute(action)`` exactly once, only after
   every dependence of ``action`` has completed;
2. the backend runs the action (possibly asynchronously), calling
   ``runtime.scheduler.on_start(action, when=...)`` when execution
   begins and ``runtime.scheduler.on_complete(action, when=..., error=...)``
   when it finishes — including on failure, so dependents are released
   and the error surfaces at the next synchronization;
3. the scheduler triggers the action's completion event through
   :meth:`Backend.signal_completion` during ``on_complete``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.buffer import Buffer
    from repro.core.events import HEvent
    from repro.core.runtime import HStreams
    from repro.core.stream import Stream

__all__ = ["Backend"]


class Backend(ABC):
    """Execution engine behind an :class:`~repro.core.runtime.HStreams`."""

    runtime: "HStreams"

    @abstractmethod
    def attach(self, runtime: "HStreams") -> None:
        """Bind to a runtime; called once from ``HStreams.__init__``."""

    @abstractmethod
    def make_handle(self) -> Any:
        """A fresh completion handle for a new action's event."""

    @abstractmethod
    def event_done(self, event: "HEvent") -> bool:
        """Non-blocking completion poll for an event of this backend."""

    @abstractmethod
    def signal_completion(self, event: "HEvent", when: float) -> None:
        """Fire an event's handle; called by the scheduler at completion."""

    @abstractmethod
    def make_stream(self, stream: "Stream") -> None:
        """Provision backend state for a newly created stream."""

    @abstractmethod
    def make_instance(self, buf: "Buffer", domain: int) -> Optional[Any]:
        """Create the backing payload for a buffer instance in a domain.

        Returns the per-domain payload the
        :class:`~repro.core.memory.MemoryManager` stores in
        ``buf.instances`` — a flat uint8 ndarray under the thread
        backend (the caller's own memory for a wrapped host array), or
        ``None`` for data-free sim/capture instances. Backends never
        mutate ``buf.instances`` themselves: the manager is the single
        authority over instance lifecycle.
        """

    def on_buffer_destroy(self, buf: "Buffer") -> None:
        """Release backend state for a destroyed buffer."""

    def on_instance_evict(self, buf: "Buffer", domain: int) -> None:
        """Release backend state for one evicted domain instance."""

    def on_stream_destroy(self, stream: "Stream") -> None:
        """Release backend state for a destroyed (drained) stream."""

    @abstractmethod
    def execute(self, action: "Action") -> None:
        """Run an action whose dependences the scheduler satisfied.

        Must report ``on_start`` / ``on_complete`` back to
        ``runtime.scheduler`` (see the executor contract in the module
        docstring).
        """

    def execute_after(self, action: "Action", delay: float) -> None:
        """Re-run ``action`` after ``delay`` seconds (retry dispatch).

        Called by the scheduler when ``failure_policy="retry"`` backs a
        transient failure off. Semantics are those of :meth:`execute`
        with the start postponed by ``delay`` on this backend's clock.
        The default ignores the delay and re-executes immediately.
        """
        self.execute(action)

    @abstractmethod
    def wait_events(
        self,
        events: List["HEvent"],
        wait_all: bool = True,
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
    ) -> None:
        """Block the source until any/all of ``events`` complete.

        Raises :class:`~repro.core.errors.HStreamsTimedOut` when
        ``timeout`` (seconds on this backend's clock) expires first,
        and must re-raise pending run failures (via
        ``runtime.scheduler.failure.raise_pending()``) rather than
        block forever on events a failed producer will never fire.

        ``scope`` narrows that failure surfacing to one stream
        namespace (the multi-tenant isolation contract: a tenant's wait
        never raises another tenant's error); ``None`` — the default
        and the classic behavior — surfaces any pending failure.
        """

    @abstractmethod
    def wait_all(
        self, timeout: Optional[float] = None, scope: Optional[str] = None
    ) -> None:
        """Block the source until every admitted action completed.

        Same timeout and failure-surfacing contract (including
        ``scope``) as :meth:`wait_events`.
        """

    @abstractmethod
    def now(self) -> float:
        """The source-side clock (wall or virtual seconds)."""

    def advance_host(self, dt: float) -> None:
        """Charge ``dt`` seconds of API overhead to the source clock.

        Real backends ignore this (wall time passes by itself); the sim
        backend advances its virtual host clock.
        """

    def close(self) -> None:
        """Tear down backend resources."""
