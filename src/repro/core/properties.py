"""Property and configuration types for the hStreams runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["MemType", "RuntimeConfig"]


class MemType(enum.Enum):
    """Kinds of memory a buffer may be bound to (paper §IV: hStreams
    allocation APIs support different memory types, unlike OpenMP)."""

    DDR = "ddr"
    HBM = "hbm"
    PERSISTENT = "persistent"


@dataclass
class RuntimeConfig:
    """Tunable overhead and behaviour knobs of the runtime.

    The defaults are calibrated to the paper's §III overhead analysis:

    * ``transfer_overhead_s`` — fixed per-transfer runtime cost; the paper
      measures 20–30 µs for transfers under 128 KB, amortizing to <5 % of
      end-to-end time for multi-MB transfers.
    * ``enqueue_overhead_s`` — source-side cost of any enqueue API call.
    * ``invoke_overhead_s`` — sink-side task invocation cost ("negligible"
      per the paper, but nonzero).
    * ``alloc_latency_s`` / ``alloc_per_mb_s`` — synchronous card-side
      buffer instantiation cost; the paper's conclusions flag synchronous
      MIC-side allocation as a bottleneck. With ``use_buffer_pool`` the
      COI-style 2 MB buffer pool makes re-allocation negligible (the
      OmpSs runs in the paper had the pool disabled, which is exactly the
      "COI allocation overheads were significant" case).
    * ``jitter`` — amplitude of seeded, sporadic compute-time inefficiency
      modeling the software-stack noise behind hStreams' "noticeably
      jagged" Fig. 7 curve; 0 disables it.
    * ``metrics_history`` — how many per-action lifecycle records the
      scheduler retains for ``HStreams.metrics()``; 0 disables record
      retention (aggregates are still kept).
    * ``retry_limit`` / ``retry_backoff_s`` / ``retry_backoff_factor`` /
      ``retry_backoff_max_s`` — under ``failure_policy="retry"``, an
      action failing with a transient error (see
      :func:`~repro.core.errors.mark_transient`) is re-executed up to
      ``retry_limit`` times, waiting
      ``min(retry_backoff_s * retry_backoff_factor**(attempt-1),
      retry_backoff_max_s)`` before each attempt (wall seconds on the
      thread backend, virtual seconds on the sim backend).
    * ``action_timeout_s`` — per-action execution budget, enforced in
      both backends: an action exceeding it fails with
      :class:`~repro.core.errors.HStreamsTimedOut` (the sim backend caps
      the modeled duration at the budget; the thread backend cannot
      preempt a Python kernel, so it marks the action failed when it
      finally returns). ``None`` disables the budget.
    * ``wait_timeout_s`` — default timeout applied to every blocking
      host wait (``event_wait``, ``stream_synchronize``,
      ``thread_synchronize``) that does not pass an explicit timeout;
      ``None`` (the default) waits forever, as before.
    """

    enqueue_overhead_s: float = 4.0e-6
    transfer_overhead_s: float = 2.2e-5
    invoke_overhead_s: float = 5.0e-6
    sync_overhead_s: float = 3.0e-6
    alloc_latency_s: float = 3.0e-4
    alloc_per_mb_s: float = 8.0e-5
    use_buffer_pool: bool = True
    pool_chunk_bytes: int = 2 * 1024 * 1024
    jitter: float = 0.0
    jitter_prob: float = 0.05
    seed: int = 0
    host_mem_bw_gbs: float = 0.0  # 0 -> use the host device's bandwidth
    metrics_history: int = 1024
    retry_limit: int = 3
    retry_backoff_s: float = 2.0e-3
    retry_backoff_factor: float = 2.0
    retry_backoff_max_s: float = 0.25
    action_timeout_s: Optional[float] = None
    wait_timeout_s: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "enqueue_overhead_s",
            "transfer_overhead_s",
            "invoke_overhead_s",
            "sync_overhead_s",
            "alloc_latency_s",
            "alloc_per_mb_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not (0.0 <= self.jitter_prob <= 1.0):
            raise ValueError("jitter_prob must be in [0, 1]")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.pool_chunk_bytes <= 0:
            raise ValueError("pool_chunk_bytes must be > 0")
        if self.metrics_history < 0:
            raise ValueError("metrics_history must be >= 0")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        for name in ("retry_backoff_s", "retry_backoff_factor", "retry_backoff_max_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("action_timeout_s", "wait_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")

    def alloc_cost(self, nbytes: int) -> float:
        """Host-blocking cost of instantiating ``nbytes`` on a card."""
        return self.alloc_latency_s + self.alloc_per_mb_s * nbytes / (1 << 20)

    def zero_overhead(self) -> "RuntimeConfig":
        """A copy with every runtime overhead zeroed (for ablations)."""
        return RuntimeConfig(
            enqueue_overhead_s=0.0,
            transfer_overhead_s=0.0,
            invoke_overhead_s=0.0,
            sync_overhead_s=0.0,
            alloc_latency_s=0.0,
            alloc_per_mb_s=0.0,
            use_buffer_pool=self.use_buffer_pool,
            pool_chunk_bytes=self.pool_chunk_bytes,
            jitter=0.0,
            seed=self.seed,
            metrics_history=self.metrics_history,
            retry_limit=self.retry_limit,
            retry_backoff_s=self.retry_backoff_s,
            retry_backoff_factor=self.retry_backoff_factor,
            retry_backoff_max_s=self.retry_backoff_max_s,
            action_timeout_s=self.action_timeout_s,
            wait_timeout_s=self.wait_timeout_s,
        )
