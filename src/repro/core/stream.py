"""Streams: FIFO task queues bound to a domain and CPU mask.

A stream's *source* endpoint is where the application enqueues actions
(the host); its *sink* endpoint is a set of computing resources — a domain
plus a CPU mask — where the actions occur. Source and sink may be in the
same domain ("host-as-target" streams) or different ones; the interface
is identical either way, which is the uniformity the paper contrasts with
OpenMP's separate host/device constructs.

Streams are identified by plain integers, not opaque pointers (paper §IV,
vs. CUDA).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.dependences import StreamWindow
from repro.core.errors import HStreamsBadArgument

__all__ = ["Stream"]


class Stream:
    """One logical stream. Create via :meth:`HStreams.stream_create`."""

    def __init__(
        self,
        stream_id: int,
        domain: int,
        cpu_mask: Tuple[int, ...],
        strict_fifo: bool = False,
        name: str = "",
        namespace: str = "",
    ):
        if not cpu_mask:
            raise HStreamsBadArgument("a stream needs at least one CPU in its mask")
        if len(set(cpu_mask)) != len(cpu_mask):
            raise HStreamsBadArgument(f"duplicate CPUs in mask {cpu_mask}")
        self.id = stream_id
        self.domain = domain
        self.cpu_mask = tuple(cpu_mask)
        self.strict_fifo = strict_fifo
        self.name = name or f"s{stream_id}"
        #: Isolation namespace (multi-tenant service tier): failures in
        #: one namespace never surface at another namespace's waits, the
        #: scheduler's per-namespace quotas count against it, and
        #: ``metrics()["namespaces"]`` aggregates by it. The empty
        #: default is the classic single-user runtime: fully shared.
        self.namespace = namespace
        # The window view picks the stream's FIFO policy: strict_fifo
        # selects StrictFifoPolicy (CUDA-Streams in-order execution as a
        # scheduler policy, not a special case), else operand relaxation.
        self.window = StreamWindow(strict_fifo=strict_fifo)
        #: Set by the runtime: whether the sink is the source domain, in
        #: which case transfers are aliased away (paper §V).
        self.host_as_target = domain == 0

    @property
    def width(self) -> int:
        """Number of cores the sink owns; tasks expand across all of them."""
        return len(self.cpu_mask)

    @property
    def lane(self) -> str:
        """Trace lane name."""
        return f"d{self.domain}:{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "strict" if self.strict_fifo else "ooo"
        return (
            f"<Stream {self.id} {self.name!r} domain={self.domain} "
            f"width={self.width} {kind}>"
        )
