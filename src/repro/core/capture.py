"""Whole-program capture: record the action graph without dispatching.

Capture mode (``HStreams(capture_only=True)``) swaps the execution
backend for :class:`CaptureBackend`, which completes every action the
moment it is admitted — no kernel runs, no byte is copied, no virtual
time passes. The program therefore runs its full enqueue logic at
Python speed while :class:`ProgramCapture` (a
:class:`~repro.core.scheduler.SchedulerObserver`) records a
:class:`ProgramTrace`: every action with its resolved dependence edges,
every host synchronization, and every buffer lifecycle transition, each
tagged with the user-code source site that caused it.

The trace is what the happens-before engine (:mod:`repro.analysis.hb`)
and the lint passes (:mod:`repro.analysis.lints`) consume. Because
nothing executes, numerical assertions in the captured program will
fail — :func:`~repro.analysis.checker.check_program` treats that as the
end of the capturable prefix, not as a diagnostic.

:func:`capture_session` forces capture mode on every
:class:`~repro.core.runtime.HStreams` constructed inside it, which is
how the CLI checks programs that build their runtimes internally.

These primitives started life inside :mod:`repro.analysis`; they moved
here because graph replay (:mod:`repro.core.replay`) records templates
with the same shadow-window policy recomputation the analyzer uses, and
``core`` cannot depend on ``analysis``. The analyzer re-imports from
here, so ``repro.analysis.capture`` remains a working import path.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.backend import Backend
from repro.core.errors import HStreamsInvalid
from repro.core.scheduler import SchedulerObserver
from repro.core.sites import user_site as _user_site

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.buffer import Buffer
    from repro.core.events import HEvent
    from repro.core.stream import Stream

__all__ = [
    "ActionEvent",
    "SyncEvent",
    "BufferEvent",
    "StreamEvent",
    "ProgramTrace",
    "ProgramCapture",
    "CaptureBackend",
    "capture_session",
    "policy_dep_seqs",
]


class _ShadowWindow:
    """A never-retiring stream history for policy-dep recomputation.

    The scheduler's real :class:`~repro.core.dependences.StreamWindow`
    only holds in-flight work — completed predecessors impose no
    *execution* constraint. The analyzer, however, asks about ordering
    across **all** schedules, where "it happened to be complete at
    enqueue time" is not a guarantee (and under capture everything
    completes instantly, so the real window is always empty). Replaying
    the stream's own policy over this full history yields the
    intra-stream edges as if nothing had completed. The relaxed policy's
    barrier cut-off keeps scans short in barrier-using programs; the
    worst case is O(history) per action.
    """

    __slots__ = ("_actions",)

    def __init__(self) -> None:
        self._actions: List["Action"] = []

    def add(self, action: "Action") -> None:
        self._actions.append(action)

    def live_newest_first(self):
        return reversed(self._actions)


def policy_dep_seqs(shadows: dict, action: "Action") -> Tuple[int, ...]:
    """Intra-stream policy deps of ``action`` over full stream history.

    ``shadows`` maps stream id to the :class:`_ShadowWindow` this call
    maintains; the action is appended after its deps are computed.
    """
    stream = action.stream
    if stream is None:
        return ()
    shadow = shadows.get(stream.id)
    if shadow is None:
        shadow = shadows[stream.id] = _ShadowWindow()
    deps = stream.window.policy.deps_for(shadow, action)
    shadow.add(action)
    return tuple(d.seq for d in deps)


@dataclass(frozen=True)
class ActionEvent:
    """One admitted action, with its ordering edges resolved.

    ``dep_seqs`` are the sequence numbers of the actions this one
    was ordered after — explicit event waits plus the intra-stream FIFO
    policy dependences the scheduler computed. ``dangling`` describes
    waits on events no action of this runtime fires (see the
    ``deadlock`` rule).
    """

    pos: int
    action: "Action"
    dep_seqs: Tuple[int, ...]
    dangling: Tuple[str, ...] = ()
    site: Optional[Tuple[str, int]] = None


@dataclass(frozen=True)
class SyncEvent:
    """A blocking host synchronization.

    ``kind`` is ``event_wait`` (with ``seqs`` the waited actions),
    ``stream_synchronize`` (with ``stream_id``), or
    ``thread_synchronize``.
    """

    pos: int
    kind: str
    stream_id: Optional[int] = None
    seqs: Tuple[int, ...] = ()
    site: Optional[Tuple[str, int]] = None


@dataclass(frozen=True)
class BufferEvent:
    """A buffer lifecycle transition: create, destroy, or evict."""

    pos: int
    kind: str
    buffer: "Buffer"
    domain: Optional[int] = None
    site: Optional[Tuple[str, int]] = None


@dataclass(frozen=True)
class StreamEvent:
    """A stream lifecycle transition: ``create`` or ``destroy``."""

    pos: int
    stream: "Stream"
    kind: str = "create"


@dataclass
class ProgramTrace:
    """The recorded program: lifecycle events in program order."""

    events: List[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.events)

    def actions(self) -> List[ActionEvent]:
        """Just the action events, in program order."""
        return [e for e in self.events if isinstance(e, ActionEvent)]


class ProgramCapture(SchedulerObserver):
    """Scheduler observer that records a :class:`ProgramTrace`.

    One recorder per captured runtime; the runtime registers it in
    ``scheduler.observers`` when constructed with ``capture_only=True``
    (or inside :func:`capture_session`).
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.trace = ProgramTrace()
        self._pos = 0
        self._shadows: dict = {}
        #: Seqs of every captured action, for dangling-wait triage.
        self._seen_seqs: set = set()
        # Dangling events seen since the last on_enqueue, claimed in
        # on_dangling_wait and folded into the next ActionEvent.
        self._pending_dangling: List[str] = []

    def _next_pos(self) -> int:
        self._pos += 1
        return self._pos

    # -- scheduler callbacks ---------------------------------------------------

    def on_dangling_wait(self, action: "Action", event: "HEvent") -> bool:
        # Everything completes (and folds out of the graph) instantly
        # under capture, and capture events never poll complete, so
        # every dependence on an already-captured action lands here:
        # those are ordinary edges, not hazards. Only waits on events no
        # captured action fired are genuinely dangling.
        if event.action is not None and event.action.seq in self._seen_seqs:
            return True
        owner = "another runtime" if event.backend is not self.runtime.backend else (
            "no enqueued action"
        )
        label = event.action.display if event.action is not None else "<bare event>"
        self._pending_dangling.append(f"{label} ({owner})")
        return True  # claimed: record a diagnostic instead of raising

    def on_enqueue(
        self,
        action: "Action",
        deps: List["Action"],
        dangling: List["HEvent"],
    ) -> None:
        described, self._pending_dangling = self._pending_dangling, []
        self._seen_seqs.add(action.seq)
        seqs = {d.seq for d in deps}
        seqs.update(policy_dep_seqs(self._shadows, action))
        self.trace.events.append(
            ActionEvent(
                pos=self._next_pos(),
                action=action,
                dep_seqs=tuple(sorted(seqs)),
                dangling=tuple(described),
                site=_user_site(),
            )
        )

    def on_host_sync(
        self,
        kind: str,
        stream: Optional["Stream"] = None,
        events: Sequence["HEvent"] = (),
    ) -> None:
        seqs = tuple(
            ev.action.seq for ev in events if ev.action is not None
        )
        self.trace.events.append(
            SyncEvent(
                pos=self._next_pos(),
                kind=kind,
                stream_id=stream.id if stream is not None else None,
                seqs=seqs,
                site=_user_site(),
            )
        )

    def on_buffer(
        self, kind: str, buf: "Buffer", domain: Optional[int] = None
    ) -> None:
        self.trace.events.append(
            BufferEvent(
                pos=self._next_pos(),
                kind=kind,
                buffer=buf,
                domain=domain,
                site=_user_site(),
            )
        )

    def on_stream_create(self, stream: "Stream") -> None:
        self.trace.events.append(
            StreamEvent(pos=self._next_pos(), stream=stream, kind="create")
        )

    def on_stream_destroy(self, stream: "Stream") -> None:
        self.trace.events.append(
            StreamEvent(pos=self._next_pos(), stream=stream, kind="destroy")
        )


class _CaptureHandle:
    """Completion flag for capture-mode events."""

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = False


class CaptureBackend(Backend):
    """Executor that completes every action instantly, running nothing.

    Because each action completes during its own admission, dependences
    are always already satisfied at enqueue time, the scheduler's live
    graph never holds more than the action being admitted, and capture
    of arbitrarily long programs stays O(1) in runtime state (the trace
    itself grows, of course).
    """

    def attach(self, runtime) -> None:
        self.runtime = runtime
        self._now = 0.0

    # -- handles & events ------------------------------------------------------

    def make_handle(self) -> _CaptureHandle:
        return _CaptureHandle()

    def event_done(self, event) -> bool:
        # Capture events never *report* completion: the recorded program
        # has not run, and layers that elide synchronization when a
        # producer polls complete (the OmpSs runtime, the linalg
        # dataflow helper) must behave as on a cold machine — otherwise
        # the captured graph would be missing exactly the edges the
        # analyzer exists to check. The scheduler is unaffected: its
        # completion bookkeeping goes through on_complete, and deps on
        # already-folded actions are reclassified by the recorder's
        # on_dangling_wait claim.
        return False

    def signal_completion(self, event, when: float) -> None:
        event.handle.done = True

    # -- provisioning ----------------------------------------------------------

    def make_stream(self, stream) -> None:
        pass

    def make_instance(self, buf, domain: int) -> None:
        return None  # capture instances carry no data

    # -- execution -------------------------------------------------------------

    def execute(self, action) -> None:
        # READY -> COMPLETE directly; no distinct running phase exists.
        self.runtime.scheduler.on_complete(action, when=self._now)

    # -- waiting ---------------------------------------------------------------

    def wait_events(
        self, events, wait_all: bool = True, timeout=None, scope=None
    ) -> None:
        pass  # everything already completed at admission

    def wait_all(self, timeout=None, scope=None) -> None:
        pass

    def now(self) -> float:
        return self._now

    def advance_host(self, dt: float) -> None:
        # The capture clock counts API calls, not seconds: it only has
        # to be monotonic so lifecycle records stay well-formed.
        self._now += 1.0


@contextlib.contextmanager
def capture_session():
    """Force capture mode on every runtime constructed in this scope.

    Yields the list that fills with the captured
    :class:`~repro.core.runtime.HStreams` instances (each carrying its
    recorder as ``runtime.capture``). Sessions do not nest — a nested
    entry raises :class:`~repro.core.errors.HStreamsInvalid` instead of
    silently corrupting the outer recording — and a session that exits
    with an error (including that one) leaves the registry clean, so a
    fresh session can always start afterwards.
    """
    from repro.core import runtime as runtime_mod

    if runtime_mod._capture_registry is not None:
        raise HStreamsInvalid("capture sessions do not nest")
    registry: List[Any] = []
    runtime_mod._capture_registry = registry
    try:
        yield registry
    finally:
        runtime_mod._capture_registry = None
