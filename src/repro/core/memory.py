"""The memory subsystem: instance lifecycle, coherence, and eviction.

The paper's buffer abstraction (§II) is a *memory management* layer:
per-domain physical instantiation behind one proxy address, usage
properties, and incoherent instances whose movement the program
controls. :class:`MemoryManager` makes that layer first-class — it is
the single authority for

* **instance lifecycle** — every ``buf.instances`` mutation and every
  byte of per-domain capacity accounting happens here (the runtime,
  the backends, and the capture layer all route through it);
* **coherence** — a per-instance ``INVALID → VALID → DIRTY`` state
  machine (:class:`BufferCoherence`), committed from scheduler
  completion callbacks and shadowed by an enqueue-time *expected*
  layer that the host thread can consult before completions land;
* **transfer elision** — an ``enqueue_xfer`` whose destination
  instance is already expected-valid over the operand range completes
  without moving bytes (it still participates in dependence ordering),
  generalizing the host-as-target aliasing optimization of paper §V;
* **pressure-driven eviction** — on capacity overflow a pluggable
  :class:`EvictionPolicy` (``manual`` = fail, today's behavior;
  ``lru`` = evict clean, non-busy instances first) runs before
  :class:`~repro.core.errors.HStreamsOutOfMemory` is raised;
* **allocation cost** — the sim backend's COI 2 MB
  :class:`~repro.coi.buffer_pool.BufferPool` attaches here, so pool
  hit-rates land in the same ``metrics()["memory"]`` block as the
  elision and eviction counters.

Two coherence layers, on purpose
--------------------------------

Committed state (``valid`` / ``dirty``) transitions only when the
scheduler reports an action *complete* — under the sim backend that is
during engine runs, i.e. at synchronizations. Elision, however, must be
decided on the host thread at *enqueue* time, when the data-moving
actions it is redundant with may still be in flight. The ``expected``
layer tracks validity as of everything already enqueued (program order
on the single source thread), which is exactly the state the new
transfer would observe after its stream-ordered predecessors run. The
offline lint passes (:mod:`repro.analysis.lints`) replay the same
committed transitions over a captured trace, which is why
:class:`BufferCoherence` and :func:`apply_action_writes` live here and
not in the analyzer.

Locking: the manager shares the scheduler's reentrant lock. A private
lock would deadlock — the host thread takes manager-then-scheduler
(busy queries), while completion callbacks arrive scheduler-first.
"""

from __future__ import annotations

import enum
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.actions import ActionKind, XferDirection
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsBusy,
    HStreamsNotFound,
    HStreamsOutOfMemory,
)
from repro.core.scheduler import SchedulerObserver
from repro.core.sync import caller_locked, guarded_by

if TYPE_CHECKING:  # pragma: no cover
    from repro.coi.buffer_pool import BufferPool
    from repro.core.actions import Action, Operand
    from repro.core.buffer import Buffer
    from repro.core.graph import ActionRecord
    from repro.core.runtime import HStreams

__all__ = [
    "IntervalSet",
    "instance_accesses",
    "CoherenceState",
    "BufferCoherence",
    "apply_action_writes",
    "EvictionPolicy",
    "ManualEviction",
    "LruEviction",
    "EVICTION_POLICIES",
    "MemoryManager",
]


class IntervalSet:
    """A set of byte ranges: sorted, disjoint, half-open intervals."""

    __slots__ = ("_iv",)

    def __init__(self) -> None:
        self._iv: List[Tuple[int, int]] = []

    def __bool__(self) -> bool:
        return bool(self._iv)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "IntervalSet(" + ", ".join(f"[{s},{e})" for s, e in self._iv) + ")"

    def add(self, start: int, end: int) -> None:
        """Union ``[start, end)`` into the set."""
        if start >= end:
            return
        for s, e in self._iv:
            if s <= start and end <= e:  # already covered: nothing to merge
                return
        merged: List[Tuple[int, int]] = []
        for s, e in self._iv:
            if e < start or s > end:  # disjoint (touching ranges merge)
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        merged.append((start, end))
        merged.sort()
        self._iv = merged

    def subtract(self, start: int, end: int) -> None:
        """Remove ``[start, end)`` from the set."""
        if start >= end or not self._iv:
            return
        if end <= self._iv[0][0] or start >= self._iv[-1][1]:
            return  # entirely outside the covered span
        out: List[Tuple[int, int]] = []
        for s, e in self._iv:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if end < e:
                out.append((end, e))
        self._iv = out

    def covers(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` lies entirely inside the set."""
        if start >= end:
            return True
        return any(s <= start and end <= e for s, e in self._iv)

    def intersects(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` shares any byte with the set."""
        return any(s < end and start < e for s, e in self._iv)

    def clear(self) -> "IntervalSet":
        """Empty the set, returning the removed intervals as a new set."""
        old = IntervalSet()
        old._iv = self._iv
        self._iv = []
        return old

    def spans(self) -> List[Tuple[int, int]]:
        return list(self._iv)


def instance_accesses(
    action: "Action",
) -> Iterator[Tuple[int, "Operand", bool, bool]]:
    """The physical buffer-instance accesses an action performs.

    Yields ``(domain, operand, reads, writes)``. Compute tasks touch
    their operands in the sink domain; a transfer reads one endpoint's
    instance and writes the other's; host-as-target transfers alias
    away and touch nothing; sync actions only order, never access.
    *Elided* transfers also touch nothing — the manager decided at
    enqueue time (before dispatch and before capture recorded the
    action) that no bytes move, so for coherence replay and race
    pairing they are ordering-only, like syncs. The decision is stable
    across schedules: it depends only on single-threaded enqueue order.
    """
    stream = action.stream
    if stream is None:
        return
    if action.kind is ActionKind.COMPUTE:
        for op in action.operands:
            yield stream.domain, op, op.mode.reads, op.mode.writes
    elif action.kind is ActionKind.XFER and stream.domain != 0 and not action.elided:
        op = action.operands[0]
        if action.direction is XferDirection.SRC_TO_SINK:
            # Collective forwarding hops read a peer instance instead of
            # the host's; the write side is the sink either way.
            src = action.src_domain if action.src_domain is not None else 0
            yield src, op, True, False
            yield stream.domain, op, False, True
        else:
            yield stream.domain, op, True, False
            yield 0, op, False, True


class CoherenceState(enum.Enum):
    """Committed state of one buffer instance in one domain.

    ``INVALID`` — no meaningful data has landed at the instance;
    ``VALID`` — some range holds data the host has (or provided);
    ``DIRTY`` — a sink compute wrote ranges never transferred home.
    """

    INVALID = "invalid"
    VALID = "valid"
    DIRTY = "dirty"


class BufferCoherence:
    """Per-buffer coherence bookkeeping: one interval lattice per domain.

    ``valid``/``dirty``/``lost`` are the *committed* layer, transitioned
    by :func:`apply_action_writes` when actions finish (live manager) or
    in program order (offline lint replay). ``expected`` is the live
    manager's enqueue-time shadow of ``valid`` used for transfer
    elision; the lints never touch it.
    """

    __slots__ = (
        "buffer",
        "wrapped",
        "valid",
        "lost",
        "dirty",
        "expected",
        "last_touch",
        "charged",
    )

    def __init__(self, buffer: "Buffer") -> None:
        self.buffer = buffer
        self.wrapped = buffer.host_array is not None
        #: domain -> byte ranges holding meaningful data at the instance.
        self.valid: Dict[int, IntervalSet] = {}
        #: domain -> ranges valid at eviction, not re-transferred since.
        self.lost: Dict[int, IntervalSet] = {}
        #: domain -> sink-written ranges not yet transferred home.
        self.dirty: Dict[int, IntervalSet] = {}
        #: domain -> enqueue-time validity (drives transfer elision).
        self.expected: Dict[int, IntervalSet] = {}
        #: domain -> monotonic manager tick of the last touch (LRU).
        self.last_touch: Dict[int, int] = {}
        #: domain -> bytes charged against the domain's capacity.
        self.charged: Dict[int, int] = {}
        # The host instance is the authoritative source copy from
        # creation: materialize its expected set eagerly so later
        # cross-domain invalidations are never clobbered by a lazy
        # "starts full" initialization.
        self.expected_in(0)
        if self.wrapped:
            self.valid_in(0)

    def valid_in(self, domain: int) -> IntervalSet:
        iv = self.valid.get(domain)
        if iv is None:
            iv = self.valid[domain] = IntervalSet()
            if domain == 0 and self.wrapped:
                # Wrapping caller memory IS the host write: the whole
                # host instance holds meaningful data from creation.
                iv.add(0, self.buffer.nbytes)
        return iv

    def lost_in(self, domain: int) -> IntervalSet:
        iv = self.lost.get(domain)
        if iv is None:
            iv = self.lost[domain] = IntervalSet()
        return iv

    def dirty_in(self, domain: int) -> IntervalSet:
        iv = self.dirty.get(domain)
        if iv is None:
            iv = self.dirty[domain] = IntervalSet()
        return iv

    def expected_in(self, domain: int) -> IntervalSet:
        iv = self.expected.get(domain)
        if iv is None:
            iv = self.expected[domain] = IntervalSet()
            if domain == 0:
                # Host instances are populated at creation (zeroed, or
                # the wrapped caller array): the source copy is current
                # until a sink write invalidates it.
                iv.add(0, self.buffer.nbytes)
        return iv

    def dirty_union(self) -> IntervalSet:
        """All sink-dirty ranges, across domains."""
        out = IntervalSet()
        for iv in self.dirty.values():
            for s, e in iv.spans():
                out.add(s, e)
        return out

    def state(self, domain: int) -> CoherenceState:
        """The committed ``INVALID → VALID → DIRTY`` state in ``domain``."""
        if self.dirty.get(domain):
            return CoherenceState.DIRTY
        if self.valid.get(domain) or (domain == 0 and self.wrapped):
            return CoherenceState.VALID
        return CoherenceState.INVALID

    def note_evict(self, domain: int) -> None:
        """The instance in ``domain`` is gone: whatever was valid there
        is lost (a later implicit re-instantiation starts from zeros),
        and nothing is expected-valid there any more. Dirty ranges are
        left to the caller: the manager clears them (the fresh instance
        is clean), the lints keep them (the unretrieved result is still
        missing at the host)."""
        lost = self.lost_in(domain)
        for s, e in self.valid_in(domain).clear().spans():
            lost.add(s, e)
        exp = self.expected.get(domain)
        if exp is not None:
            exp.clear()


def apply_action_writes(
    coh_for: Callable[["Buffer"], BufferCoherence], action: "Action"
) -> None:
    """Apply one action's write-side committed coherence transitions.

    ``coh_for`` maps a buffer to its :class:`BufferCoherence`. The live
    manager calls this from the scheduler's completion callback; the
    offline :class:`~repro.analysis.lints.BufferStateLint` replays it in
    capture order, so both derive the identical state machine.
    """
    stream = action.stream
    for domain, op, _reads, writes in instance_accesses(action):
        if not writes:
            continue
        coh = coh_for(op.buffer)
        coh.valid_in(domain).add(op.offset, op.end)
        lost = coh.lost.get(domain)
        if lost is not None:
            lost.subtract(op.offset, op.end)
        if action.kind is ActionKind.COMPUTE and domain != 0:
            coh.dirty_in(domain).add(op.offset, op.end)
        elif action.kind is ActionKind.XFER and domain == 0 and stream is not None:
            # d2h landed: the host now sees the source sink's writes.
            coh.dirty_in(stream.domain).subtract(op.offset, op.end)


# -- eviction policies ---------------------------------------------------------


class EvictionPolicy:
    """Strategy for resolving capacity pressure in one domain.

    :meth:`select_victims` returns buffers whose ``domain`` instances
    the manager should evict to free at least ``need_bytes``; an empty
    list means "cannot help", and the manager raises
    :class:`~repro.core.errors.HStreamsOutOfMemory` as it always did.
    Policies must never select DIRTY instances (unretrieved sink
    results), busy instances (in-flight actions reference them), or
    host instances (domain 0 cannot be evicted).
    """

    name = "manual"

    def select_victims(
        self, manager: "MemoryManager", domain: int, need_bytes: int
    ) -> List["Buffer"]:
        return []


class ManualEviction(EvictionPolicy):
    """Today's behavior: the program evicts explicitly or fails."""

    name = "manual"


class LruEviction(EvictionPolicy):
    """Evict the least-recently-touched clean, non-busy instances."""

    name = "lru"

    def select_victims(
        self, manager: "MemoryManager", domain: int, need_bytes: int
    ) -> List["Buffer"]:
        if domain == 0:
            return []  # the host instance cannot be evicted
        scheduler = manager.runtime.scheduler
        candidates: List[Tuple[int, "Buffer", int]] = []
        for buf, coh in manager.coherences():
            if domain not in buf.instances:
                continue
            if coh.dirty.get(domain):
                continue  # DIRTY: sink results never transferred home
            if scheduler.inflight_touching(buf, domain):
                continue  # busy: in-flight actions still reference it
            candidates.append(
                (coh.last_touch.get(domain, 0), buf, coh.charged.get(domain, 0))
            )
        candidates.sort(key=lambda t: t[0])
        victims: List["Buffer"] = []
        freed = 0
        for _, buf, charge in candidates:
            victims.append(buf)
            freed += charge
            if freed >= need_bytes:
                return victims
        return []  # even evicting everything clean would not fit


EVICTION_POLICIES: Dict[str, type] = {
    "manual": ManualEviction,
    "lru": LruEviction,
}


# -- the manager ---------------------------------------------------------------


@guarded_by("_lock", "_coh", "_bufs", "_allocated", "_instances", "_tick")
class MemoryManager(SchedulerObserver):
    """Single authority over instance lifecycle, coherence, and capacity.

    Owned by :class:`~repro.core.runtime.HStreams` and registered as the
    first scheduler observer: enqueue callbacks maintain the expected
    layer (and decide elision before the backend executes the action),
    completion callbacks commit the ``INVALID → VALID → DIRTY`` machine.
    """

    #: Coherence tracking is footprint-driven; producer edges are not
    #: consulted, so batched replay admission may skip building them.
    wants_deps = False

    def __init__(
        self,
        runtime: "HStreams",
        policy: Union[str, EvictionPolicy] = "manual",
        transfer_elision: bool = True,
    ) -> None:
        self.runtime = runtime
        if isinstance(policy, str):
            try:
                policy = EVICTION_POLICIES[policy]()
            except KeyError:
                raise HStreamsBadArgument(
                    f"unknown eviction policy {policy!r}; "
                    f"use one of {sorted(EVICTION_POLICIES)}"
                ) from None
        self.policy: EvictionPolicy = policy
        self.transfer_elision = transfer_elision
        self._coh: Dict[int, BufferCoherence] = {}  # buffer uid -> coherence
        self._bufs: Dict[int, "Buffer"] = {}
        self._allocated: Dict[int, int] = {}  # domain -> charged bytes
        self._instances: Dict[int, int] = {}  # domain -> live instance count
        self._tick = 0
        #: The sim backend's COI buffer pool, when attached.
        self.pool: Optional["BufferPool"] = None
        self.elided_transfers = 0
        self.elided_bytes = 0
        self.aliased_transfers = 0
        self.evictions = {"manual": 0, "pressure": 0}

    # The scheduler's reentrant lock, shared on purpose (see module
    # docstring). Only consulted after HStreams.__init__ completes.
    @property
    def _lock(self):
        return self.runtime.scheduler._lock

    # -- coherence queries ----------------------------------------------------

    @caller_locked("_lock")
    def coherence(self, buf: "Buffer") -> BufferCoherence:
        """The coherence record for ``buf`` (created on first use)."""
        coh = self._coh.get(buf.uid)
        if coh is None:
            coh = self._coh[buf.uid] = BufferCoherence(buf)
            self._bufs[buf.uid] = buf
        return coh

    @caller_locked("_lock")
    def coherences(self) -> Iterator[Tuple["Buffer", BufferCoherence]]:
        """All live ``(buffer, coherence)`` pairs."""
        for uid, coh in list(self._coh.items()):
            yield self._bufs[uid], coh

    def state(self, buf: "Buffer", domain: int) -> CoherenceState:
        """Committed coherence state of ``buf``'s instance in ``domain``."""
        with self._lock:
            return self.coherence(buf).state(domain)

    def allocated_bytes(self, domain: int) -> int:
        """Bytes charged against ``domain``'s capacity."""
        with self._lock:
            return self._allocated.get(domain, 0)

    @caller_locked("_lock")
    def _touch(self, coh: BufferCoherence, domain: int) -> None:
        self._tick += 1
        coh.last_touch[domain] = self._tick

    # -- instance lifecycle ---------------------------------------------------

    def instantiate(self, buf: "Buffer", domain: int) -> None:
        """Ensure ``buf`` has an instance in ``domain``.

        Charges the domain's capacity (zero for the aliased host
        instance of a wrapped array — it is the caller's own memory),
        runs the eviction policy under pressure, and stores the
        backend's payload. Raises
        :class:`~repro.core.errors.HStreamsOutOfMemory` when the policy
        cannot free enough clean, non-busy instances.
        """
        with self._lock:
            if buf.instantiated_in(domain):
                return
            dom = self.runtime.domain(domain)
            # Wrapped host arrays alias caller memory: zero-copy, and
            # zero charge against the host capacity.
            charge = 0 if (domain == 0 and buf.host_array is not None) else buf.nbytes
            capacity = int(dom.device.ram_gb * (1 << 30))
            if charge:
                have = self._allocated.get(domain, 0)
                if have + charge > capacity:
                    need = have + charge - capacity
                    for victim in self.policy.select_victims(self, domain, need):
                        self._evict(victim, domain, reason="pressure")
                    have = self._allocated.get(domain, 0)
                if have + charge > capacity:
                    raise HStreamsOutOfMemory(
                        f"domain {domain} ({dom.device.name}): instantiating "
                        f"{buf.name!r} ({buf.nbytes}B) exceeds "
                        f"{dom.device.ram_gb} GB"
                    )
            buf.instances[domain] = self.runtime.backend.make_instance(buf, domain)
            coh = self.coherence(buf)
            coh.charged[domain] = charge
            self._allocated[domain] = self._allocated.get(domain, 0) + charge
            self._instances[domain] = self._instances.get(domain, 0) + 1
            self._touch(coh, domain)

    def evict(self, buf: "Buffer", domain: int) -> None:
        """Release ``buf``'s instance in one (non-host) domain.

        The manual path behind
        :meth:`~repro.core.runtime.HStreams.buffer_evict`: refuses the
        host instance, unknown instances, and instances with in-flight
        references.
        """
        with self._lock:
            if domain == 0:
                raise HStreamsBadArgument("the host instance cannot be evicted")
            if not buf.instantiated_in(domain):
                raise HStreamsNotFound(
                    f"buffer {buf.name!r} has no instance in domain {domain}"
                )
            busy = self.runtime.scheduler.inflight_touching(buf, domain)
            if busy:
                names = ", ".join(repr(a.display) for a in busy[:4])
                raise HStreamsBusy(
                    f"cannot evict buffer {buf.name!r} from domain {domain}: "
                    f"{len(busy)} in-flight action(s) still reference it "
                    f"({names}); synchronize the streams touching it first"
                )
            self._evict(buf, domain, reason="manual")

    @caller_locked("_lock")
    def _evict(self, buf: "Buffer", domain: int, reason: str) -> None:
        """Tear one instance down (checks already done by the caller)."""
        self.runtime.backend.on_instance_evict(buf, domain)
        del buf.instances[domain]
        coh = self.coherence(buf)
        charge = coh.charged.pop(domain, buf.nbytes)
        self._allocated[domain] = self._allocated.get(domain, 0) - charge
        self._instances[domain] = self._instances.get(domain, 0) - 1
        coh.note_evict(domain)
        # A re-instantiated instance starts from zeros: clean. (The
        # offline lints keep their replica's dirty ranges so an evicted,
        # never-retrieved result still reports missing-d2h.)
        coh.dirty.pop(domain, None)
        self.evictions[reason] += 1
        self.runtime.scheduler.notify_buffer("evict", buf, domain=domain)

    def destroy(self, buf: "Buffer") -> None:
        """Release every instance of ``buf`` (capacity, backend state,
        coherence). Raises :class:`~repro.core.errors.HStreamsBusy` when
        in-flight actions still reference the buffer — destroying it
        would yank instances out from under running tasks."""
        with self._lock:
            busy = self.runtime.scheduler.inflight_touching(buf)
            if busy:
                names = ", ".join(repr(a.display) for a in busy[:4])
                raise HStreamsBusy(
                    f"cannot destroy buffer {buf.name!r}: {len(busy)} "
                    f"in-flight action(s) still reference it ({names}); "
                    "synchronize the streams touching it first"
                )
            self.runtime.backend.on_buffer_destroy(buf)
            coh = self._coh.pop(buf.uid, None)
            self._bufs.pop(buf.uid, None)
            for domain in list(buf.instances):
                charge = (
                    coh.charged.get(domain, buf.nbytes)
                    if coh is not None
                    else buf.nbytes
                )
                self._allocated[domain] = self._allocated.get(domain, 0) - charge
                self._instances[domain] = self._instances.get(domain, 0) - 1
            buf.instances.clear()

    # -- external host writes -------------------------------------------------

    def note_external_host_write(
        self, buf: "Buffer", offset: int = 0, nbytes: Optional[int] = None
    ) -> None:
        """Record that caller code wrote ``buf``'s host instance directly.

        Layers that stage bytes into the host instance outside any
        enqueued action (the CUDA/OpenCL model shims, the RTM hlib
        helpers) must call this so transfer elision never skips the
        refresh: the write makes every other domain's copy stale.
        """
        with self._lock:
            coh = self.coherence(buf)
            end = buf.nbytes if nbytes is None else offset + nbytes
            coh.expected_in(0).add(offset, end)
            coh.valid_in(0).add(offset, end)
            for domain, iv in coh.expected.items():
                if domain != 0:
                    iv.subtract(offset, end)
            self._touch(coh, 0)

    # -- scheduler observer callbacks -----------------------------------------

    @caller_locked("_lock")
    def on_enqueue(
        self, action: "Action", deps: List["Action"], dangling: List[Any]
    ) -> None:
        """Maintain the expected layer; decide elision before dispatch.

        Replayed actions arrive here exactly like enqueued ones (replay
        admits through the same stage), with ``elided`` cleared by the
        clone — so elision is decided against *this* replay's coherence
        state, not frozen at capture time: a transfer elided during the
        warm capture run really moves bytes on a replay that needs it,
        and vice versa.
        """
        stream = action.stream
        if stream is None:
            return
        if action.kind is ActionKind.COMPUTE:
            # Replay's hottest observer loop: coherence lookups hoisted,
            # LRU touches batched into one tick-counter writeback.
            sink = stream.domain
            coherence = self.coherence
            tick = self._tick
            for op in action.operands:
                coh = coherence(op.buffer)
                tick += 1
                coh.last_touch[sink] = tick
                if op.mode.writes and op.nbytes > 0:
                    coh.expected_in(sink).add(op.offset, op.end)
                    for domain, iv in coh.expected.items():
                        if domain != sink:
                            iv.subtract(op.offset, op.end)
            self._tick = tick
        elif action.kind is ActionKind.XFER:
            op = action.operands[0]
            coh = self.coherence(op.buffer)
            self._touch(coh, stream.domain)
            self._touch(coh, action.src_domain if action.src_domain is not None else 0)
            if stream.domain == 0:
                # Host-as-target: source and sink instances alias, the
                # backends already skip the copy (paper §V).
                self.aliased_transfers += 1
                return
            dst = (
                stream.domain
                if action.direction is XferDirection.SRC_TO_SINK
                else 0
            )
            dest = coh.expected_in(dst)
            if (
                self.transfer_elision
                and op.nbytes > 0
                and dest.covers(op.offset, op.end)
            ):
                # The destination already holds (or will hold, once its
                # stream-ordered producers run) the bytes this transfer
                # would move: complete it without moving anything. The
                # action still flows through the scheduler, so
                # dependence ordering is untouched.
                action.elided = True
                self.elided_transfers += 1
                self.elided_bytes += op.nbytes
            dest.add(op.offset, op.end)

    @caller_locked("_lock")
    def on_action_complete(self, action: "Action", record: "ActionRecord") -> None:
        """Commit the ``INVALID → VALID → DIRTY`` machine.

        Failed and cancelled actions do **not** commit: their write
        ranges are *rolled back* instead — subtracted from the expected,
        valid, and dirty layers — so a partially-landed write is treated
        as garbage. Rolling back keeps failure recovery honest: a
        re-enqueued transfer over a poisoned range is never elided (the
        destination is no longer expected-valid), and a failed sink
        compute leaves its instance clean rather than DIRTY, so
        pressure/manual eviction of poisoned instances stays legal.
        """
        if record.state in ("failed", "cancelled"):
            self._rollback_action(action)
        else:
            apply_action_writes(self.coherence, action)
        stream = action.stream
        if stream is not None:
            for op in action.operands:
                self._touch(self.coherence(op.buffer), stream.domain)

    @caller_locked("_lock")
    def _rollback_action(self, action: "Action") -> None:
        """Poison an unfinished action's write footprint (see above).

        Elided transfers are rolled back too, conservatively: their
        enqueue-time decision extended the expected layer, and the bytes
        they promised may descend from work that is now dead.
        """
        stream = action.stream
        if stream is None:
            return
        writes: List[Tuple[int, "Operand"]] = []
        if action.kind is ActionKind.COMPUTE:
            for op in action.operands:
                if op.mode.writes:
                    writes.append((stream.domain, op))
        elif action.kind is ActionKind.XFER and stream.domain != 0:
            op = action.operands[0]
            dst = (
                stream.domain
                if action.direction is XferDirection.SRC_TO_SINK
                else 0
            )
            writes.append((dst, op))
        for domain, op in writes:
            coh = self.coherence(op.buffer)
            for layer in (coh.expected, coh.valid, coh.dirty):
                iv = layer.get(domain)
                if iv is not None:
                    iv.subtract(op.offset, op.end)

    # -- allocation-cost layer ------------------------------------------------

    def attach_pool(self, pool: "BufferPool") -> None:
        """Adopt a backend's buffer pool as the allocation-cost layer."""
        self.pool = pool

    # -- metrics ---------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The ``metrics()["memory"]`` block.

        Keys: ``eviction_policy``, ``transfer_elision``,
        ``elided_transfers`` / ``elided_bytes`` (redundant transfers
        completed without moving bytes), ``aliased_transfers``
        (host-as-target aliasing), ``evictions`` (manual vs. pressure),
        per-domain ``allocated_bytes`` / ``capacity_bytes`` /
        ``instances``, and ``pool`` (COI buffer-pool hit rates, sim
        backend only).
        """
        with self._lock:
            domains = {
                dom.index: {
                    "allocated_bytes": self._allocated.get(dom.index, 0),
                    "capacity_bytes": int(dom.device.ram_gb * (1 << 30)),
                    "instances": self._instances.get(dom.index, 0),
                }
                for dom in self.runtime.domains
            }
            pool = None
            if self.pool is not None:
                fresh = self.pool.fresh_allocations
                recycled = self.pool.recycled_allocations
                total = fresh + recycled
                pool = {
                    "enabled": self.pool.enabled,
                    "chunk_bytes": self.pool.chunk_bytes,
                    "fresh_allocations": fresh,
                    "recycled_allocations": recycled,
                    "hit_rate": recycled / total if total else 0.0,
                }
            return {
                "eviction_policy": self.policy.name,
                "transfer_elision": self.transfer_elision,
                "elided_transfers": self.elided_transfers,
                "elided_bytes": self.elided_bytes,
                "aliased_transfers": self.aliased_transfers,
                "evictions": dict(self.evictions),
                "domains": domains,
                "pool": pool,
            }
