"""Deterministic, seed-driven fault injection for the hStreams runtime.

Failure paths are the hardest runtime code to exercise: real kernels
rarely fail on demand, and never deterministically. This harness makes
every failure path reachable from tests and benchmarks, identically on
the thread and sim backends:

* a :class:`FaultPlan` declares *which* actions fail (:class:`FaultSpec`
  match rules over kind / kernel / label / stream, selecting the n-th
  match or a seeded random rate) and *how* (how many attempts fail,
  whether the error is transient, i.e. retryable under
  ``failure_policy="retry"``);
* :func:`inject_faults` attaches the plan to a live runtime as a
  :class:`FaultInjector`;
* the injector **arms** matching actions at enqueue time, from the
  scheduler's ``on_enqueue`` observer hook. Enqueues happen on the
  single source thread in program order on every backend, so the set of
  armed actions — including the seeded random draws — is a pure
  function of the program and the plan, never of backend timing;
* backends consult :meth:`FaultInjector.check` right before executing an
  action; an armed action raises :class:`InjectedFault` instead of
  running, once per remaining armed attempt.

``times=2`` with ``transient=True`` under ``failure_policy="retry"`` is
the canonical plan: the action fails twice, backs off, and succeeds on
the third attempt — on both backends with identical observable metrics.

Capture mode (``HStreams(capture_only=True)``) never executes actions,
so fault plans are inert under the hazard analyzer — a captured program
stays clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.errors import HStreamsBadArgument, HStreamsError, mark_transient
from repro.core.events import HEvent
from repro.core.scheduler import SchedulerObserver
from repro.core.sync import caller_locked, guarded_by, make_lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.runtime import HStreams

__all__ = ["InjectedFault", "FaultSpec", "FaultPlan", "FaultInjector", "inject_faults"]

_KINDS = ("compute", "xfer", "sync", "*")


class InjectedFault(HStreamsError):
    """The error raised in place of executing a fault-armed action."""

    code = "HSTR_RESULT_INJECTED_FAULT"


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: which actions to fail, and how.

    Match fields (all must hold; empty/None means "any"):

    * ``kind`` — ``"compute"``, ``"xfer"``, ``"sync"``, or ``"*"``;
    * ``kernel`` — exact compute kernel name;
    * ``label`` — substring of the action's display label;
    * ``stream`` — stream id;
    * ``namespace`` — exact stream namespace (per-tenant arming: a
      plan targeting one tenant's namespace never arms on another's
      actions, whatever their kernels are named).

    Selection (mutually exclusive; neither means "every match"):

    * ``nth`` — arm only the n-th matching action (1-based, in enqueue
      order);
    * ``rate`` — arm each matching action with this probability, drawn
      from the plan's seeded RNG in enqueue order (deterministic for a
      given program + seed).

    Effect:

    * ``times`` — how many execution attempts of an armed action fail
      before it is allowed to succeed (>= ``retry_limit + 1`` makes the
      failure permanent even under the retry policy);
    * ``transient`` — mark the injected error retryable
      (:func:`~repro.core.errors.mark_transient`);
    * ``message`` — override the default error text.
    """

    kind: str = "*"
    kernel: str = ""
    label: str = ""
    stream: Optional[int] = None
    namespace: str = ""
    nth: Optional[int] = None
    rate: Optional[float] = None
    times: int = 1
    transient: bool = False
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise HStreamsBadArgument(
                f"FaultSpec kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.nth is not None and self.rate is not None:
            raise HStreamsBadArgument("FaultSpec takes nth or rate, not both")
        if self.nth is not None and self.nth < 1:
            raise HStreamsBadArgument("FaultSpec nth is 1-based")
        if self.rate is not None and not (0.0 <= self.rate <= 1.0):
            raise HStreamsBadArgument("FaultSpec rate must be in [0, 1]")
        if self.times < 1:
            raise HStreamsBadArgument("FaultSpec times must be >= 1")

    def matches(self, action: "Action") -> bool:
        """Whether ``action`` satisfies every match field."""
        if self.kind != "*" and action.kind.value != self.kind:
            return False
        if self.kernel and action.kernel != self.kernel:
            return False
        if self.label and self.label not in action.display:
            return False
        if self.stream is not None and (
            action.stream is None or action.stream.id != self.stream
        ):
            return False
        if self.namespace and (
            action.stream is None or action.stream.namespace != self.namespace
        ):
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of fault rules plus the RNG seed for rates."""

    specs: Sequence[FaultSpec] = field(default_factory=tuple)
    seed: int = 0


@guarded_by("_lock", "_armed", "_match_counts")
class FaultInjector(SchedulerObserver):
    """Live attachment of a :class:`FaultPlan` to one runtime.

    Arming happens on the source thread under the scheduler's lock
    (``on_enqueue``), but :meth:`check` fires from backend *worker*
    threads — so the armed table is lock-guarded.
    :func:`inject_faults` rebinds :attr:`_lock` to the owning
    scheduler's lock, making arm-vs-fire a single critical section.
    """

    #: Arming matches on the action itself (kind/kernel/stream), never
    #: on producer edges, so batched replay admission may skip them.
    wants_deps = False

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        # Standalone injectors get a private lock; inject_faults swaps
        # in the owning scheduler's lock before attaching.
        self._lock = make_lock("faults")
        #: Per-spec count of matching actions seen, for ``nth``.
        self._match_counts: List[int] = [0] * len(plan.specs)
        #: Armed actions: seq -> (remaining failures, owning spec).
        self._armed: Dict[int, List] = {}
        #: Total faults actually raised by :meth:`check`. Written under
        #: the lock; unguarded so tests/benchmarks may read the counter
        #: after synchronizing (a GIL-atomic int read).
        self.injected = 0

    # -- arming (scheduler observer, single-threaded enqueue order) --------

    @caller_locked("_lock")
    def on_enqueue(
        self,
        action: "Action",
        deps: List["Action"],
        dangling: List[HEvent],
    ) -> None:
        # Arming happens at admission on the single source thread — for
        # replayed graphs that is the replay loop walking the template in
        # capture order, so ``nth`` counting and seeded ``rate`` draws
        # stay deterministic across enqueue and replay alike.
        for i, spec in enumerate(self.plan.specs):
            if not spec.matches(action):
                continue
            self._match_counts[i] += 1
            if spec.nth is not None:
                if self._match_counts[i] != spec.nth:
                    continue
            elif spec.rate is not None:
                # Drawn in enqueue order: deterministic across backends.
                if self._rng.random() >= spec.rate:
                    continue
            self._armed[action.seq] = [spec.times, spec]
            break  # first matching spec wins

    # -- firing (called by backends right before execution) ----------------

    def check(self, action: "Action") -> None:
        """Raise :class:`InjectedFault` if ``action`` is armed.

        Each call consumes one armed attempt; once ``times`` attempts
        have failed, the action executes normally (the
        transient-fault-recovers-after-retry scenario). Called from
        backend worker threads, so the armed table is consumed under
        the lock.
        """
        with self._lock:
            entry = self._armed.get(action.seq)
            if entry is None or entry[0] <= 0:
                return
            entry[0] -= 1
            self.injected += 1
            spec: FaultSpec = entry[1]
            attempt = spec.times - entry[0]
        msg = spec.message or (
            f"injected fault in {action.display!r} "
            f"(attempt {attempt} of {spec.times})"
        )
        err = InjectedFault(msg)
        if spec.transient:
            mark_transient(err)
        raise err

    def armed_seqs(self) -> List[int]:
        """Sequence numbers currently armed (tests and observability)."""
        with self._lock:
            return sorted(self._armed)


def inject_faults(runtime: "HStreams", plan: FaultPlan) -> FaultInjector:
    """Attach ``plan`` to ``runtime``; returns the live injector.

    Registers the injector as a scheduler observer (so it arms actions
    at enqueue) and as ``runtime.fault_injector`` (so backends consult
    it before executing). Injecting a second plan replaces the first.
    """
    injector = FaultInjector(plan)
    # Share the scheduler's lock: arming (on_enqueue, under it already)
    # and firing (check, from workers) become one critical section.
    injector._lock = runtime.scheduler._lock
    sanitizer = getattr(runtime, "sanitizer", None)
    if sanitizer is not None:
        sanitizer.instrument(injector)
    with runtime.scheduler._lock:
        old = runtime.fault_injector
        if old is not None and old in runtime.scheduler.observers:
            runtime.scheduler.observers.remove(old)
        runtime.scheduler.observers.append(injector)
        runtime.fault_injector = injector
    return injector
