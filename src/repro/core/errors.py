"""Error types mirroring hStreams' ``HSTR_RESULT`` codes.

The C library reports failures through an ``HSTR_RESULT`` enum; this
reproduction raises a matching exception hierarchy instead, which is the
idiomatic Python equivalent. The ``code`` attribute preserves the original
code name for users porting diagnostics.
"""

from __future__ import annotations

__all__ = [
    "HStreamsError",
    "HStreamsNotInitialized",
    "HStreamsBadArgument",
    "HStreamsNotFound",
    "HStreamsAlreadyFound",
    "HStreamsOutOfMemory",
    "HStreamsOutOfRange",
    "HStreamsTimedOut",
    "HStreamsBusy",
    "HStreamsQuotaExceeded",
    "HStreamsInternalError",
    "HStreamsInvalid",
    "HStreamsDeadlock",
    "HStreamsCancelled",
    "HStreamsBackendDied",
    "mark_transient",
    "is_transient",
]


class HStreamsError(Exception):
    """Base class for all hStreams runtime failures."""

    code = "HSTR_RESULT_ERROR"


class HStreamsNotInitialized(HStreamsError):
    """An API was called before ``init()`` or after ``fini()``."""

    code = "HSTR_RESULT_NOT_INITIALIZED"


class HStreamsBadArgument(HStreamsError):
    """An argument was malformed or inconsistent."""

    code = "HSTR_RESULT_INCONSISTENT_ARGS"


class HStreamsNotFound(HStreamsError):
    """A named stream, buffer, domain, or kernel does not exist."""

    code = "HSTR_RESULT_NOT_FOUND"


class HStreamsAlreadyFound(HStreamsError):
    """An entity with this identity already exists."""

    code = "HSTR_RESULT_ALREADY_FOUND"


class HStreamsOutOfMemory(HStreamsError):
    """A domain's memory capacity would be exceeded."""

    code = "HSTR_RESULT_OUT_OF_MEMORY"


class HStreamsOutOfRange(HStreamsError):
    """An address or index fell outside the valid range."""

    code = "HSTR_RESULT_OUT_OF_RANGE"


class HStreamsTimedOut(HStreamsError):
    """A wait exceeded its timeout."""

    code = "HSTR_RESULT_TIME_OUT_REACHED"


class HStreamsBusy(HStreamsError):
    """The target resource is still referenced by in-flight actions.

    Raised e.g. by ``buffer_evict`` when an instance is an operand of
    actions that have not completed yet — synchronize the streams
    touching it first.
    """

    code = "HSTR_RESULT_BUSY"


class HStreamsQuotaExceeded(HStreamsBusy):
    """A namespace's in-flight admission quota is exhausted.

    Raised by ``Scheduler.enqueue`` when a stream's namespace has a
    quota (``HStreams.set_namespace_quota``) and admitting the action
    would exceed it. The service tier's admission controller converts
    this into HTTP-429-style deferral (queue behind the window) or
    rejection; callers driving the runtime directly should synchronize
    some of the namespace's work and re-enqueue.
    """

    code = "HSTR_RESULT_QUOTA_EXCEEDED"


class HStreamsInternalError(HStreamsError):
    """Invariant violation inside the runtime (a bug, not user error)."""

    code = "HSTR_RESULT_INTERNAL_ERROR"


class HStreamsInvalid(HStreamsError, RuntimeError):
    """An operation was attempted in a state that cannot support it.

    Raised e.g. when :func:`~repro.core.capture.capture_session` scopes
    nest, when ``capture_graph()`` records a host synchronization or a
    buffer/stream lifecycle change (templates are pure action DAGs), or
    when a graph is replayed into a stream with work still in flight.
    Also a :class:`RuntimeError`, which these guards raised historically.
    """

    code = "HSTR_RESULT_INVALID_STATE"


class HStreamsDeadlock(HStreamsInternalError):
    """No in-flight action can ever run (dependence deadlock).

    Raised at synchronization when every remaining action waits on an
    event that no remaining work will fire — typically a cross-stream
    wait on an action that was never enqueued.
    """

    code = "HSTR_RESULT_DEADLOCK"


class HStreamsCancelled(HStreamsError):
    """An action was cancelled because a producer it depends on failed.

    Under ``failure_policy="poison"`` (the default) a failed action
    transitively poisons its dependents: they never run their kernels
    and carry one of these as their error, with the root failure
    attached as ``__cause__``.
    """

    code = "HSTR_RESULT_CANCELLED"


class HStreamsBackendDied(HStreamsError):
    """A backend worker died underneath its in-flight actions.

    Raised by the process backend's completion pump when a worker
    process exits without reporting completions (killed, OOM-killed,
    segfaulted): every action in flight on that worker fails with one
    of these instead of hanging its waiters. The pump marks it
    transient, so under ``failure_policy="retry"`` the scheduler
    re-dispatches onto a freshly respawned worker; under ``poison`` /
    ``fail_fast`` it surfaces at the next synchronization like any
    other action failure.
    """

    code = "HSTR_RESULT_BACKEND_DIED"


#: Attribute set by :func:`mark_transient`; checked by :func:`is_transient`.
_TRANSIENT_ATTR = "hstreams_transient"


def mark_transient(exc: BaseException) -> BaseException:
    """Mark an exception as *transient*: retryable under the retry policy.

    Under ``failure_policy="retry"`` the scheduler re-executes actions
    that fail with a transient error (capped exponential backoff, up to
    ``RuntimeConfig.retry_limit`` attempts). Kernels signal retryability
    by raising ``mark_transient(SomeError(...))``; the fault-injection
    harness marks its injected faults the same way. Returns ``exc`` so
    it composes inside a ``raise`` statement.
    """
    setattr(exc, _TRANSIENT_ATTR, True)
    return exc


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` was marked retryable via :func:`mark_transient`."""
    return bool(getattr(exc, _TRANSIENT_ATTR, False))
