"""rtsan: the runtime's own lock-discipline sanitizer.

hsan (:mod:`repro.analysis`) checks *user programs*; this module checks
*the runtime itself*. It has two halves:

* **Dynamic** (this module): :class:`SanLock` / :class:`SanCondition`
  wrappers plus a :func:`guarded_by` class annotation. When a runtime is
  constructed with ``HStreams(sanitize=True)`` (or ``REPRO_SANITIZE=1``
  in the environment) the wrappers maintain a per-thread held-lock set
  and a lock-acquisition-order graph, and every annotated shared field
  is access-checked against its owning lock. Violations become
  :class:`~repro.analysis.diagnostics.Diagnostic` objects (rule ids
  ``lock-order-inversion``, ``unguarded-access``, ``cv-without-lock``,
  ``blocking-under-lock``, ``invariant-violation``) and, in the default
  ``raise`` mode, surface as :class:`RtsanViolation` at the offending
  call site.

* **Static** (:mod:`repro.analysis.staticlint`): an AST pass that
  verifies the same ``guarded_by`` discipline lexically, so the
  contract is enforced even on interleavings no test ever runs.

Zero-overhead passthrough: locks are created through :func:`make_lock` /
:func:`make_condition`, which return *plain* ``threading`` primitives
when no sanitizer is supplied, and :func:`guarded_by` only records
metadata on the class. Nothing is wrapped, patched, or instrumented
until a sanitizer is activated, and instrumentation is per-runtime:
a sanitized runtime swaps *its own* objects onto instrumented
subclasses (``obj.__class__``) so unsanitized runtimes in the same
process keep the untouched classes.
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.sites import user_site

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "RtsanViolation",
    "SanLock",
    "SanCondition",
    "Sanitizer",
    "caller_locked",
    "guarded_by",
    "make_condition",
    "make_lock",
    "sanitize_mode_from_env",
]


class RtsanViolation(RuntimeError):
    """A lock-discipline violation detected by the dynamic sanitizer."""

    def __init__(self, diagnostic: "Diagnostic") -> None:
        super().__init__(diagnostic.format())
        #: The structured finding behind this exception.
        self.diagnostic = diagnostic


def sanitize_mode_from_env(env: Optional[Dict[str, str]] = None) -> Optional[str]:
    """The sanitizer mode requested via ``REPRO_SANITIZE``, if any.

    ``1``/``on``/``true``/``raise`` select raise mode, ``record``
    selects record-only mode, unset/``0``/``off``/``false`` select none.
    """
    value = (env if env is not None else os.environ).get("REPRO_SANITIZE", "")
    value = value.strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return None
    if value == "record":
        return "record"
    return "raise"


# -- per-thread held-lock set ---------------------------------------------------

# Shared by every sanitizer in the process: a thread's held set is a
# property of the thread, not of any one runtime (the blocking-call
# check must see scheduler locks regardless of which runtime owns them).
_tls = threading.local()


def _held_locks() -> List["SanLock"]:
    held = getattr(_tls, "held", None)
    if held is None:
        held = _tls.held = []
    return held


# -- annotations (pure metadata; zero cost until instrumented) ------------------


def guarded_by(lock_attr: str, *fields: str) -> Callable[[type], type]:
    """Class decorator declaring that ``fields`` are protected by the
    lock stored in attribute ``lock_attr``.

    Records metadata only (``cls.__rtsan_guards__``); access checking
    happens when a :class:`Sanitizer` instruments an instance, and the
    static pass (:mod:`repro.analysis.staticlint`) enforces the same
    declaration lexically. Guard maps merge down inheritance chains.
    """

    def decorate(cls: type) -> type:
        guards = dict(getattr(cls, "__rtsan_guards__", {}))
        for field in fields:
            guards[field] = lock_attr
        cls.__rtsan_guards__ = guards
        return cls

    return decorate


def caller_locked(*lock_attrs: str) -> Callable:
    """Mark a function as running with ``lock_attrs`` already held.

    The function is returned unchanged — this is an allowlist entry for
    the static pass (``self.<field>`` accesses inside are legal without
    a lexical ``with``); the dynamic sanitizer still verifies the lock
    is actually held at every field access.
    """

    def decorate(fn: Callable) -> Callable:
        fn.__rtsan_caller_locked__ = tuple(lock_attrs)
        return fn

    return decorate


# -- lock factories -------------------------------------------------------------


def make_lock(
    name: str,
    *,
    reentrant: bool = False,
    no_block: bool = False,
    sanitizer: Optional["Sanitizer"] = None,
):
    """A lock for runtime shared state.

    Without a sanitizer this *is* ``threading.Lock()`` (or ``RLock``) —
    the zero-overhead passthrough. With one, a :class:`SanLock` that
    feeds the held set and the acquisition-order graph. ``no_block``
    marks locks under which blocking calls (``time.sleep``,
    ``Event.wait``) are a reported violation.
    """
    if sanitizer is None:
        # The factory itself is topology setup, called from __init__s.
        return threading.RLock() if reentrant else threading.Lock()  # rtsan: ignore[lock-in-hot-path]
    return SanLock(name, reentrant=reentrant, no_block=no_block, sanitizer=sanitizer)


def make_condition(
    lock=None,
    name: str = "cv",
    *,
    sanitizer: Optional["Sanitizer"] = None,
):
    """A condition variable over ``lock`` (or a fresh lock of its own).

    Mirrors :func:`make_lock`: plain ``threading.Condition`` without a
    sanitizer, :class:`SanCondition` with one. Passing a
    :class:`SanLock` always yields a :class:`SanCondition` so the CV
    shares the instrumented lock's bookkeeping.
    """
    if isinstance(lock, SanLock):
        return SanCondition(lock, name=name, sanitizer=lock.sanitizer)
    if sanitizer is None:
        return threading.Condition(lock)  # rtsan: ignore[lock-in-hot-path]
    if lock is None:
        # threading.Condition() defaults to an RLock; mirror that.
        san_lock = SanLock(name, reentrant=True, sanitizer=sanitizer)
    else:
        # A raw threading lock under a sanitized runtime: wrap it so CV
        # discipline is still checked (rare; tests only).
        san_lock = SanLock(name, sanitizer=sanitizer, inner=lock)
    return SanCondition(san_lock, name=name, sanitizer=sanitizer)


# -- instrumented primitives ----------------------------------------------------


class SanLock:
    """A ``threading.Lock``/``RLock`` with ownership and order tracking.

    Behaviorally identical to the wrapped primitive (return values,
    timeout semantics, release errors) — the sanitizer checks happen
    *around* the real operations, never instead of them.
    """

    def __init__(
        self,
        name: str,
        *,
        reentrant: bool = False,
        no_block: bool = False,
        sanitizer: Optional["Sanitizer"] = None,
        inner=None,
    ) -> None:
        self.name = name
        self.reentrant = reentrant
        self.no_block = no_block
        self.sanitizer = sanitizer
        self._inner = (
            inner
            if inner is not None
            else (threading.RLock() if reentrant else threading.Lock())
        )
        #: Ident of the holding thread (None when free). Written only
        #: by the holder; other threads read it for held-by-me checks.
        self._holder: Optional[int] = None
        self._count = 0

    def held_by_current_thread(self) -> bool:
        return self._holder == threading.get_ident()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        san = self.sanitizer
        if san is not None and self._holder != me:
            san.note_acquire(
                self,
                [h for h in _held_locks() if h.held_by_current_thread()],
            )
        elif san is not None and not self.reentrant:
            # Re-acquiring a non-reentrant lock we already hold can
            # only deadlock; report before blocking forever.
            san.report(
                "lock-order-inversion",
                f"thread re-acquires non-reentrant lock '{self.name}' it "
                "already holds (guaranteed self-deadlock)",
            )
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            if self._holder != me:
                self._holder = me
                self._count = 1
                _held_locks().append(self)
            else:
                self._count += 1
        return ok

    def release(self) -> None:
        me = threading.get_ident()
        if self._holder == me:
            # Bookkeeping strictly before the raw release: the instant
            # the raw lock drops, another thread may acquire and write
            # _holder, and reading it afterwards would mis-file this
            # release as cross-thread (leaking our held-set entry and
            # clobbering the new owner). An owned lock's release cannot
            # raise, so updating first is safe.
            self._count -= 1
            if self._count == 0:
                self._holder = None
                held = _held_locks()
                if self in held:
                    held.remove(self)
            self._inner.release()
        else:
            self._inner.release()  # raises exactly as threading would
            # Cross-thread release of a plain Lock (legal, unusual).
            # The original holder's held-set entry goes stale; the
            # blocking-call check prunes it by ground truth.
            self._holder = None
            self._count = 0

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # Condition-variable integration: threading.Condition probes these
    # when handed a lock object that defines them.
    def _is_owned(self) -> bool:
        return self.held_by_current_thread()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"held by {self._holder}" if self._holder else "free"
        return f"<SanLock {self.name!r} {state}>"


class SanCondition:
    """A ``threading.Condition`` over a :class:`SanLock`.

    Checks that every ``wait``/``notify`` happens with the owning lock
    held (rule ``cv-without-lock``) and keeps the held-set bookkeeping
    consistent across the lock release inside ``wait``.
    """

    def __init__(
        self,
        lock: SanLock,
        name: str = "cv",
        *,
        sanitizer: Optional["Sanitizer"] = None,
    ) -> None:
        self.name = name
        self.lock = lock
        self.sanitizer = sanitizer if sanitizer is not None else lock.sanitizer
        self._inner = threading.Condition(lock._inner)

    # -- lock passthrough ------------------------------------------------------

    def acquire(self, *args) -> bool:
        return self.lock.acquire(*args)

    def release(self) -> None:
        self.lock.release()

    def __enter__(self) -> bool:
        return self.lock.__enter__()

    def __exit__(self, *exc) -> None:
        self.lock.__exit__(*exc)

    # -- cv operations ---------------------------------------------------------

    def _check_owned(self, op: str) -> None:
        if self.sanitizer is not None and not self.lock.held_by_current_thread():
            self.sanitizer.report(
                "cv-without-lock",
                f"{op} on condition '{self.name}' without holding its "
                f"lock '{self.lock.name}'",
            )

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._check_owned("wait")
        holder, count = self.lock._holder, self.lock._count
        held = _held_locks()
        mine = self.lock.held_by_current_thread()
        if mine:
            # The inner condition fully releases the raw lock; mirror
            # that in the sanitizer's bookkeeping for the duration.
            self.lock._holder = None
            self.lock._count = 0
            if self.lock in held:
                held.remove(self.lock)
        try:
            # Delegation: _check_owned already verified the discipline.
            return self._inner.wait(timeout)  # rtsan: ignore[cv-without-lock]
        finally:
            if mine:
                self.lock._holder = holder
                self.lock._count = count
                held.append(self.lock)

    def wait_for(
        self, predicate: Callable[[], Any], timeout: Optional[float] = None
    ):
        """Same loop as ``threading.Condition.wait_for``, over our
        bookkeeping-aware :meth:`wait`."""
        endtime = None
        waittime = timeout
        result = predicate()
        while not result:
            if waittime is not None:
                if endtime is None:
                    endtime = time.monotonic() + waittime
                else:
                    waittime = endtime - time.monotonic()
                    if waittime <= 0:
                        break
            self.wait(waittime)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._check_owned("notify")
        self._inner.notify(n)  # rtsan: ignore[cv-without-lock]

    def notify_all(self) -> None:
        self._check_owned("notify_all")
        self._inner.notify_all()  # rtsan: ignore[cv-without-lock]


# -- blocking-call interception -------------------------------------------------

_patch_lock = threading.Lock()
_patch_refs = 0
_orig_sleep = None
_orig_event_wait = None


def _blocking_call_check(what: str) -> None:
    held = _held_locks()
    stale = None
    for lock in held:
        if not lock.held_by_current_thread():
            # Ground-truth check: a cross-thread release (legal on a
            # plain Lock) leaves the original holder's entry behind.
            # Prune instead of reporting on a lock we no longer hold.
            stale = lock if stale is None else stale
            continue
        if lock.no_block and lock.sanitizer is not None:
            lock.sanitizer.report(
                "blocking-under-lock",
                f"{what} while holding scheduler lock '{lock.name}'",
            )
            return
    if stale is not None:
        held[:] = [lock for lock in held if lock.held_by_current_thread()]


def _install_blocking_patches() -> None:
    global _patch_refs, _orig_sleep, _orig_event_wait
    with _patch_lock:
        _patch_refs += 1
        if _patch_refs > 1:
            return
        _orig_sleep = time.sleep
        _orig_event_wait = threading.Event.wait

        def sleep(seconds):
            _blocking_call_check(f"time.sleep({seconds!r})")
            return _orig_sleep(seconds)

        def event_wait(self, timeout=None):
            _blocking_call_check("threading.Event.wait()")
            return _orig_event_wait(self, timeout)

        time.sleep = sleep
        threading.Event.wait = event_wait


def _remove_blocking_patches() -> None:
    global _patch_refs
    with _patch_lock:
        _patch_refs -= 1
        if _patch_refs > 0:
            return
        time.sleep = _orig_sleep
        threading.Event.wait = _orig_event_wait


# -- guarded-field instrumentation ----------------------------------------------


class _GuardedField:
    """Data descriptor enforcing a ``guarded_by`` declaration.

    Installed on per-sanitizer instrumented subclasses only — never on
    the original class — so uninstrumented instances pay nothing.
    """

    __slots__ = ("field", "lock_attr", "sanitizer", "_member")

    def __init__(self, field, lock_attr, sanitizer, member):
        self.field = field
        self.lock_attr = lock_attr
        self.sanitizer = sanitizer
        #: The shadowed slot descriptor, when the base class uses
        #: ``__slots__``; None for ``__dict__`` storage.
        self._member = member

    def _check(self, obj, mode: str) -> None:
        lock = getattr(obj, self.lock_attr, None)
        if isinstance(lock, SanCondition):
            lock = lock.lock
        if (
            isinstance(lock, SanLock)
            and lock._holder != threading.get_ident()
        ):
            self.sanitizer.report(
                "unguarded-access",
                f"{mode} of guarded field "
                f"{type(obj).__name__}.{self.field} without holding "
                f"lock '{self.lock_attr}'",
            )

    def __get__(self, obj, owner=None):
        if obj is None:
            return self
        self._check(obj, "read")
        if self._member is not None:
            return self._member.__get__(obj, owner)
        try:
            return obj.__dict__[self.field]
        except KeyError:
            raise AttributeError(self.field) from None

    def __set__(self, obj, value) -> None:
        self._check(obj, "write")
        if self._member is not None:
            self._member.__set__(obj, value)
        else:
            obj.__dict__[self.field] = value

    def __delete__(self, obj) -> None:
        self._check(obj, "delete")
        if self._member is not None:
            self._member.__delete__(obj)
        else:
            del obj.__dict__[self.field]


# -- the sanitizer --------------------------------------------------------------


class Sanitizer:
    """Per-runtime dynamic lock-discipline checker.

    One instance per sanitized :class:`~repro.core.runtime.HStreams`.
    ``mode`` is ``"raise"`` (record the diagnostic, then raise
    :class:`RtsanViolation` at the offending site — the default, and
    what ``REPRO_SANITIZE=1`` selects) or ``"record"`` (collect only;
    used by rtsan's own tests and post-mortem inspection via
    :attr:`diagnostics`).
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"unknown sanitizer mode: {mode!r}")
        self.mode = mode
        #: Every violation observed, in detection order.
        self.diagnostics: List["Diagnostic"] = []
        #: Acquisition-order edges: held-lock name -> {acquired-lock
        #: name: site of the first acquisition that created the edge}.
        self.order: Dict[str, Dict[str, Optional[Tuple[str, int]]]] = {}
        self._instrumented: List[Tuple[Any, type]] = []
        self._classes: Dict[type, type] = {}
        self._report_lock = threading.Lock()
        self._transitions = 0
        self._closed = False
        _install_blocking_patches()

    # -- reporting -------------------------------------------------------------

    def report(self, rule: str, message: str) -> None:
        """Record one violation; raise it in ``raise`` mode."""
        from repro.analysis.diagnostics import ActionRef, Diagnostic

        site = user_site()
        actions = [ActionRef(label="<runtime internals>", site=site)] if site else []
        diag = Diagnostic(rule=rule, message=message, actions=actions)
        with self._report_lock:
            self.diagnostics.append(diag)
        if self.mode == "raise":
            raise RtsanViolation(diag)

    def findings(self, rule: Optional[str] = None) -> List["Diagnostic"]:
        """Recorded diagnostics, optionally filtered by rule id."""
        with self._report_lock:
            if rule is None:
                return list(self.diagnostics)
            return [d for d in self.diagnostics if d.rule == rule]

    # -- lock-order graph ------------------------------------------------------

    def note_acquire(self, lock: SanLock, held: List[SanLock]) -> None:
        """Record order edges ``held -> lock``; report any cycle."""
        if not held:
            return
        with self._report_lock:
            for h in held:
                if h is lock or h.name == lock.name:
                    continue
                cycle = self._find_path(lock.name, h.name)
                if cycle is not None:
                    edges = " -> ".join(cycle + [lock.name])
                    first = self.order.get(cycle[0], {}).get(cycle[1])
                    where = f" (order first seen at {first[0]}:{first[1]})" if first else ""
                    message = (
                        f"acquiring '{lock.name}' while holding '{h.name}' "
                        f"inverts the established lock order {edges}{where}"
                    )
                    break
                self.order.setdefault(h.name, {})[lock.name] = user_site()
            else:
                return
        self.report("lock-order-inversion", message)

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """DFS for a path ``src -> ... -> dst`` in the order graph."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            for nxt in self.order.get(node, {}):
                if nxt == dst:
                    return path + [dst]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- guarded-field instrumentation -----------------------------------------

    def instrument(self, obj: Any) -> Any:
        """Swap ``obj`` onto an instrumented subclass of its class.

        Every field the class (or a base) declared via
        :func:`guarded_by` becomes access-checked. Idempotent; returns
        ``obj``. Instrumentation is reverted by :meth:`close`.
        """
        cls = type(obj)
        if getattr(cls, "__rtsan_instrumented__", False):
            return obj
        guards = getattr(cls, "__rtsan_guards__", None)
        if not guards:
            return obj
        sub = self._classes.get(cls)
        if sub is None:
            ns: Dict[str, Any] = {
                "__rtsan_instrumented__": True,
                "__module__": cls.__module__,
                "__qualname__": cls.__qualname__,
            }
            if "__slots__" in cls.__dict__ or not hasattr(obj, "__dict__"):
                ns["__slots__"] = ()
            for field, lock_attr in guards.items():
                member = getattr(cls, field, None)
                if not (hasattr(member, "__set__") and hasattr(member, "__get__")):
                    member = None  # __dict__ storage
                ns[field] = _GuardedField(field, lock_attr, self, member)
            sub = type(cls.__name__, (cls,), ns)
            self._classes[cls] = sub
        obj.__class__ = sub
        self._instrumented.append((obj, cls))
        return obj

    # -- invariant hook --------------------------------------------------------

    #: Graph size up to which every transition gets a full deep check.
    CHECK_FULL_BELOW = 128
    #: Past that bound, deep-check one transition in this many. The
    #: check itself is O(live graph), so checking every transition of a
    #: large DAG is quadratic; sampling keeps big sim workloads usable
    #: under the sanitizer while still surfacing drift (the corrupted
    #: state persists, so a later sampled check catches it).
    CHECK_SAMPLE_EVERY = 64

    def check_scheduler(self, scheduler) -> None:
        """Deep-check scheduler invariants (called with its lock held
        after every admission/completion transition)."""
        self._transitions += 1
        if (
            len(scheduler.graph) > self.CHECK_FULL_BELOW
            and self._transitions % self.CHECK_SAMPLE_EVERY
        ):
            return
        problems = scheduler._check_invariants_locked()
        if problems:
            self.report(
                "invariant-violation",
                "scheduler invariant(s) violated: " + "; ".join(problems),
            )

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Revert instrumentation and release the blocking-call patch."""
        if self._closed:
            return
        self._closed = True
        for obj, cls in self._instrumented:
            obj.__class__ = cls
        self._instrumented.clear()
        _remove_blocking_patches()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
