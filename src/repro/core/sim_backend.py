"""Sim backend: virtual-time execution on the calibrated platform models.

The shared :class:`~repro.core.scheduler.Scheduler` drives a
discrete-event engine:

* compute actions occupy their stream's COI pipeline (one at a time, in
  readiness order) for a duration from the device's kernel cost model,
  scaled to the stream's CPU-mask width;
* transfers ride the card's PCIe link direction through the SCIF fabric,
  paying the measured fixed runtime overhead first;
* host-as-target transfers are aliased away (zero cost);
* card-side buffer instantiation is *synchronous* — it blocks the virtual
  host clock, amortized by the COI 2 MB buffer pool when enabled.

The backend is a pure executor: the scheduler hands it an action only
once every dependence completed, and the spawned engine process merely
models *when* that action occupies sink resources. An action still
cannot start before its (virtual) host enqueue time — the process first
waits out ``max(0, t_enqueue - engine.now)``, which reproduces the old
submit-time arrival semantics exactly (start = max(arrival, deps done)
either way).

The virtual host clock (``now()``) advances by the configured per-call
overheads during enqueues and jumps forward to the engine clock at each
synchronization, so an application's end-to-end virtual time includes
both source-side overheads and sink-side execution, exactly the costs the
paper's §III overhead analysis decomposes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.coi.buffer_pool import BufferPool
from repro.coi.coi import COIBuffer, COIContext, COIPipeline
from repro.coi.scif import ScifFabric
from repro.core.actions import Action, ActionKind, XferDirection
from repro.core.backend import Backend
from repro.core.buffer import Buffer
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsDeadlock,
    HStreamsInternalError,
    HStreamsTimedOut,
)
from repro.core.events import HEvent
from repro.sim.engine import Engine, Event, Resource
from repro.sim.kernels import time_on

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Virtual-time backend over the COI/SCIF simulation stack."""

    def attach(self, runtime) -> None:
        self.runtime = runtime
        cfg = runtime.config
        self.engine = Engine()
        self.topology = runtime.platform.make_fabric(self.engine)
        self.links = self.topology.ports
        host_bw = cfg.host_mem_bw_gbs or runtime.platform.host.mem_bw_gbs
        self.fabric = ScifFabric(self.engine, self.topology, host_mem_bw_gbs=host_bw)
        self.pool = BufferPool(
            cfg.pool_chunk_bytes, cfg.alloc_cost, enabled=cfg.use_buffer_pool
        )
        # The pool is the manager's allocation-cost layer: hit rates
        # land in metrics()["memory"] next to the capacity accounting.
        runtime.memory.attach_pool(self.pool)
        self.coi = COIContext(self.engine, self.fabric, self.pool, runtime.ndomains)
        # Per-domain core pools: a compute holds its stream's width while
        # it runs, so overlapping masks / whole-device kernels contend.
        self._domain_cores: Dict[int, Resource] = {
            d.index: Resource(
                self.engine, capacity=d.device.total_cores, name=f"cores:d{d.index}"
            )
            for d in runtime.domains
        }
        self._pipelines: Dict[int, COIPipeline] = {}
        self._coi_bufs: Dict[Tuple[int, int], COIBuffer] = {}
        self._host_now = 0.0
        self._rng = random.Random(cfg.seed)
        #: One-time init cost (COI process spawns); not charged to the
        #: clock — the paper's measurements exclude initialization.
        self.init_cost_s = self.coi.init_cost_s
        #: Cumulative host-blocking allocation cost (the §VII bottleneck).
        self.alloc_blocked_s = 0.0

    def fabric_metrics(self) -> Dict[str, object]:
        """Interconnect counters for ``hs.metrics()['fabric']``."""
        out = self.topology.metrics()
        out["dma_count"] = self.fabric.dma_count
        out["message_count"] = self.fabric.message_count
        return out

    # -- handles & events -----------------------------------------------------

    def make_handle(self) -> Event:
        return self.engine.event()

    def event_done(self, event: HEvent) -> bool:
        return event.handle.triggered

    def signal_completion(self, event: HEvent, when: float) -> None:
        event.handle.trigger()

    # -- provisioning -----------------------------------------------------------

    def make_stream(self, stream) -> None:
        self._pipelines[stream.id] = self.coi.pipeline(stream.domain, name=stream.name)

    def on_stream_destroy(self, stream) -> None:
        self._pipelines.pop(stream.id, None)

    def make_instance(self, buf: Buffer, domain: int) -> None:
        coi_buf, cost = self.coi.buffer_create(domain, buf.nbytes)
        self._coi_bufs[(buf.uid, domain)] = coi_buf
        if cost > 0:
            self._host_now += cost  # synchronous card-side allocation
            self.alloc_blocked_s += cost
        return None  # sim instances carry no data

    def on_buffer_destroy(self, buf: Buffer) -> None:
        for domain in list(buf.instances):
            coi_buf = self._coi_bufs.pop((buf.uid, domain), None)
            if coi_buf is not None:
                self.coi.buffer_destroy(coi_buf)

    def on_instance_evict(self, buf: Buffer, domain: int) -> None:
        coi_buf = self._coi_bufs.pop((buf.uid, domain), None)
        if coi_buf is not None:
            self.coi.buffer_destroy(coi_buf)

    # -- execution ----------------------------------------------------------------

    def execute(self, action: Action) -> None:
        """Model a dependence-free action as one engine process.

        The scheduler already satisfied the action's dependences; the
        process only enforces that nothing starts before the virtual
        host time at which the action was enqueued. Failures (cost-model
        errors, injected faults) never crash the engine loop: they are
        caught and reported through ``scheduler.on_complete`` so the
        failure policy applies exactly as on the thread backend.
        """
        delay = max(0.0, self.runtime.scheduler.enqueue_time(action) - self.engine.now)
        self.engine.process(self._proc(action, delay), name=action.display)

    def execute_after(self, action: Action, delay: float) -> None:
        """Retry dispatch: re-model ``action`` after ``delay`` virtual s."""
        self.engine.process(
            self._proc(action, delay), name=f"retry:{action.display}"
        )

    def _proc(self, action: Action, delay: float):
        scheduler = self.runtime.scheduler
        if delay > 0:
            yield self.engine.timeout(delay)
        t_exec = self.engine.now
        error: Optional[BaseException] = None
        try:
            injector = self.runtime.fault_injector
            if injector is not None:
                injector.check(action)
            yield from self._execute(action)
        except Exception as exc:  # noqa: BLE001 - routed to failure policy
            error = exc
        budget = self.runtime.config.action_timeout_s
        if error is None and budget is not None and self.engine.now - t_exec > budget:
            # Post-hoc, like the thread backend: the modeled duration is
            # known only once the pipeline ran it.
            error = HStreamsTimedOut(
                f"{action.display!r} ran {self.engine.now - t_exec:.6f} virtual "
                f"s, over the action_timeout_s budget of {budget} s"
            )
        scheduler.on_complete(action, when=self.engine.now, error=error)

    def _compute_duration(self, action: Action) -> float:
        assert action.stream is not None
        if action.cost is None:
            raise HStreamsBadArgument(
                f"compute {action.display!r} has no cost model; the sim "
                "backend needs a cost or a registered cost_fn"
            )
        device = self.runtime.platform.device(action.stream.domain)
        dur = time_on(device, action.cost, cores=action.stream.width)
        cfg = self.runtime.config
        if cfg.jitter > 0 and self._rng.random() < cfg.jitter_prob:
            dur *= 1.0 + cfg.jitter * self._rng.random()
        return dur + cfg.invoke_overhead_s

    def _execute(self, action: Action):
        cfg = self.runtime.config
        scheduler = self.runtime.scheduler
        assert action.stream is not None
        stream = action.stream
        if action.kind is ActionKind.COMPUTE:
            duration = self._compute_duration(action)
            start_holder = [0.0]

            def on_start() -> None:
                start_holder[0] = self.engine.now
                scheduler.on_start(action, when=self.engine.now)

            yield self._pipelines[stream.id].run_function(
                duration,
                on_start=on_start,
                gate=self._domain_cores[stream.domain],
                gate_units=stream.width,
            )
            self.runtime.tracer.record(
                stream.lane, start_holder[0], self.engine.now, action.display, "compute"
            )
        elif action.kind is ActionKind.XFER:
            scheduler.on_start(action, when=self.engine.now)
            if stream.domain == 0 or action.elided:
                # Aliased host-as-target transfer, or a redundant one
                # the memory manager elided: completes in zero virtual
                # time, still ordering its dependents.
                return
            yield self.engine.timeout(cfg.transfer_overhead_s)
            src, dst = (
                (0, stream.domain)
                if action.direction is XferDirection.SRC_TO_SINK
                else (stream.domain, 0)
            )
            if action.src_domain is not None:
                src = action.src_domain
            start = self.engine.now
            yield self.coi.dma(src, dst, action.nbytes)
            if src != 0 and dst != 0:
                lane = f"fabric:d{src}->d{dst}"
            else:
                lane = f"pcie:d{stream.domain}:" + (
                    "h2d" if action.direction is XferDirection.SRC_TO_SINK else "d2h"
                )
            self.runtime.tracer.record(
                lane, start, self.engine.now, action.display, "transfer"
            )
        elif action.kind is ActionKind.SYNC:
            scheduler.on_start(action, when=self.engine.now)
            yield self.engine.timeout(cfg.sync_overhead_s)
        else:  # pragma: no cover - exhaustive over ActionKind
            raise HStreamsInternalError(f"unknown action kind {action.kind}")

    # -- waiting -----------------------------------------------------------------------

    def wait_events(
        self,
        events: List[HEvent],
        wait_all: bool = True,
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
    ) -> None:
        failure = self.runtime.scheduler.failure
        handles = [e.handle for e in events]
        target = (
            self.engine.all_of(handles) if wait_all else self.engine.any_of(handles)
        )
        if timeout is not None:
            # Run only until the events complete; the clock advances to
            # the deadline solely on an actual timeout — a timed wait on
            # fast events no longer inflates virtual host time.
            self.engine.run_until_event(target, until=self._host_now + timeout)
            if not target.triggered:
                self._host_now = max(self._host_now, self.engine.now)
                failure.raise_pending(namespace=scope)
                raise HStreamsTimedOut(
                    f"virtual wait exceeded {timeout} s for {len(events)} event(s)"
                )
        else:
            self.engine.run_until_event(target)
        self._host_now = max(self._host_now, self.engine.now)
        failure.raise_pending(namespace=scope)

    def wait_all(
        self, timeout: Optional[float] = None, scope: Optional[str] = None
    ) -> None:
        failure = self.runtime.scheduler.failure
        if timeout is not None:
            deadline = self._host_now + timeout
            self.engine.run_to(deadline)
            if self.runtime.scheduler.outstanding > 0:
                self._host_now = deadline
                failure.raise_pending(namespace=scope)
                raise HStreamsTimedOut(
                    f"virtual wait_all exceeded {timeout} s with "
                    f"{self.runtime.scheduler.outstanding} action(s) outstanding"
                )
            self._host_now = max(self._host_now, self.engine.now)
            failure.raise_pending(namespace=scope)
            return
        self.engine.run()
        self._host_now = max(self._host_now, self.engine.now)
        # A recorded failure explains the drain better than the
        # dependents it poisoned ever could — surface it first.
        failure.raise_pending(namespace=scope)
        stalled = self.runtime.scheduler.find_stalled()
        if stalled:
            names = ", ".join(repr(a.display) for a in stalled[:8])
            raise HStreamsDeadlock(
                f"{len(stalled)} action(s) can never run: {names} "
                "(cross-stream wait on work that was never enqueued?)"
            )
        outstanding = self.runtime.scheduler.outstanding
        if outstanding > 0:  # pragma: no cover - engine drain invariant
            raise HStreamsInternalError(
                f"{outstanding} action(s) still in flight after engine drain"
            )

    def now(self) -> float:
        return self._host_now

    def advance_host(self, dt: float) -> None:
        self._host_now += dt
