"""The backend-agnostic action dependence graph.

Every enqueued action becomes a node with an explicit lifecycle::

    ENQUEUED --> READY --> RUNNING --> COMPLETE
        \\          \\          \\---> FAILED
         \\          \\--------------^    (RUNNING --> READY on retry)
          \\-> CANCELLED

* **ENQUEUED** — the action entered its stream; dependences are still
  outstanding.
* **READY** — every dependence completed; the action has been handed to
  the executor (backend) for dispatch.
* **RUNNING** — the executor began real (or virtual) execution.
* **COMPLETE** / **FAILED** — the action finished; its node is retired
  from the graph and folded into the scheduler's metrics.
* **CANCELLED** — a dependence failed and the scheduler's failure
  policy poisoned this action: its kernel never runs, its completion
  event still fires (so host waits cannot hang), and its
  :attr:`ActionNode.error` is an
  :class:`~repro.core.errors.HStreamsCancelled` chaining the root
  failure.

Under ``failure_policy="retry"`` a RUNNING action that fails with a
transient error moves back to READY (the one legal backwards edge) and
is re-dispatched after backoff; :attr:`ActionNode.attempts` counts the
retries.

Edges run from a dependence (producer) to its dependent (consumer). The
graph is acyclic *by construction*: actions enqueue one at a time with
monotonically increasing sequence numbers, and an edge may only point
from an older action to a newer one. :meth:`ActionGraph.add_edge`
enforces that invariant — a back edge means runtime corruption, and is
reported as a cycle. Deadlocks (actions waiting on events that will
never fire, e.g. a cross-stream wait on work that was never enqueued)
are detectable via :meth:`ActionGraph.stalled`.

The graph carries no backend-specific state: readiness counters and
dependent lists live on the nodes here, not monkey-patched onto
:class:`~repro.core.actions.Action` (which stays a plain description of
the work).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.core.errors import HStreamsInternalError
from repro.core.sync import caller_locked, guarded_by

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action

__all__ = ["ActionState", "ActionRecord", "ActionNode", "ActionGraph"]


class ActionState(enum.Enum):
    """Lifecycle states of an enqueued action."""

    ENQUEUED = "enqueued"
    READY = "ready"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        """Whether the action finished (successfully or not)."""
        return self in (
            ActionState.COMPLETE,
            ActionState.FAILED,
            ActionState.CANCELLED,
        )


#: Legal lifecycle transitions. READY -> COMPLETE/FAILED is allowed so
#: executors that finish trivial actions without a distinct "running"
#: phase (e.g. aliased transfers) stay valid. RUNNING/READY -> READY is
#: the retry edge; ENQUEUED/READY -> CANCELLED is failure poisoning
#: (READY covers the race where the last dependence completes and a
#: sibling producer fails before the dispatched action starts).
_TRANSITIONS = {
    ActionState.ENQUEUED: {ActionState.READY, ActionState.CANCELLED},
    ActionState.READY: {
        ActionState.RUNNING,
        ActionState.COMPLETE,
        ActionState.FAILED,
        ActionState.CANCELLED,
        ActionState.READY,
    },
    ActionState.RUNNING: {
        ActionState.COMPLETE,
        ActionState.FAILED,
        ActionState.READY,
    },
    ActionState.COMPLETE: set(),
    ActionState.FAILED: set(),
    ActionState.CANCELLED: set(),
}


@dataclass(frozen=True)
class ActionRecord:
    """Immutable lifecycle summary of one finished action.

    Timestamps are on the owning backend's clock (wall seconds for the
    thread backend, virtual seconds for the sim backend).
    """

    seq: int
    kind: str
    stream_id: int
    label: str
    state: str
    t_enqueue: float
    t_ready: float
    t_start: float
    t_end: float
    #: ``str(error)`` for failed/cancelled actions, else None.
    error: Optional[str] = None
    #: How many retry attempts the action consumed before finishing.
    retries: int = 0

    @property
    def dep_stall(self) -> float:
        """Time spent ENQUEUED waiting on dependences."""
        return self.t_ready - self.t_enqueue

    @property
    def dispatch_stall(self) -> float:
        """Time spent READY waiting for the executor to start it."""
        return self.t_start - self.t_ready

    @property
    def exec_time(self) -> float:
        """Time spent executing (RUNNING to terminal)."""
        return self.t_end - self.t_start

    @property
    def total_latency(self) -> float:
        """Enqueue-to-completion latency."""
        return self.t_end - self.t_enqueue


class ActionNode:
    """Graph node: one in-flight action plus its scheduling state."""

    __slots__ = (
        "action",
        "state",
        "waiting",
        "dependents",
        "t_enqueue",
        "t_ready",
        "t_start",
        "t_end",
        "error",
        "attempts",
    )

    def __init__(self, action: "Action", t_enqueue: float):
        self.action = action
        self.state = ActionState.ENQUEUED
        #: Number of unfinished dependences gating this node.
        self.waiting = 0
        #: Nodes that must be notified when this one finishes.
        self.dependents: List["ActionNode"] = []
        self.t_enqueue = t_enqueue
        self.t_ready: Optional[float] = None
        self.t_start: Optional[float] = None
        self.t_end: Optional[float] = None
        self.error: Optional[BaseException] = None
        #: Retry attempts consumed under ``failure_policy="retry"``.
        self.attempts = 0

    def transition(self, new: ActionState) -> None:
        """Move to ``new``, validating against the lifecycle machine."""
        if new not in _TRANSITIONS[self.state]:
            raise HStreamsInternalError(
                f"illegal lifecycle transition {self.state.value} -> "
                f"{new.value} for {self.action.display!r}"
            )
        self.state = new

    def record(self) -> ActionRecord:
        """Snapshot this node as an immutable lifecycle record."""
        t_end = self.t_end if self.t_end is not None else self.t_enqueue
        t_ready = self.t_ready if self.t_ready is not None else t_end
        t_start = self.t_start if self.t_start is not None else t_ready
        return ActionRecord(
            seq=self.action.seq,
            kind=self.action.kind.value,
            stream_id=self.action.stream.id if self.action.stream else -1,
            label=self.action.display,
            state=self.state.value,
            t_enqueue=self.t_enqueue,
            t_ready=t_ready,
            t_start=t_start,
            t_end=t_end,
            error=str(self.error) if self.error is not None else None,
            retries=self.attempts,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ActionNode {self.action.display} {self.state.value} "
            f"waiting={self.waiting}>"
        )


@guarded_by("_lock", "_nodes")
class ActionGraph:
    """In-flight actions and the dependence edges between them.

    Nodes are keyed by the action's global sequence number; finished
    nodes are popped immediately (incremental retirement), so the graph
    holds only the live frontier — its size is the number of in-flight
    actions, not the program length.

    Locking: the graph has no lock of its own — every method runs under
    the owning scheduler's lock (the ``caller_locked`` contracts the
    rtsan passes verify). Standalone graphs (unit tests) pass no lock
    and are single-threaded.
    """

    def __init__(self, lock=None) -> None:
        #: The owning scheduler's lock; None standalone.
        self._lock = lock
        self._nodes: Dict[int, ActionNode] = {}

    @caller_locked("_lock")
    def __len__(self) -> int:
        return len(self._nodes)

    @caller_locked("_lock")
    def add(self, action: "Action", t_enqueue: float) -> ActionNode:
        """Insert a node for a newly enqueued action."""
        if action.seq in self._nodes:
            raise HStreamsInternalError(
                f"action {action.display!r} enqueued twice"
            )
        node = ActionNode(action, t_enqueue)
        self._nodes[action.seq] = node
        return node

    @caller_locked("_lock")
    def get(self, action: Optional["Action"]) -> Optional[ActionNode]:
        """The live node for ``action``, or None if finished/foreign."""
        if action is None:
            return None
        return self._nodes.get(action.seq)

    def add_edge(self, dep: ActionNode, node: ActionNode) -> None:
        """Register that ``node`` must wait for ``dep`` to finish.

        Acyclicity check: edges may only run from older to newer actions.
        A violation cannot arise from the public API (dependences are
        always on already-enqueued work) — seeing one means the graph was
        corrupted, so it is reported as an internal cycle error.
        """
        if dep.action.seq >= node.action.seq:
            raise HStreamsInternalError(
                f"dependence cycle: {node.action.display!r} cannot wait on "
                f"{dep.action.display!r} (edge runs backwards in enqueue order)"
            )
        dep.dependents.append(node)
        node.waiting += 1

    def add_edges(self, deps: List[ActionNode], node: ActionNode) -> None:
        """Register every dependence in ``deps`` for ``node``.

        The admission pipeline's bulk form: on the enqueue path ``deps``
        are freshly scanned window/event producers; on the replay path
        they are a template's pre-computed edges injected directly, with
        the same acyclicity check (replayed actions draw fresh, larger
        sequence numbers, so template-internal edges always point
        forward).
        """
        for dep in deps:
            self.add_edge(dep, node)

    @caller_locked("_lock")
    def pop(self, node: ActionNode) -> None:
        """Retire a finished node from the live set."""
        self._nodes.pop(node.action.seq, None)

    @caller_locked("_lock")
    def nodes(self) -> Iterator[ActionNode]:
        """All live nodes in enqueue order."""
        return iter(list(self._nodes.values()))

    @caller_locked("_lock")
    def stalled(self) -> List[ActionNode]:
        """Deadlock probe: blocked nodes when nothing can make progress.

        Returns the ENQUEUED nodes iff no node is READY or RUNNING (and
        at least one node is blocked) — i.e. every in-flight action is
        waiting on an event that no remaining work will ever fire.
        """
        blocked: List[ActionNode] = []
        for node in self._nodes.values():
            if node.state in (ActionState.READY, ActionState.RUNNING):
                return []
            if node.state is ActionState.ENQUEUED:
                blocked.append(node)
        return blocked
