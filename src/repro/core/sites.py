"""Source-site attribution: the user frame behind a runtime call.

Several layers want to tell the user *where in their code* something
happened: the capture recorder tags every recorded event with the call
site, the online checker attaches sites to diagnostics, and the failure
ledger notes where an error finally surfaced. They all share this one
frame walk: skip every frame inside the ``repro`` package (runtime
internals) and the standard library (context managers, ``runpy``,
worker-thread plumbing), and report the first frame that belongs to the
user's program.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, Tuple

__all__ = ["user_site"]

#: Directory of the ``repro`` package; frames inside it are runtime
#: internals, the first frame outside is the user call site.
_PKG_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Standard-library directory (where ``os`` itself lives). Frames here
#: are plumbing — e.g. ``contextlib`` bodies or ``threading`` at the
#: bottom of a worker stack — never the user's code. Skipping them means
#: a call with no user frame at all (a backend worker thread) reports
#: ``None`` instead of misattributing to ``threading.py``.
_STDLIB_DIR = os.path.dirname(os.path.abspath(os.__file__))


def user_site() -> Optional[Tuple[str, int]]:
    """The (filename, lineno) of the innermost non-runtime stack frame."""
    frame = sys._getframe(1)
    while frame is not None:
        fname = frame.f_code.co_filename
        path = os.path.abspath(fname)
        if not (
            path.startswith(_PKG_DIR + os.sep)
            or path.startswith(_STDLIB_DIR + os.sep)
        ):
            return fname, frame.f_lineno
        frame = frame.f_back
    return None
