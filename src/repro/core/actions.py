"""Action types: what gets enqueued into streams.

Three kinds of actions exist (paper §II): compute tasks, data transfers,
and synchronizations. Every action carries *memory operands* — ranges of
buffers with an access mode — which are the basis of the dependence
analysis that lets the runtime execute actions out of order without
violating the stream's FIFO semantic.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.core.errors import HStreamsBadArgument

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.buffer import Buffer
    from repro.core.events import HEvent
    from repro.core.stream import Stream
    from repro.sim.kernels import KernelCost

__all__ = [
    "OperandMode",
    "ActionKind",
    "XferDirection",
    "Operand",
    "Action",
    "next_action_seq",
]

_action_ids = itertools.count()


def next_action_seq() -> int:
    """Allot a fresh global action sequence number.

    Graph replay constructs actions by cloning template prototypes
    instead of through ``Action(...)``, so it draws from the same
    counter here — sequence numbers stay globally monotonic, which is
    what keeps the dependence graph acyclic by construction (edges may
    only point from older to newer seqs).
    """
    return next(_action_ids)


class OperandMode(enum.Enum):
    """How an action accesses an operand range."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (OperandMode.IN, OperandMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (OperandMode.OUT, OperandMode.INOUT)


class ActionKind(enum.Enum):
    """The three enqueueable action categories plus alloc bookkeeping."""

    COMPUTE = "compute"
    XFER = "xfer"
    SYNC = "sync"


class XferDirection(enum.Enum):
    """Transfer direction relative to the stream's endpoints."""

    SRC_TO_SINK = "src_to_sink"  # host (source) -> sink domain
    SINK_TO_SRC = "sink_to_src"  # sink domain -> host (source)


@dataclass(frozen=True, slots=True)
class Operand:
    """A byte range of a buffer with an access mode.

    In the C library, operands are proxy-space pointers passed as task
    arguments; here they are explicit, which keeps the same dependence
    semantics while being natural Python.
    """

    buffer: "Buffer"
    offset: int
    nbytes: int
    mode: OperandMode = OperandMode.INOUT
    #: Optional typing for sink-side resolution under the thread backend:
    #: the operand resolves to a numpy view with this dtype and shape.
    dtype: Any = None
    shape: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.offset < 0 or self.nbytes < 0:
            raise HStreamsBadArgument(
                f"operand range ({self.offset}, {self.nbytes}) must be non-negative"
            )
        if self.offset + self.nbytes > self.buffer.nbytes:
            raise HStreamsBadArgument(
                f"operand [{self.offset}, {self.offset + self.nbytes}) exceeds "
                f"buffer {self.buffer.name!r} of {self.buffer.nbytes} bytes"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the range."""
        return self.offset + self.nbytes

    def overlaps(self, other: "Operand") -> bool:
        """True when both ranges touch the same bytes of the same buffer.

        A zero-length operand touches no bytes, so it never overlaps —
        and therefore never conflicts: empty operands impose **no
        ordering** under :class:`~repro.core.dependences.RelaxedPolicy`
        (strict-FIFO streams still order every action by position).
        Declaring an empty range is almost always a bug in the caller's
        size arithmetic; the hazard analyzer flags it as
        ``zero-length-operand``.
        """
        if self.buffer is not other.buffer or self.nbytes == 0 or other.nbytes == 0:
            return False
        return self.offset < other.end and other.offset < self.end

    def conflicts_with(self, other: "Operand") -> bool:
        """True when the ranges overlap and at least one side writes."""
        return (self.mode.writes or other.mode.writes) and self.overlaps(other)

    @property
    def proxy_address(self) -> int:
        """Source-proxy address of the first byte (paper's unified space)."""
        return self.buffer.proxy_base + self.offset


#: One cached footprint entry: ``(buffer uid, start, end, writes)``.
FootprintEntry = Tuple[int, int, int, bool]


@dataclass(slots=True)
class Action:
    """One enqueued unit of work, bound to a stream at enqueue time.

    An action is a plain description of the work: scheduling state
    (readiness counters, dependent lists, lifecycle timestamps) lives on
    its :class:`~repro.core.graph.ActionNode`, never on the action
    itself.
    """

    kind: ActionKind
    stream: Optional["Stream"]
    operands: Tuple[Operand, ...] = ()
    # compute
    kernel: str = ""
    args: Tuple[Any, ...] = ()
    cost: Optional["KernelCost"] = None
    # transfer
    direction: Optional[XferDirection] = None
    nbytes: int = 0
    #: Origin domain of a SRC_TO_SINK transfer when the payload is
    #: forwarded from a peer instance instead of the host (collectives'
    #: pipelined hops). ``None`` keeps the classic host-rooted meaning.
    src_domain: Optional[int] = None
    #: Set by the memory manager at admission when the destination
    #: instance is already expected-valid over the operand range: the
    #: backends skip the byte movement, but the action still flows
    #: through the scheduler for dependence ordering.
    elided: bool = False
    # bookkeeping
    label: str = ""
    seq: int = field(default_factory=lambda: next(_action_ids))
    completion: Optional["HEvent"] = None
    deps: List["HEvent"] = field(default_factory=list)
    barrier: bool = False  # sync action with no operands orders everything
    #: Cached operand footprint: one ``(buffer uid, start, end, writes)``
    #: interval per non-empty operand, computed once at construction.
    #: This is what ``conflicts_with`` and the stream window's conflict
    #: index compare — an interval check, never an operand rebuild.
    footprint: Tuple[FootprintEntry, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # Zero-length operands touch no bytes: they are excluded here so
        # they stay dependence-inert under the relaxed policy.
        self.footprint = tuple(
            (op.buffer.uid, op.offset, op.offset + op.nbytes, op.mode.writes)
            for op in self.operands
            if op.nbytes > 0
        )

    def clone_for_replay(self) -> "Action":
        """A fresh admissible copy of this action (the replay hot path).

        Shares the immutable description (operands, args, cost,
        footprint) with the template prototype and resets only the
        per-admission state: a new sequence number, no completion event,
        no explicit event deps (replay supplies edges directly), and
        ``elided`` cleared so the memory manager re-decides transfer
        elision against the coherence state *of this replay*, not of the
        capture run. Built via ``__new__`` + slot stores rather than the
        dataclass constructor — this runs once per action per replay and
        must not re-derive the footprint.
        """
        new = object.__new__(Action)
        new.kind = self.kind
        new.stream = self.stream
        new.operands = self.operands
        new.kernel = self.kernel
        new.args = self.args
        new.cost = self.cost
        new.direction = self.direction
        new.nbytes = self.nbytes
        new.src_domain = self.src_domain
        new.elided = False
        new.label = self.label
        new.seq = next(_action_ids)
        new.completion = None
        new.deps = []
        new.barrier = self.barrier
        new.footprint = self.footprint
        return new

    def conflicts_with(self, other: "Action") -> bool:
        """Operand-level conflict between two actions.

        A barrier sync conflicts with everything in its stream.
        """
        if self.barrier or other.barrier:
            return True
        for uid_a, start_a, end_a, writes_a in self.footprint:
            for uid_b, start_b, end_b, writes_b in other.footprint:
                if (
                    uid_a == uid_b
                    and (writes_a or writes_b)
                    and start_a < end_b
                    and start_b < end_a
                ):
                    return True
        return False

    @property
    def display(self) -> str:
        """Short label for traces."""
        if self.label:
            return self.label
        if self.kind is ActionKind.COMPUTE:
            return f"{self.kernel}#{self.seq}"
        if self.kind is ActionKind.XFER:
            tag = "h2d" if self.direction is XferDirection.SRC_TO_SINK else "d2h"
            return f"xfer-{tag}#{self.seq}"
        return f"sync#{self.seq}"


def as_operands(items: Sequence) -> Tuple[Operand, ...]:
    """Normalize a mixed sequence of operands/buffers to ``Operand`` tuples.

    Bare buffers become whole-buffer INOUT operands — matching the C
    library, where task arguments are proxy pointers with no in/out
    annotation and the runtime must assume read-write.
    """
    out: List[Operand] = []
    for item in items:
        if isinstance(item, Operand):
            out.append(item)
        elif hasattr(item, "all_inout"):
            out.append(item.all_inout())
        else:
            raise HStreamsBadArgument(
                f"operand must be an Operand or Buffer, got {type(item).__name__}"
            )
    return tuple(out)
