"""Buffers and the unified source-proxy address space.

All memory that user code can reference is represented in a single
*source proxy address space*, partitioned into buffers (paper §II). Each
buffer records, per domain in which it is instantiated, the "physical"
instance — a real numpy allocation under the thread backend, or a byte
count under the sim backend. Operand addresses translate from the proxy
space to the sink domain's instance automatically, which is the property
the paper contrasts with CUDA's per-device address juggling.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.actions import Operand, OperandMode
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsNotFound,
    HStreamsOutOfRange,
)
from repro.core.properties import MemType

__all__ = ["Buffer", "ProxyAddressSpace"]

_buffer_ids = itertools.count()

_ALIGN = 64  # cache-line alignment for proxy base addresses
_BASE = 0x1000  # leave page zero unmapped, as a real allocator would


class ProxyAddressSpace:
    """Allocator and resolver for the unified source proxy address space."""

    def __init__(self) -> None:
        self._next = _BASE
        self._bases: List[int] = []
        self._buffers: Dict[int, "Buffer"] = {}
        # Tombstones for destroyed buffers: base -> (nbytes, name).
        # Proxy ranges are never reused (the allocator cursor is
        # monotonic), so a tombstone identifies the stale buffer a
        # dangling proxy address used to point into.
        self._destroyed: Dict[int, Tuple[int, str]] = {}
        self._destroyed_bases: List[int] = []

    def allocate(self, nbytes: int) -> int:
        """Reserve an aligned proxy range and return its base address."""
        if nbytes <= 0:
            raise HStreamsBadArgument(f"buffer size must be > 0, got {nbytes}")
        base = self._next
        self._next = (base + nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        return base

    def register(self, buffer: "Buffer") -> None:
        """Make a buffer resolvable by proxy address."""
        idx = bisect.bisect_left(self._bases, buffer.proxy_base)
        self._bases.insert(idx, buffer.proxy_base)
        self._buffers[buffer.proxy_base] = buffer

    def unregister(self, buffer: "Buffer") -> None:
        """Remove a destroyed buffer from the resolver, leaving a
        tombstone so stale addresses resolve to a named error."""
        idx = bisect.bisect_left(self._bases, buffer.proxy_base)
        if idx >= len(self._bases) or self._bases[idx] != buffer.proxy_base:
            raise HStreamsNotFound(f"buffer {buffer.name!r} is not registered")
        self._bases.pop(idx)
        del self._buffers[buffer.proxy_base]
        self._destroyed[buffer.proxy_base] = (buffer.nbytes, buffer.name)
        bisect.insort(self._destroyed_bases, buffer.proxy_base)

    def resolve(self, proxy_addr: int) -> Tuple["Buffer", int]:
        """Translate a proxy address to ``(buffer, offset)``.

        This is the lookup the runtime performs when a raw proxy pointer
        is passed as a task operand. An address inside a *destroyed*
        buffer's (never-reused) range raises
        :class:`~repro.core.errors.HStreamsNotFound` naming that buffer;
        an address that was never part of any buffer raises
        :class:`~repro.core.errors.HStreamsOutOfRange`.
        """
        idx = bisect.bisect_right(self._bases, proxy_addr) - 1
        if idx >= 0:
            buf = self._buffers[self._bases[idx]]
            off = proxy_addr - buf.proxy_base
            if off < buf.nbytes:
                return buf, off
        didx = bisect.bisect_right(self._destroyed_bases, proxy_addr) - 1
        if didx >= 0:
            base = self._destroyed_bases[didx]
            nbytes, name = self._destroyed[base]
            if proxy_addr - base < nbytes:
                raise HStreamsNotFound(
                    f"proxy address {proxy_addr:#x} belonged to buffer "
                    f"{name!r}, which has been destroyed"
                )
        raise HStreamsOutOfRange(
            f"proxy address {proxy_addr:#x} falls in no registered buffer"
        )

    def __len__(self) -> int:
        return len(self._buffers)


class Buffer:
    """A region of the proxy address space, instantiable in many domains."""

    def __init__(
        self,
        space: ProxyAddressSpace,
        nbytes: int,
        name: str = "",
        mem_type: MemType = MemType.DDR,
        read_only: bool = False,
        host_array: Optional[np.ndarray] = None,
    ):
        if host_array is not None:
            # Wrapping requires the caller's memory, not a copy, so the
            # sink writes land where the user can see them.
            arr = np.ascontiguousarray(host_array)
            made_copy = arr is not host_array or arr.nbytes != host_array.nbytes
            if made_copy and not host_array.flags["C_CONTIGUOUS"]:
                raise HStreamsBadArgument(
                    f"buffer {name!r}: wrapped arrays must be C-contiguous"
                )
            nbytes = host_array.nbytes
        self.space = space
        self.nbytes = int(nbytes)
        self.uid = next(_buffer_ids)
        self.name = name or f"buf{self.uid}"
        self.mem_type = mem_type
        self.read_only = read_only
        self.proxy_base = space.allocate(self.nbytes)
        # domain index -> instance. Thread backend stores flat uint8 views
        # (or the wrapped host array); sim backend stores None placeholders.
        self.instances: Dict[int, Optional[np.ndarray]] = {}
        self.host_array = host_array
        space.register(self)

    # -- operand helpers -----------------------------------------------------

    def range(
        self, offset: int, nbytes: int, mode: OperandMode = OperandMode.INOUT
    ) -> Operand:
        """An operand covering ``[offset, offset + nbytes)`` of this buffer."""
        return Operand(self, offset, nbytes, mode)

    def all(self, mode: OperandMode = OperandMode.INOUT) -> Operand:
        """An operand covering the whole buffer."""
        return Operand(self, 0, self.nbytes, mode)

    def tensor(
        self,
        shape: Tuple[int, ...],
        offset: int = 0,
        dtype=np.float64,
        mode: OperandMode = OperandMode.INOUT,
    ) -> Operand:
        """A typed operand: resolves to a view of ``shape``/``dtype`` at the
        sink. This is what compute kernels receive as array arguments."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return Operand(self, offset, nbytes, mode, dtype=np.dtype(dtype), shape=tuple(shape))

    def all_in(self) -> Operand:
        """Whole-buffer read operand."""
        return self.all(OperandMode.IN)

    def all_out(self) -> Operand:
        """Whole-buffer write operand."""
        return self.all(OperandMode.OUT)

    def all_inout(self) -> Operand:
        """Whole-buffer read-write operand."""
        return self.all(OperandMode.INOUT)

    # -- instances -----------------------------------------------------------

    def instantiated_in(self, domain: int) -> bool:
        """Whether this buffer has an instance in ``domain``."""
        return domain in self.instances

    def instance_array(self, domain: int) -> np.ndarray:
        """The flat uint8 view of the instance in ``domain`` (thread backend)."""
        try:
            arr = self.instances[domain]
        except KeyError:
            raise HStreamsNotFound(
                f"buffer {self.name!r} has no instance in domain {domain}"
            ) from None
        if arr is None:
            raise HStreamsNotFound(
                f"buffer {self.name!r} has a sim-only instance in domain {domain}"
            )
        return arr

    def view(self, domain: int, offset: int = 0, nbytes: Optional[int] = None,
             dtype=np.float64, shape=None) -> np.ndarray:
        """A typed numpy view into a domain instance.

        This is the sink-side address translation: a task operand given in
        proxy space resolves to this view in the sink's address space.
        """
        if nbytes is None:
            nbytes = self.nbytes - offset
        if offset < 0 or offset + nbytes > self.nbytes:
            raise HStreamsOutOfRange(
                f"view [{offset}, {offset + nbytes}) exceeds buffer "
                f"{self.name!r} of {self.nbytes} bytes"
            )
        flat = self.instance_array(domain)[offset : offset + nbytes]
        typed = flat.view(dtype)
        return typed.reshape(shape) if shape is not None else typed

    def destroy(self) -> None:
        """Release the proxy range.

        Instance teardown (backend state, capacity accounting, the
        ``instances`` dict itself) belongs to the runtime's
        :class:`~repro.core.memory.MemoryManager`; a bare buffer used
        without a runtime never instantiates anywhere.
        """
        self.space.unregister(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        doms = sorted(self.instances)
        return (
            f"<Buffer {self.name!r} {self.nbytes}B proxy={self.proxy_base:#x} "
            f"domains={doms}>"
        )
