"""Collective transfer planner: one payload, many domains, real schedules.

The paper's §III overhead model shows what every caller of this runtime
kept rediscovering by hand: moving one buffer to N domains as N
independent host-rooted copies serializes on the host link and leaves
the rest of the fabric idle. This module is the planning layer between
the user collectives API (``hs.broadcast`` and friends) and the
scheduler: it tiles the payload into chunks and lowers the collective to
ordinary chunk-level :class:`~repro.core.actions.Action` transfers (plus
copy/accumulate computes for reductions) over a chosen schedule:

``serial``
    N independent host→domain transfers — the naive loop, as a plan.
``ring``
    A store-and-forward chain host→d0→d1→…; each hop forwards the whole
    payload (one chunk) from the previous domain's instance.
``multicast``
    The same chain, chunk-pipelined: hop *k* forwards chunk *c* as soon
    as chunk *c* arrived, so all hops stream concurrently. On a
    contention-aware fabric the host injects the payload once and the
    chain hides the forwarding behind it — time ≈ B/bw + (N−1)·chunk/bw
    instead of serial's N·B/bw.
``tree``
    Binomial: every domain that holds the payload forwards it each
    round, chunk-pipelined; ⌈log₂(N+1)⌉ rounds.

Chunk dependences are wired through the scheduler's *precomputed*
admission path (:meth:`~repro.core.scheduler.Scheduler.enqueue_precomputed`),
so the memory manager's coherence/elision, hsan, failure policies, and
``capture_graph()``/``replay()`` all see ordinary actions. External
ordering against work already in the participating streams comes from
one window probe per stream per collective
(:meth:`~repro.core.scheduler.Scheduler.window_producers`), not one scan
per chunk — which is also why a replayed collective performs zero
dependence scans.

Peer forwarding hops are transfers with ``Action.src_domain`` set: they
read the chunk out of the upstream domain's instance instead of the
host's. On the sim backend they are only routable when the platform has
``peer_enabled`` fabric topology; ``schedule="auto"`` therefore degrades
to ``serial`` (exactly the old N-transfer loop, one chunk per
destination) on classic PCIe platforms, keeping every calibrated figure
byte-identical.

Reductions have no transfer primitive that crosses buffers, so
``reduce`` stages per-domain contributions through cached scratch
buffers: a device-side ``coll_copy`` compute, a chunked retrieve, and a
host-side ``coll_acc_<op>`` accumulate per contributor. The scratch
buffers and collective streams are created lazily and cached on the
runtime — run one collective of the same shape before ``capture_graph()``
(buffer/stream creation is illegal inside a capture scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.actions import (
    Action,
    ActionKind,
    Operand,
    OperandMode,
    XferDirection,
)
from repro.core.errors import HStreamsBadArgument
from repro.sim.kernels import KernelCost

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.buffer import Buffer
    from repro.core.events import HEvent
    from repro.core.runtime import HStreams
    from repro.core.stream import Stream

__all__ = [
    "SCHEDULES",
    "REDUCE_OPS",
    "CollectiveResult",
    "plan_broadcast",
    "plan_scatter",
    "plan_gather",
    "plan_reduce",
    "plan_allreduce",
]

SCHEDULES = ("auto", "serial", "tree", "ring", "multicast")

#: Reduction combiners; each registers a ``coll_acc_<op>`` kernel.
REDUCE_OPS = ("sum", "prod", "max", "min")

#: Floor for one pipelined chunk: below this the per-transfer overheads
#: dominate and pipelining stops paying.
MIN_CHUNK_BYTES = 64 * 1024

#: Pipelined schedules split the payload into at most this many chunks.
DEFAULT_PIPELINE_CHUNKS = 8

_REDUCE_UFUNCS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


@dataclass
class CollectiveResult:
    """What one planned collective produced.

    ``actions`` is every chunk transfer / staging compute in admission
    order; ``arrivals`` maps each destination domain to the completion
    event after which its full payload (or, for gather/reduce, the
    host's result at key ``0``) is in place.
    """

    kind: str
    schedule: str
    domains: Tuple[int, ...]
    nchunks: int
    chunk_bytes: int
    actions: List[Action] = field(default_factory=list)
    arrivals: Dict[int, "HEvent"] = field(default_factory=dict)
    _hs: Optional["HStreams"] = field(default=None, repr=False)

    @property
    def events(self) -> List["HEvent"]:
        """Completion events of every planned action."""
        return [a.completion for a in self.actions if a.completion is not None]

    @property
    def done(self) -> List["HEvent"]:
        """The per-domain frontier events (all fired ⇒ collective done)."""
        return list(self.arrivals.values())

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block the source until the whole collective completed."""
        if self._hs is not None and self.events:
            self._hs.event_wait(self.events, timeout=timeout)


StreamMap = Optional[Dict[int, "Stream"]]
AfterArg = Sequence  # HEvent | Action entries


class _Plan:
    """Shared admission plumbing for one collective being lowered."""

    def __init__(
        self,
        hs: "HStreams",
        kind: str,
        schedule: str,
        domains: Sequence[int],
        nchunks: int,
        chunk_bytes: int,
    ):
        self.hs = hs
        self.result = CollectiveResult(
            kind=kind,
            schedule=schedule,
            domains=tuple(domains),
            nchunks=nchunks,
            chunk_bytes=chunk_bytes,
            _hs=hs,
        )

    # -- dependence helpers ---------------------------------------------------

    def first_deps(self, stream: "Stream", ops: Sequence[Operand]) -> List[Action]:
        """External ordering for the first chunk admitted into ``stream``.

        One window scan over the collective's whole footprint on that
        stream — the producers a normal ``enqueue`` would have found.
        """
        probe = Action(kind=ActionKind.SYNC, stream=stream, operands=tuple(ops))
        return self.hs.scheduler.window_producers(stream, probe)

    # -- admission ------------------------------------------------------------

    def _admit(self, action: Action, deps: Sequence[Optional[Action]]) -> Action:
        hs = self.hs
        if action.kind is ActionKind.XFER:
            hs.stats["transfers"] += 1
            hs.stats["bytes_transferred"] += action.nbytes
        elif action.kind is ActionKind.COMPUTE:
            hs.stats["computes"] += 1
        else:
            hs.stats["syncs"] += 1
        hs.backend.advance_host(hs.config.enqueue_overhead_s)
        seen: set = set()
        dep_actions: List[Action] = []
        for dep in deps:
            if dep is not None and id(dep) not in seen:
                seen.add(id(dep))
                dep_actions.append(dep)
        hs.scheduler.enqueue_precomputed(action, dep_actions)
        self.result.actions.append(action)
        return action

    def xfer(
        self,
        stream: "Stream",
        buf: "Buffer",
        offset: int,
        nbytes: int,
        direction: XferDirection = XferDirection.SRC_TO_SINK,
        src_domain: Optional[int] = None,
        deps: Sequence[Optional[Action]] = (),
        label: str = "",
    ) -> Action:
        mode = (
            OperandMode.OUT
            if direction is XferDirection.SRC_TO_SINK
            else OperandMode.IN
        )
        op = Operand(buf, offset, nbytes, mode)
        action = Action(
            kind=ActionKind.XFER,
            stream=stream,
            operands=(op,),
            direction=direction,
            nbytes=nbytes,
            src_domain=src_domain,
            label=label,
        )
        hs = self.hs
        hs._ensure_instance(buf, 0)
        hs._ensure_instance(buf, stream.domain)
        if src_domain is not None and src_domain != 0:
            hs._ensure_instance(buf, src_domain)
        return self._admit(action, deps)

    def compute(
        self,
        stream: "Stream",
        kernel: str,
        ops: Sequence[Operand],
        cost: KernelCost,
        deps: Sequence[Optional[Action]] = (),
        label: str = "",
    ) -> Action:
        action = Action(
            kind=ActionKind.COMPUTE,
            stream=stream,
            operands=tuple(ops),
            kernel=kernel,
            args=tuple(ops),
            cost=cost,
            label=label,
        )
        for op in ops:
            self.hs._ensure_instance(op.buffer, stream.domain)
        return self._admit(action, deps)


# -- argument normalization ----------------------------------------------------


def _check_range(buf: "Buffer", offset: int, nbytes: Optional[int]) -> Tuple[int, int]:
    if nbytes is None:
        nbytes = buf.nbytes - offset
    if offset < 0 or nbytes < 0 or offset + nbytes > buf.nbytes:
        raise HStreamsBadArgument(
            f"collective range [{offset}, {offset + nbytes}) exceeds "
            f"buffer {buf.name!r} of {buf.nbytes} bytes"
        )
    return offset, nbytes


def _normalize_domains(hs: "HStreams", domains: Sequence[int]) -> List[int]:
    out: List[int] = []
    seen: set = set()
    for d in domains:
        d = int(d)
        hs.domain(d)  # raises HStreamsNotFound on a bad index
        if d not in seen:
            seen.add(d)
            out.append(d)
    if not out:
        raise HStreamsBadArgument("collective needs at least one domain")
    return out


def _targets(hs: "HStreams", domains: Sequence[int]) -> List[int]:
    """Non-host destinations, order preserved (host already has the data)."""
    return [d for d in _normalize_domains(hs, domains) if d != 0]


def _peer_routable(hs: "HStreams") -> bool:
    """Whether peer forwarding hops can execute on this runtime.

    The sim backend routes through the platform fabric: peer hops need
    ``peer_enabled`` topology. The thread backend copies between numpy
    instances, and the capture backend executes nothing — both follow
    the platform flag anyway so a program plans identically under every
    backend of the same platform.
    """
    return bool(getattr(hs.platform, "peer_enabled", False))


def _resolve_schedule(
    hs: "HStreams", schedule: str, ntargets: int, nbytes: int
) -> str:
    if schedule not in SCHEDULES:
        raise HStreamsBadArgument(
            f"unknown schedule {schedule!r}; use one of {SCHEDULES}"
        )
    if schedule == "auto":
        if _peer_routable(hs) and ntargets >= 2 and nbytes > 0:
            return "multicast"
        return "serial"
    if schedule in ("tree", "ring", "multicast") and not _peer_routable(hs):
        raise HStreamsBadArgument(
            f"schedule {schedule!r} needs peer-routable fabric; this "
            "platform has peer_enabled=False — use 'serial' or 'auto', "
            "or build the platform with peer links "
            "(e.g. make_cluster_platform())"
        )
    return schedule


def _chunk_ranges(offset: int, nbytes: int, chunk_bytes: int) -> List[Tuple[int, int]]:
    # A zero-length range has no chunks. Returning a single empty chunk
    # here (as this once did) made zero-length collectives emit real
    # zero-byte transfers — actions that instantiate buffers, occupy
    # stream windows, and order against unrelated work, for no bytes.
    if nbytes == 0:
        return []
    out: List[Tuple[int, int]] = []
    pos, end = offset, offset + nbytes
    while pos < end:
        n = min(chunk_bytes, end - pos)
        out.append((pos, n))
        pos += n
    return out


def _default_chunk_bytes(schedule: str, nbytes: int) -> int:
    if schedule in ("serial", "ring") or nbytes == 0:
        return max(nbytes, 1)  # one chunk: exactly the naive transfer
    per = -(-nbytes // DEFAULT_PIPELINE_CHUNKS)
    return max(MIN_CHUNK_BYTES, per)


def _as_actions(after: AfterArg) -> List[Action]:
    out: List[Action] = []
    for item in after or ():
        if isinstance(item, Action):
            out.append(item)
        else:
            act = getattr(item, "action", None)
            if act is not None:
                out.append(act)
    return out


def _stream_for(hs: "HStreams", streams: StreamMap, domain: int) -> "Stream":
    if streams is not None and domain in streams:
        stream = streams[domain]
        if stream.domain != domain:
            raise HStreamsBadArgument(
                f"stream {stream.name!r} sinks in domain {stream.domain}, "
                f"not {domain}"
            )
        return stream
    return hs._collective_stream(domain)


def _slices(
    offset: int, nbytes: int, targets: Sequence[int], parts
) -> List[Tuple[int, int, int]]:
    """Per-domain contiguous slices ``(domain, offset, nbytes)``.

    Without explicit ``parts`` the range splits evenly in target order,
    remainder spread over the leading domains (every byte lands
    somewhere, no byte lands twice).
    """
    if parts is not None:
        out = []
        for d in targets:
            if d not in parts:
                raise HStreamsBadArgument(f"parts is missing domain {d}")
            off, n = parts[d]
            out.append((d, int(off), int(n)))
        return out
    m = len(targets)
    base, rem = divmod(nbytes, m)
    out = []
    pos = offset
    for i, d in enumerate(targets):
        n = base + (1 if i < rem else 0)
        out.append((d, pos, n))
        pos += n
    return out


# -- broadcast -----------------------------------------------------------------


def plan_broadcast(
    hs: "HStreams",
    buf: "Buffer",
    domains: Sequence[int],
    offset: int = 0,
    nbytes: Optional[int] = None,
    schedule: str = "auto",
    chunk_bytes: Optional[int] = None,
    streams: StreamMap = None,
    after: AfterArg = (),
    label: str = "",
) -> CollectiveResult:
    """Replicate ``buf[offset:offset+nbytes]`` from the host to ``domains``."""
    offset, nbytes = _check_range(buf, offset, nbytes)
    targets = _targets(hs, domains)
    sched = _resolve_schedule(hs, schedule, len(targets), nbytes)
    if chunk_bytes is None:
        chunk_bytes = _default_chunk_bytes(sched, nbytes)
    elif chunk_bytes < 1:
        raise HStreamsBadArgument(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    chunks = _chunk_ranges(offset, nbytes, chunk_bytes)
    plan = _Plan(hs, "broadcast", sched, targets, len(chunks), chunk_bytes)
    after_actions = _as_actions(after)
    tag = label or f"bcast:{buf.name}"
    if not targets or not chunks:
        # No destinations, or a zero-length payload: dependence-inert —
        # no actions, no arrivals, nothing admitted into any stream.
        return plan.result
    if sched == "serial":
        _serial_broadcast(plan, buf, targets, offset, nbytes, chunks, streams,
                          after_actions, tag)
    elif sched in ("ring", "multicast"):
        _chain_broadcast(plan, buf, targets, offset, nbytes, chunks, streams,
                         after_actions, tag)
    else:  # tree
        _tree_broadcast(plan, buf, targets, offset, nbytes, chunks, streams,
                        after_actions, tag)
    return plan.result


def _serial_broadcast(plan, buf, targets, offset, nbytes, chunks, streams,
                      after_actions, tag):
    hs = plan.hs
    full = Operand(buf, offset, nbytes, OperandMode.OUT)
    for d in targets:
        s = _stream_for(hs, streams, d)
        first = plan.first_deps(s, (full,)) + after_actions
        prev: Optional[Action] = None
        for c, (off, n) in enumerate(chunks):
            deps = first if prev is None else [prev]
            prev = plan.xfer(s, buf, off, n, deps=deps, label=f"{tag}:d{d}c{c}")
        plan.result.arrivals[d] = prev.completion


def _chain_broadcast(plan, buf, targets, offset, nbytes, chunks, streams,
                     after_actions, tag):
    """host→d0→d1→… chain; ``ring`` is this with one whole-payload chunk."""
    hs = plan.hs
    full = Operand(buf, offset, nbytes, OperandMode.OUT)
    upstream: List[Action] = []
    for h, d in enumerate(targets):
        s = _stream_for(hs, streams, d)
        src = None if h == 0 else targets[h - 1]
        first = plan.first_deps(s, (full,))
        if h == 0:
            first = first + after_actions
        row: List[Action] = []
        for c, (off, n) in enumerate(chunks):
            deps: List[Optional[Action]] = []
            if c == 0:
                deps.extend(first)
            else:
                deps.append(row[c - 1])
            if h > 0:
                deps.append(upstream[c])
            row.append(
                plan.xfer(s, buf, off, n, src_domain=src, deps=deps,
                          label=f"{tag}:h{h}c{c}")
            )
        upstream = row
        plan.result.arrivals[d] = row[-1].completion


def _tree_broadcast(plan, buf, targets, offset, nbytes, chunks, streams,
                    after_actions, tag):
    """Binomial tree over vertices 0..m, vertex 0 = host, i = targets[i-1]."""
    hs = plan.hs
    full = Operand(buf, offset, nbytes, OperandMode.OUT)
    m = len(targets)
    # arrival_row[v][c]: the action that delivered chunk c to vertex v.
    arrival_row: Dict[int, List[Optional[Action]]] = {0: [None] * len(chunks)}
    r = 0
    while (1 << r) <= m:
        span = 1 << r
        for v in range(min(span, m + 1)):
            w = v + span
            if w > m or w in arrival_row:
                continue
            d = targets[w - 1]
            s = _stream_for(hs, streams, d)
            src = None if v == 0 else targets[v - 1]
            first = plan.first_deps(s, (full,))
            if v == 0:
                first = first + after_actions
            row: List[Optional[Action]] = []
            for c, (off, n) in enumerate(chunks):
                deps: List[Optional[Action]] = []
                if c == 0:
                    deps.extend(first)
                else:
                    deps.append(row[c - 1])
                deps.append(arrival_row[v][c])
                row.append(
                    plan.xfer(s, buf, off, n, src_domain=src, deps=deps,
                              label=f"{tag}:r{r}v{w}c{c}")
                )
            arrival_row[w] = row
            plan.result.arrivals[d] = row[-1].completion
        r += 1


# -- scatter / gather ----------------------------------------------------------


def plan_scatter(
    hs: "HStreams",
    buf: "Buffer",
    domains: Sequence[int],
    offset: int = 0,
    nbytes: Optional[int] = None,
    parts: Optional[Dict[int, Tuple[int, int]]] = None,
    chunk_bytes: Optional[int] = None,
    streams: StreamMap = None,
    after: AfterArg = (),
    label: str = "",
) -> CollectiveResult:
    """Distribute contiguous slices of the range, one per domain.

    ``parts`` overrides the even split with explicit per-domain
    ``(offset, nbytes)`` slices.
    """
    offset, nbytes = _check_range(buf, offset, nbytes)
    targets = _targets(hs, domains)
    if not targets:
        raise HStreamsBadArgument("scatter needs at least one non-host domain")
    slices = _slices(offset, nbytes, targets, parts)
    for d, off, n in slices:
        _check_range(buf, off, n)
    chunk = chunk_bytes or max(nbytes, 1)
    # With nbytes < len(targets) the even split leaves trailing domains
    # with zero-length slices; those emit no chunks (and get no arrival
    # event — no bytes ever move toward them). The reported chunk count
    # is the widest non-empty slice's, clamped to at least one whenever
    # any slice has bytes.
    chunked = [(d, off, _chunk_ranges(off, n, chunk)) for d, off, n in slices]
    nchunks = max((len(cs) for _, _, cs in chunked), default=0)
    plan = _Plan(hs, "scatter", "serial", targets, nchunks, chunk)
    after_actions = _as_actions(after)
    tag = label or f"scatter:{buf.name}"
    for (d, off, n), (_, _, cs) in zip(slices, chunked):
        if not cs:
            continue
        s = _stream_for(hs, streams, d)
        first = plan.first_deps(s, (Operand(buf, off, n, OperandMode.OUT),))
        first = first + after_actions
        prev: Optional[Action] = None
        for c, (coff, cn) in enumerate(cs):
            deps = first if prev is None else [prev]
            prev = plan.xfer(s, buf, coff, cn, deps=deps, label=f"{tag}:d{d}c{c}")
        plan.result.arrivals[d] = prev.completion
    return plan.result


def plan_gather(
    hs: "HStreams",
    buf: "Buffer",
    domains: Sequence[int],
    offset: int = 0,
    nbytes: Optional[int] = None,
    parts: Optional[Dict[int, Tuple[int, int]]] = None,
    chunk_bytes: Optional[int] = None,
    streams: StreamMap = None,
    after: AfterArg = (),
    label: str = "",
) -> CollectiveResult:
    """Pull each domain's slice of the range home (scatter's inverse)."""
    offset, nbytes = _check_range(buf, offset, nbytes)
    targets = _targets(hs, domains)
    if not targets:
        raise HStreamsBadArgument("gather needs at least one non-host domain")
    slices = _slices(offset, nbytes, targets, parts)
    for d, off, n in slices:
        _check_range(buf, off, n)
    chunk = chunk_bytes or max(nbytes, 1)
    # Mirror of scatter: zero-length slices contribute no chunks and no
    # arrival events.
    chunked = [(d, off, _chunk_ranges(off, n, chunk)) for d, off, n in slices]
    nchunks = max((len(cs) for _, _, cs in chunked), default=0)
    plan = _Plan(hs, "gather", "serial", targets, nchunks, chunk)
    after_actions = _as_actions(after)
    tag = label or f"gather:{buf.name}"
    for (d, off, n), (_, _, cs) in zip(slices, chunked):
        if not cs:
            continue
        s = _stream_for(hs, streams, d)
        first = plan.first_deps(s, (Operand(buf, off, n, OperandMode.IN),))
        first = first + after_actions
        prev: Optional[Action] = None
        for c, (coff, cn) in enumerate(cs):
            deps = first if prev is None else [prev]
            prev = plan.xfer(
                s, buf, coff, cn, direction=XferDirection.SINK_TO_SRC,
                deps=deps, label=f"{tag}:d{d}c{c}",
            )
        plan.result.arrivals[d] = prev.completion
    return plan.result


# -- reduce / allreduce --------------------------------------------------------


def _register_reduce_kernels(hs: "HStreams") -> None:
    if "coll_copy" in hs._kernels:
        return
    hs.register_kernel("coll_copy", fn=lambda dst, src: np.copyto(dst, src))
    for name, ufunc in _REDUCE_UFUNCS.items():
        def make(u):
            return lambda acc, part: u(acc, part, out=acc)

        hs.register_kernel(f"coll_acc_{name}", fn=make(ufunc))


def _copy_cost(nbytes: int) -> KernelCost:
    return KernelCost(
        kernel="coll_copy",
        flops=0.0,
        size=float(max(1, nbytes // 8)),
        bytes_moved=2.0 * nbytes,
    )


def _acc_cost(nbytes: int) -> KernelCost:
    return KernelCost(
        kernel="coll_acc",
        flops=float(max(1, nbytes // 8)),
        size=float(max(1, nbytes // 8)),
        bytes_moved=3.0 * nbytes,
    )


def plan_reduce(
    hs: "HStreams",
    buf: "Buffer",
    domains: Sequence[int],
    op: str = "sum",
    dtype=np.float64,
    offset: int = 0,
    nbytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
    streams: StreamMap = None,
    after: AfterArg = (),
    label: str = "",
) -> CollectiveResult:
    """Combine each domain's instance of the range into the host's.

    Result: ``host ← host op d0 op d1 op …`` elementwise over ``dtype``
    items. Per contributor the plan stages through a cached scratch
    buffer: device-side ``coll_copy``, chunked retrieve, host
    ``coll_acc_<op>``; accumulates serialize in contributor order for
    determinism.
    """
    if op not in _REDUCE_UFUNCS:
        raise HStreamsBadArgument(f"unknown reduce op {op!r}; use one of {REDUCE_OPS}")
    offset, nbytes = _check_range(buf, offset, nbytes)
    itemsize = np.dtype(dtype).itemsize
    if nbytes % itemsize:
        raise HStreamsBadArgument(
            f"reduce range of {nbytes} bytes is not a whole number of "
            f"{np.dtype(dtype).name} items"
        )
    targets = _targets(hs, domains)
    if not targets:
        raise HStreamsBadArgument("reduce needs at least one non-host domain")
    _register_reduce_kernels(hs)
    chunk = chunk_bytes or max(nbytes, 1)
    plan = _Plan(
        hs, "reduce", "serial", targets,
        len(_chunk_ranges(0, nbytes, chunk)), chunk,
    )
    if nbytes == 0:
        # Zero items to combine: dependence-inert, and in particular no
        # scratch staging (zero-length scratch buffers cannot exist).
        return plan.result
    after_actions = _as_actions(after)
    tag = label or f"reduce:{buf.name}"
    host_stream = _stream_for(hs, streams, 0)
    host_first = plan.first_deps(
        host_stream, (Operand(buf, offset, nbytes, OperandMode.INOUT),)
    )
    accum: Optional[Action] = None
    for d in targets:
        scratch = hs._collective_scratch(buf, d, nbytes)
        s = _stream_for(hs, streams, d)
        copy_ops = (
            Operand(scratch, 0, nbytes, OperandMode.OUT, dtype=dtype),
            Operand(buf, offset, nbytes, OperandMode.IN, dtype=dtype),
        )
        first = plan.first_deps(s, copy_ops) + after_actions
        prev = plan.compute(
            s, "coll_copy", copy_ops, _copy_cost(nbytes), deps=first,
            label=f"{tag}:copy:d{d}",
        )
        for c, (coff, cn) in enumerate(_chunk_ranges(0, nbytes, chunk)):
            prev = plan.xfer(
                s, scratch, coff, cn, direction=XferDirection.SINK_TO_SRC,
                deps=[prev], label=f"{tag}:ret:d{d}c{c}",
            )
        acc_ops = (
            Operand(buf, offset, nbytes, OperandMode.INOUT, dtype=dtype),
            Operand(scratch, 0, nbytes, OperandMode.IN, dtype=dtype),
        )
        deps: List[Optional[Action]] = [prev]
        if accum is None:
            deps.extend(host_first)
            deps.extend(after_actions)
        else:
            deps.append(accum)
        accum = plan.compute(
            host_stream, f"coll_acc_{op}", acc_ops, _acc_cost(nbytes),
            deps=deps, label=f"{tag}:acc:d{d}",
        )
    plan.result.arrivals[0] = accum.completion
    return plan.result


def plan_allreduce(
    hs: "HStreams",
    buf: "Buffer",
    domains: Sequence[int],
    op: str = "sum",
    dtype=np.float64,
    offset: int = 0,
    nbytes: Optional[int] = None,
    schedule: str = "auto",
    chunk_bytes: Optional[int] = None,
    streams: StreamMap = None,
    after: AfterArg = (),
    label: str = "",
) -> CollectiveResult:
    """Reduce into the host, then broadcast the result back out."""
    tag = label or f"allreduce:{buf.name}"
    red = plan_reduce(
        hs, buf, domains, op=op, dtype=dtype, offset=offset, nbytes=nbytes,
        chunk_bytes=chunk_bytes, streams=streams, after=after,
        label=f"{tag}:reduce",
    )
    # A zero-length reduce plans no actions; the broadcast then orders
    # against the caller's original ``after`` instead of a final
    # accumulate that does not exist.
    final = red.actions[-1] if red.actions else None
    bc = plan_broadcast(
        hs, buf, domains, offset=offset, nbytes=nbytes, schedule=schedule,
        chunk_bytes=chunk_bytes, streams=streams,
        after=[final] if final is not None else after,
        label=f"{tag}:bcast",
    )
    out = CollectiveResult(
        kind="allreduce",
        schedule=bc.schedule,
        domains=red.domains,
        nchunks=bc.nchunks,
        chunk_bytes=bc.chunk_bytes,
        actions=red.actions + bc.actions,
        arrivals={**red.arrivals, **bc.arrivals},
        _hs=hs,
    )
    return out
