"""repro: a reproduction of "Heterogeneous Streaming" (hStreams), IPDPSW 2016.

The package implements the hStreams runtime library (``repro.core``) over
a simulated heterogeneous platform (``repro.sim``) and the COI/SCIF
plumbing stack (``repro.coi``), plus the comparator programming models
(``repro.models``), the OmpSs dataflow layer (``repro.ompss``), tiled
linear algebra (``repro.linalg``), the Abaqus-like solver and Petrobras
RTM applications (``repro.apps``), and the benchmark harness
(``repro.bench``).

Quickstart::

    import numpy as np
    from repro import HStreams, XferDirection

    hs = HStreams(backend="thread")
    hs.register_kernel("scale", fn=lambda x, f: np.multiply(x, f, out=x))
    s = hs.stream_create(domain=1, ncores=30)

    data = np.arange(8.0)
    buf = hs.wrap(data)
    hs.enqueue_xfer(s, buf)                              # host -> card
    hs.enqueue_compute(s, "scale", args=(buf.tensor((8,)), 2.0))
    hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)   # card -> host
    hs.thread_synchronize()
    assert (data == np.arange(8.0) * 2).all()
"""

from repro.core import (
    Buffer,
    FaultPlan,
    FaultSpec,
    GraphInstance,
    GraphTemplate,
    HEvent,
    HStreams,
    HStreamsError,
    InjectedFault,
    MemType,
    Operand,
    OperandMode,
    RuntimeConfig,
    Stream,
    XferDirection,
    inject_faults,
    is_transient,
    mark_transient,
)
from repro.sim.platforms import Platform, make_platform

__version__ = "1.0.0"

__all__ = [
    "Buffer",
    "FaultPlan",
    "FaultSpec",
    "GraphInstance",
    "GraphTemplate",
    "HEvent",
    "HStreams",
    "HStreamsError",
    "InjectedFault",
    "MemType",
    "Operand",
    "OperandMode",
    "RuntimeConfig",
    "Stream",
    "XferDirection",
    "inject_faults",
    "is_transient",
    "mark_transient",
    "Platform",
    "make_platform",
    "__version__",
]
