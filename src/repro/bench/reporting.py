"""Result containers and terminal rendering for the benchmarks.

Every benchmark regenerates one of the paper's tables or figures; these
helpers print the measured rows next to the paper's values so the shape
comparison (who wins, by roughly what factor, where crossovers fall) is
visible at a glance in the pytest output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "ComparisonTable", "ascii_plot", "format_table"]


@dataclass
class Series:
    """One labeled curve of a figure sweep."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(x)
        self.y.append(y)

    @property
    def peak(self) -> float:
        """Largest y value (the figure-label numbers in the paper)."""
        return max(self.y) if self.y else 0.0

    @property
    def final(self) -> float:
        """The last y value (rightmost point of the curve)."""
        return self.y[-1] if self.y else 0.0


@dataclass
class ComparisonTable:
    """Paper-vs-measured rows for one experiment."""

    title: str
    unit: str = ""
    rows: List[Dict] = field(default_factory=list)

    def add(self, label: str, paper: Optional[float], measured: float) -> None:
        """One comparison row; ``paper=None`` for rows the paper omits."""
        ratio = measured / paper if paper else None
        self.rows.append(
            {"label": label, "paper": paper, "measured": measured, "ratio": ratio}
        )

    def render(self) -> str:
        """A fixed-width table with a measured/paper ratio column."""
        lines = [f"== {self.title} ==",
                 f"{'configuration':<34} {'paper':>9} {'measured':>9} {'meas/paper':>10}"]
        for r in self.rows:
            paper = f"{r['paper']:.5g}" if r["paper"] is not None else "-"
            ratio = f"{r['ratio']:.2f}x" if r["ratio"] is not None else "-"
            lines.append(
                f"{r['label']:<34} {paper:>9} {r['measured']:>9.5g} {ratio:>10}"
            )
        if self.unit:
            lines.append(f"(values in {self.unit})")
        return "\n".join(lines)

    def max_deviation(self) -> float:
        """Largest |measured/paper - 1| over rows with paper values."""
        devs = [abs(r["ratio"] - 1.0) for r in self.rows if r["ratio"] is not None]
        return max(devs) if devs else 0.0


def ascii_plot(
    series: Sequence[Series], width: int = 72, height: int = 18, title: str = ""
) -> str:
    """Render curves as a terminal scatter/line plot.

    Each series gets a distinct glyph; axes are linear, ranges derived
    from the data. Meant for eyeballing figure shapes in pytest -s runs.
    """
    pts = [(s, xi, yi) for s in series for xi, yi in zip(s.x, s.y)]
    if not pts:
        return "(no data)"
    xs = [p[1] for p in pts]
    ys = [p[2] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(0.0, min(ys)), max(ys)
    xr = max(x1 - x0, 1e-12)
    yr = max(y1 - y0, 1e-12)
    glyphs = "*o+x#@%&$~^"
    canvas = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        g = glyphs[si % len(glyphs)]
        for xi, yi in zip(s.x, s.y):
            col = int((xi - x0) / xr * (width - 1))
            row = height - 1 - int((yi - y0) / yr * (height - 1))
            canvas[row][col] = g
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:.4g} +" + "-" * width)
    for row in canvas:
        lines.append("       |" + "".join(row))
    lines.append(f"{y0:.4g} +" + "-" * width)
    lines.append(f"        {x0:<12.6g}{'':^{max(width - 24, 0)}}{x1:>12.6g}")
    for si, s in enumerate(series):
        lines.append(f"  {glyphs[si % len(glyphs)]} {s.label}")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A simple fixed-width table."""
    cols = len(headers)
    widths = [len(str(h)) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != cols:
            raise ValueError(f"row {row} does not match {cols} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in rendered)
    return "\n".join(out)
