"""Benchmark harness: result tables, ASCII plots, and code metrics.

* :mod:`repro.bench.reporting` — series/table containers, paper-vs-
  measured comparison tables, and a terminal line plot for the figure
  sweeps.
* :mod:`repro.bench.coding` — the Fig. 3 coding comparison: six runnable
  matmul-offload implementations (one per programming model) with
  per-phase annotations, plus the analyzer that counts additional source
  lines, unique APIs, and total API calls.
"""

from repro.bench.reporting import ComparisonTable, Series, ascii_plot, format_table

__all__ = ["ComparisonTable", "Series", "ascii_plot", "format_table"]
