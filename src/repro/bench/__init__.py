"""Benchmark harness: result tables, ASCII plots, and code metrics.

* :mod:`repro.bench.reporting` — series/table containers, paper-vs-
  measured comparison tables, and a terminal line plot for the figure
  sweeps.
* :mod:`repro.bench.coding` — the Fig. 3 coding comparison: six runnable
  matmul-offload implementations (one per programming model) with
  per-phase annotations, plus the analyzer that counts additional source
  lines, unique APIs, and total API calls.
* :mod:`repro.bench.perf` — hot-path enqueue/dispatch microbenchmarks
  (``python -m repro.bench.perf``): emits ``BENCH_perf.json`` rows and
  gates CI on deterministic counters via ``--check`` (DESIGN.md §8).
"""

from repro.bench.reporting import ComparisonTable, Series, ascii_plot, format_table

__all__ = ["ComparisonTable", "Series", "ascii_plot", "format_table"]
