"""Sweep helpers for benchmark scripts.

Small conveniences for the figure benchmarks: run a callable over a
parameter axis into a :class:`~repro.bench.reporting.Series`, or over a
cartesian grid into a dict.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Mapping, Sequence, Tuple

from repro.bench.reporting import Series

__all__ = ["sweep", "grid_sweep"]


def sweep(
    label: str, fn: Callable[[float], float], xs: Iterable[float]
) -> Series:
    """Evaluate ``fn`` over ``xs`` into a labeled series."""
    s = Series(label)
    for x in xs:
        s.add(x, fn(x))
    return s


def grid_sweep(
    fn: Callable[..., float], axes: Mapping[str, Sequence]
) -> Dict[Tuple, float]:
    """Evaluate ``fn(**point)`` over the cartesian product of ``axes``.

    Returns ``{tuple(point values in axis order): result}``; axis order
    follows the mapping's iteration order.
    """
    names = list(axes)
    out: Dict[Tuple, float] = {}
    for values in itertools.product(*(axes[n] for n in names)):
        out[values] = fn(**dict(zip(names, values)))
    return out
