"""The Fig. 3 coding comparison: six runnable offload implementations.

Each ``matmul_*`` function implements the same job — offload a tiled
double-precision matrix multiply to one coprocessor and get the result
back — through one programming model's API. The bodies are written the
way a user of that model would write them, annotated with the paper's
application phases::

    # @phase: Data transfers
    ...model calls...
    # @endphase

:func:`analyze` parses a function's source and counts, per phase, the
*additional* lines the offload required (exactly the lines inside phase
blocks), plus the unique and total model-API calls — the three metric
groups of Fig. 3. The functions are also runnable on the sim backend, so
the table's GFl/s row is *measured*, not asserted.

Model-specific performance notes baked into the implementations:

* OpenMP target regions execute compiler-generated kernels (the
  ``dgemm_target`` efficiency curve), not card-side MKL — the paper's
  460 (untiled) / 180 (tiled) GFl/s rows;
* OpenCL's device BLAS is the untuned clBLAS (35 GFl/s);
* OpenMP 4.0 has no asynchronous transfers, so the untiled variant is
  the best it can do.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.actions import OperandMode, XferDirection
from repro.core.runtime import HStreams
from repro.linalg.host_blas import cost_dgemm
from repro.models.cuda_streams import (
    MEMCPY_DEVICE_TO_HOST,
    MEMCPY_HOST_TO_DEVICE,
    CudaRuntime,
)
from repro.models.openmp import OpenMPRuntime
from repro.models.opencl_like import OpenCLRuntime
from repro.ompss import OmpSsRuntime
from repro.sim import kernels as K
from repro.sim.platforms import make_platform

__all__ = [
    "SizedData",
    "PHASES",
    "CodingMetrics",
    "analyze",
    "IMPLEMENTATIONS",
    "PAPER_FIG3",
    "matmul_hstreams",
    "matmul_cuda",
    "matmul_omp40",
    "matmul_omp45",
    "matmul_ompss",
    "matmul_opencl",
]

PHASES = [
    "Initialization",
    "Data alloc",
    "Data transfers",
    "Computation",
    "Synchronization",
    "Data transfers back",
    "Data dealloc",
    "Finalization",
]

#: Fig. 3's published numbers: (total extra lines, unique APIs, total API
#: calls, GFl/s at n=10000). OpenMP 4.5 and CUDA had no measured GFl/s.
PAPER_FIG3: Dict[str, Tuple] = {
    "hStreams": (20, 8, 16, 916.0),
    "CUDA": (40, 18, 31, None),
    "OMP 4.0": (1, 1, 1, 460.0),
    "OMP 4.5": (17, 5, 14, None),
    "OmpSs": (4, 5, 9, 762.0),
    "OpenCL": (33, 16, 28, 35.0),
}

class SizedData:
    """A size-only stand-in for a host matrix (sim backend runs)."""

    def __init__(self, nbytes: int):
        self.nbytes = nbytes


_API_PREFIX = {
    "hStreams": r"\bhs\.(\w+)",
    "CUDA": r"\bcuda\.(\w+)",
    "OMP 4.0": r"\bomp\.(\w+)",
    "OMP 4.5": r"\bomp\.(\w+)",
    "OmpSs": r"\boss\.(\w+)",
    "OpenCL": r"\bcl\.(\w+)",
}

#: Provisioning calls excluded from the API counts: registering the
#: kernel body stands in for code that exists in every variant (the
#: computation itself), not for offload plumbing.
_EXCLUDED_APIS = {"register_kernel", "hl_register"}


# -- the six implementations ------------------------------------------------------


def matmul_hstreams(n: int = 10000, tile: int = 2500) -> float:
    """Tiled matmul through the hStreams app-level API (one card)."""
    T = -(-n // tile)
    nb = 8 * tile * tile
    # @phase: Initialization
    hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
    streams = hs.app_init(streams_per_domain=4)
    # @endphase
    # @support: events — one dict of per-tile transfer events (the paper
    # counts one [M][N][L] event matrix for hStreams)
    hs.register_kernel("dgemm", cost_fn=cost_dgemm)
    # @phase: Data alloc
    A = [[hs.buffer_create(nbytes=nb) for _ in range(T)] for _ in range(T)]
    B = [[hs.buffer_create(nbytes=nb) for _ in range(T)] for _ in range(T)]
    C = [[hs.buffer_create(nbytes=nb) for _ in range(T)] for _ in range(T)]
    # @endphase
    t0 = hs.elapsed()
    events = {}
    for i in range(T):
        for j in range(T):
            s = streams[(i * T + j) % len(streams)]
            for k in range(T):
                # @phase: Data transfers
                if (i, k) not in events:
                    events[(i, k)] = hs.enqueue_xfer(s, A[i][k])
                if ("b", k, j) not in events:
                    events[("b", k, j)] = hs.enqueue_xfer(s, B[k][j])
                hs.event_stream_wait(s, [events[(i, k)], events[("b", k, j)]])
                # @endphase
                # @phase: Computation
                hs.enqueue_compute(
                    s, "dgemm",
                    args=(C[i][j].tensor((tile, tile)),
                          A[i][k].tensor((tile, tile), mode=OperandMode.IN),
                          B[k][j].tensor((tile, tile), mode=OperandMode.IN)),
                )
                # @endphase
            # @phase: Data transfers back
            hs.enqueue_xfer(s, C[i][j], XferDirection.SINK_TO_SRC)
            # @endphase
    # @phase: Synchronization
    hs.thread_synchronize()
    # @endphase
    elapsed = hs.elapsed() - t0
    # @phase: Data dealloc
    for grid in (A, B, C):
        for row in grid:
            for buf in row:
                hs.buffer_destroy(buf)
    # @endphase
    # @phase: Finalization
    hs.fini()
    # @endphase
    return elapsed


def matmul_cuda(n: int = 10000, tile: int = 2500) -> float:
    """Tiled matmul through the CUDA-Streams model (one device)."""
    T = -(-n // tile)
    nb = 8 * tile * tile
    host = np.empty(0)
    # @phase: Initialization
    cuda = CudaRuntime(platform=make_platform("HSW", 1), backend="sim", trace=False)
    cuda.set_device(0)
    copy_stream = cuda.stream_create()
    comp_streams = [cuda.stream_create() for _ in range(4)]
    events = {}
    # @endphase
    # @support: streams — the [M][N] stream matrix CUDA requires
    # @support: events — the [M][N][L] event matrix
    # @support: dA — per-device address matrix for A
    # @support: dB — per-device address matrix for B
    # @support: dC — per-device address matrix for C
    cuda.register_kernel("dgemm", cost_fn=cost_dgemm)
    # @phase: Data alloc
    dA = [[cuda.malloc(nb) for _ in range(T)] for _ in range(T)]
    dB = [[cuda.malloc(nb) for _ in range(T)] for _ in range(T)]
    dC = [[cuda.malloc(nb) for _ in range(T)] for _ in range(T)]
    # @endphase
    t0 = cuda.elapsed()
    for i in range(T):
        for j in range(T):
            s = comp_streams[(i * T + j) % len(comp_streams)]
            for k in range(T):
                # @phase: Data transfers
                if (i, k) not in events:
                    cuda.memcpy_async(dA[i][k], host, nb, MEMCPY_HOST_TO_DEVICE, copy_stream)
                    events[(i, k)] = cuda.event_create()
                    cuda.event_record(events[(i, k)], copy_stream)
                if ("b", k, j) not in events:
                    cuda.memcpy_async(dB[k][j], host, nb, MEMCPY_HOST_TO_DEVICE, copy_stream)
                    events[("b", k, j)] = cuda.event_create()
                    cuda.event_record(events[("b", k, j)], copy_stream)
                cuda.stream_wait_event(s, events[(i, k)])
                cuda.stream_wait_event(s, events[("b", k, j)])
                # @endphase
                # @phase: Computation
                cuda.launch(s, "dgemm", args=(dC[i][j], dA[i][k], dB[k][j]),
                            cost=K.dgemm(tile, tile, tile))
                # @endphase
            # @phase: Data transfers back
            cuda.memcpy_async(host, dC[i][j], nb, MEMCPY_DEVICE_TO_HOST, s)
            # @endphase
    # @phase: Synchronization
    cuda.device_synchronize()
    # @endphase
    elapsed = cuda.elapsed() - t0
    # @phase: Data dealloc
    for grid in (dA, dB, dC):
        for row in grid:
            for ptr in row:
                cuda.free(ptr)
    # @endphase
    # @phase: Finalization
    for ev in events.values():
        cuda.event_destroy(ev)
    for s in comp_streams:
        cuda.stream_destroy(s)
    cuda.stream_destroy(copy_stream)
    cuda.fini()
    # @endphase
    return elapsed


def matmul_omp40(n: int = 10000, tile: int = 2500) -> float:
    """OpenMP 4.0: one synchronous target region does everything.

    One construct handles allocation, transfer, invocation, and
    deallocation — the paper's "1 extra line" — but there is no
    asynchrony and no sub-device concurrency, and the region runs
    compiler-generated (non-MKL) kernels.
    """
    omp = OpenMPRuntime(platform=make_platform("HSW", 1), backend="sim", spec="4.0",
                        trace=False)
    omp.register_kernel("mm", cost_fn=lambda *a: None)
    a = SizedData(8 * n * n)
    b = SizedData(8 * n * n)
    c = SizedData(8 * n * n)
    t0 = omp.elapsed()
    # @phase: Computation
    omp.target(0, "mm", args=(a, b, c), cost=K.dgemm(n, n, n, kernel="dgemm_target"))
    # @endphase
    # The map(to/from) traffic of the combined construct:
    omp.target_enter_data(0, [a, b])
    omp.target_exit_data(0, [c])
    elapsed = omp.elapsed() - t0
    omp.fini()
    return elapsed


def matmul_omp45(n: int = 10000, tile: int = 2500) -> float:
    """OpenMP 4.5: tiled, asynchronous via nowait/depend — but still one
    queue per device and compiler-generated kernels."""
    T = -(-n // tile)
    omp = OpenMPRuntime(platform=make_platform("HSW", 1), backend="sim", spec="4.5",
                        trace=False)
    omp.register_kernel("mm_tile", cost_fn=lambda *a: None)
    A = [[SizedData(8 * tile * tile) for _ in range(T)] for _ in range(T)]
    B = [[SizedData(8 * tile * tile) for _ in range(T)] for _ in range(T)]
    C = [[SizedData(8 * tile * tile) for _ in range(T)] for _ in range(T)]
    t0 = omp.elapsed()
    for i in range(T):
        for j in range(T):
            for k in range(T):
                # @phase: Data transfers
                omp.target_update_to(0, A[i][k], nowait=True)
                omp.target_update_to(0, B[k][j], nowait=True)
                # @endphase
                # @phase: Computation
                omp.target(0, "mm_tile", nowait=True,
                           depend_in=[A[i][k], B[k][j]], depend_out=[C[i][j]],
                           cost=K.dgemm(tile, tile, tile, kernel="dgemm_target"))
                # @endphase
            # @phase: Data transfers back
            omp.target_update_from(0, C[i][j], nowait=True)
            # @endphase
    # @phase: Synchronization
    omp.taskwait()
    # @endphase
    elapsed = omp.elapsed() - t0
    omp.fini()
    return elapsed


def matmul_ompss(n: int = 10000, tile: int = 2500) -> float:
    """OmpSs: just tasks with data clauses — the runtime does the rest."""
    T = -(-n // tile)
    nb = 8 * tile * tile
    oss = OmpSsRuntime(model="hstreams", platform=make_platform("HSW", 1),
                       backend="sim", trace=False)
    oss.register_kernel("gemm", cost_fn=lambda *a: None)
    A = [[oss.register(nb) for _ in range(T)] for _ in range(T)]
    B = [[oss.register(nb) for _ in range(T)] for _ in range(T)]
    C = [[oss.register(nb) for _ in range(T)] for _ in range(T)]
    t0 = oss.elapsed()
    for i in range(T):
        for j in range(T):
            for k in range(T):
                # @phase: Computation
                oss.task("gemm", ins=[A[i][k], B[k][j]], inouts=[C[i][j]],
                         cost=K.dgemm(tile, tile, tile))
                # @endphase
    # @phase: Synchronization
    oss.taskwait()
    # @endphase
    elapsed = oss.elapsed() - t0
    oss.fini()
    return elapsed


def matmul_opencl(n: int = 10000, tile: int = 2500) -> float:
    """OpenCL: full boilerplate, in-order queues, untuned clBLAS."""
    T = -(-n // tile)
    nb = 8 * tile * tile
    # @phase: Initialization
    cl = OpenCLRuntime(platform=make_platform("HSW", 1), backend="sim", trace=False)
    devices = cl.get_device_ids()
    ctx = cl.create_context(devices)
    queues = [cl.create_command_queue(ctx, devices[0]) for _ in range(4)]
    prog = cl.create_program_with_source(ctx, "__kernel void dgemm(...) { ... }")
    cl.build_program(prog)
    kern = cl.create_kernel(prog, "dgemm")
    # @endphase
    cl.register_kernel("dgemm", cost_fn=lambda *a: None)
    # @phase: Data alloc
    bA = [[cl.create_buffer(ctx, nb) for _ in range(T)] for _ in range(T)]
    bB = [[cl.create_buffer(ctx, nb) for _ in range(T)] for _ in range(T)]
    bC = [[cl.create_buffer(ctx, nb) for _ in range(T)] for _ in range(T)]
    # @endphase
    t0 = cl.elapsed()
    sent = set()
    for i in range(T):
        for j in range(T):
            q = queues[(i * T + j) % len(queues)]
            for k in range(T):
                # @phase: Data transfers
                if (i, k) not in sent:
                    cl.enqueue_write_buffer(q, bA[i][k])
                    sent.add((i, k))
                if ("b", k, j) not in sent:
                    cl.enqueue_write_buffer(q, bB[k][j])
                    sent.add(("b", k, j))
                # @endphase
                # @phase: Computation
                cl.set_kernel_arg(kern, 0, bC[i][j])
                cl.set_kernel_arg(kern, 1, bA[i][k])
                cl.set_kernel_arg(kern, 2, bB[k][j])
                cl.enqueue_nd_range_kernel(q, kern, cost=K.dgemm(tile, tile, tile))
                # @endphase
            # @phase: Data transfers back
            cl.enqueue_read_buffer(q, bC[i][j])
            # @endphase
    # @phase: Synchronization
    for q in queues:
        cl.finish(q)
    # @endphase
    elapsed = cl.elapsed() - t0
    # @phase: Data dealloc
    for grid in (bA, bB, bC):
        for row in grid:
            for buf in row:
                buf.release()
    # @endphase
    # @phase: Finalization
    kern.release()
    prog.release()
    for q in queues:
        q.release()
    ctx.release()
    cl.fini()
    # @endphase
    return elapsed


IMPLEMENTATIONS: Dict[str, Callable] = {
    "hStreams": matmul_hstreams,
    "CUDA": matmul_cuda,
    "OMP 4.0": matmul_omp40,
    "OMP 4.5": matmul_omp45,
    "OmpSs": matmul_ompss,
    "OpenCL": matmul_opencl,
}


# -- the analyzer --------------------------------------------------------------------


@dataclass
class CodingMetrics:
    """Fig. 3's metric groups for one implementation."""

    model: str
    lines_per_phase: Dict[str, int] = field(default_factory=dict)
    unique_apis: int = 0
    total_api_calls: int = 0
    #: Fig. 3's middle block: handle collections the programmer must
    #: carry around (event matrices, per-device address matrices, ...),
    #: declared with `# @support:` markers in the implementations.
    support_variables: int = 0

    @property
    def total_lines(self) -> int:
        """All additional offload lines across phases."""
        return sum(self.lines_per_phase.values())


def analyze(model: str) -> CodingMetrics:
    """Count offload lines and API calls in one implementation's source."""
    fn = IMPLEMENTATIONS[model]
    source = inspect.getsource(fn)
    metrics = CodingMetrics(model=model, lines_per_phase={p: 0 for p in PHASES})
    phase = None
    api_re = re.compile(_API_PREFIX[model])
    apis: List[str] = []
    for raw in source.splitlines():
        line = raw.strip()
        marker = re.match(r"# @phase:\s*(.+)$", line)
        if marker:
            phase = marker.group(1).strip()
            if phase not in metrics.lines_per_phase:
                raise ValueError(f"{model}: unknown phase {phase!r}")
            continue
        if line.startswith("# @endphase"):
            phase = None
            continue
        if line.startswith("# @support:"):
            metrics.support_variables += 1
            continue
        if phase is None or not line or line.startswith("#"):
            continue
        metrics.lines_per_phase[phase] += 1
        apis.extend(
            name for name in api_re.findall(raw) if name not in _EXCLUDED_APIS
        )
    metrics.unique_apis = len(set(apis))
    metrics.total_api_calls = len(apis)
    return metrics
