"""Hot-path performance microbenchmarks with a CI regression gate.

The paper's §III evaluation is an overhead story — hStreams adds only
20–30 µs per small transfer and <5 % on multi-MB payloads — and per-
enqueue cost is what caps achievable stream concurrency. This module
measures the runtime's enqueue→dispatch hot path and emits rows with the
fixed schema ``{bench, metric, value, unit, n, backend}`` (the
``BENCH_perf.json`` artifact), so a committed baseline can gate CI.

Benches:

* ``enqueue_scan`` — :meth:`StreamWindow.deps_for` latency and scan
  counters vs in-flight window depth (10/100/1k/5k), for the conflict-
  indexed :class:`~repro.core.dependences.RelaxedPolicy` **and** the
  pre-index :class:`~repro.core.dependences.NaiveRelaxedPolicy`, on a
  per-action-buffer (``disjoint``) and a shared-buffer workload. The
  indexed-vs-naive pair is the before/after axis.
* ``enqueue_admission`` — full ``enqueue_compute`` latency through the
  scheduler at held window depth (thread backend, blocked kernels),
  plus allocated heap blocks per enqueue.
* ``dispatch_throughput`` — end-to-end actions/second for dependence-
  free no-op computes on all three backends (thread, sim, process).
  The process number prices one IPC round trip per action; it exists
  to make that cost visible next to the in-process backends, not to
  win.
* ``cpu_scaling`` — a deliberately GIL-bound pure-Python matmul kernel
  spread over two card domains, thread backend vs process backend at
  identical DAG shape. The thread backend serialises the Python
  bytecode on the GIL; the process backend runs one worker per domain.
  Gated (full runs on >=2 CPUs only): ``process_speedup_shortfall_pct`` is
  ``max(0, 100 - round(100*thread_wall/process_wall))``, committed
  baseline 0, so CI fails exactly when the process backend stops
  beating the thread backend on CPU-bound work across >=2 domains.
* ``transfer_overhead`` — virtual per-transfer cost vs payload size on
  the sim backend, mirroring §III.
* ``elision`` — redundant-transfer elision count (deterministic).
* ``replay_rtm_pair`` — capture-once/replay-many vs per-iteration
  re-enqueue on a pipelined RTM step sequence (two ranks, halo/bulk
  computes over field+velocity tensors, d2h/h2d halo exchange behind
  cross-stream waits, several steps in flight between host syncs).
  Gates that replay runs **zero** dependence-scan comparisons and that
  per-iteration admission cost stays at least 5x better than the
  re-enqueue path at the same DAG size.
* ``sanitizer_overhead`` — enqueue admission with the rtsan sanitizer
  off (before and after a sanitized runtime lived in the process) and
  on. Gates that a closed sanitizer leaves the sanitizer-off hot path
  within 2 % of the never-sanitized control.
* ``collectives`` — planned broadcast schedules on the contention-aware
  cluster fabric. Gates that pipelined multicast to >=16 simulated
  domains completes in at most **half** the serial N-xfer loop's
  virtual time (the schedules' win is deterministic virtual time, so
  the ratio is a stable counter), and that replaying a captured
  collective runs **zero** dependence-scan comparisons.

Gating: rows with unit ``"count"`` are deterministic counters (scan
candidates/comparisons, elisions, allocations) and are compared against
the baseline by :func:`check_rows`; wall-clock and virtual-time rows
(unit ``"s"``, ``"ops/s"``) are reported but never gate. Allocation
counters vary slightly across CPython versions, so they get at least a
2x allowance regardless of ``--tolerance``.

CLI::

    python -m repro.bench.perf [--quick] [--json PATH|-]
        [--check BASELINE.json] [--tolerance 0.25]

Exit status: 0 on success, 1 when ``--check`` finds a regression.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.actions import Action, ActionKind, Operand, OperandMode
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.dependences import (
    NaiveRelaxedPolicy,
    RelaxedPolicy,
    StreamWindow,
)

__all__ = [
    "PerfRow",
    "run_suite",
    "check_rows",
    "format_rows",
    "rows_to_json",
    "rows_from_json",
    "main",
]

#: Rows with this unit are deterministic counters and gate regressions.
GATED_UNIT = "count"

#: Default relative regression allowance for gated counters.
DEFAULT_TOLERANCE = 0.25

#: Metrics matching this substring are allocator-dependent: they gate
#: with at least a 2x allowance (CPython versions differ slightly).
_ALLOC_METRIC = "alloc"

_DEPTHS = (10, 100, 1000, 5000)
_QUICK_DEPTHS = (10, 100)


@dataclass(frozen=True)
class PerfRow:
    """One measurement in the ``BENCH_perf.json`` schema."""

    bench: str
    metric: str
    value: float
    unit: str
    n: int
    backend: str


class _NeverDone:
    """Completion stand-in for held-open window entries."""

    __slots__ = ()

    def is_complete(self) -> bool:
        return False


def _window_action(operands: Sequence[Operand], barrier: bool = False) -> Action:
    action = Action(
        kind=ActionKind.SYNC if barrier else ActionKind.COMPUTE,
        stream=None,
        operands=tuple(operands),
        barrier=barrier,
    )
    action.completion = _NeverDone()
    return action


def _fill_window(
    window: StreamWindow, depth: int, workload: str
) -> Tuple[List[Buffer], Action]:
    """Populate ``window`` with ``depth`` incomplete writers; return the
    buffers and a probe action conflicting with a bounded subset."""
    space = ProxyAddressSpace()
    if workload == "disjoint":
        # One buffer per in-flight action — tiled pipelines where every
        # stage owns its slice. Conflict set of the probe: 1.
        bufs = [Buffer(space, nbytes=64) for _ in range(depth)]
        for buf in bufs:
            window.add(_window_action([Operand(buf, 0, 64, OperandMode.OUT)]))
        probe = _window_action([Operand(bufs[-1], 0, 64, OperandMode.IN)])
    elif workload == "shared":
        # Eight shared buffers, 64-byte slices cycling per action: every
        # bucket holds depth/8 entries, the probe range conflicts with
        # the writers of one slice.
        bufs = [Buffer(space, nbytes=4096) for _ in range(8)]
        for i in range(depth):
            buf = bufs[i % 8]
            offset = (i * 64) % 4096
            window.add(_window_action([Operand(buf, offset, 64, OperandMode.OUT)]))
        probe = _window_action([Operand(bufs[0], 0, 64, OperandMode.INOUT)])
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown workload {workload!r}")
    return bufs, probe


def bench_enqueue_scan(
    rows: List[PerfRow], depths: Sequence[int], probes: int
) -> None:
    """deps_for latency + deterministic scan counters vs window depth."""
    for workload in ("disjoint", "shared"):
        for depth in depths:
            for policy_name, policy in (
                ("indexed", RelaxedPolicy()),
                ("naive", NaiveRelaxedPolicy()),
            ):
                window = StreamWindow(policy=policy)
                _bufs, probe = _fill_window(window, depth, workload)
                candidates0 = window.scan_candidates
                comparisons0 = window.scan_comparisons
                samples: List[float] = []
                for _ in range(probes):
                    t0 = time.perf_counter()
                    window.deps_for(probe)
                    samples.append(time.perf_counter() - t0)
                bench = f"enqueue_scan:{workload}:{policy_name}:d{depth}"
                rows.append(
                    PerfRow(
                        bench,
                        "scan_candidates",
                        (window.scan_candidates - candidates0) / probes,
                        GATED_UNIT,
                        probes,
                        "window",
                    )
                )
                rows.append(
                    PerfRow(
                        bench,
                        "scan_comparisons",
                        (window.scan_comparisons - comparisons0) / probes,
                        GATED_UNIT,
                        probes,
                        "window",
                    )
                )
                rows.append(
                    PerfRow(
                        bench,
                        "deps_for_p50_s",
                        statistics.median(samples),
                        "s",
                        probes,
                        "window",
                    )
                )


def _blocked_runtime(depth: int):
    """A thread-backend runtime holding ``depth`` blocked disjoint
    computes in one stream's window. Returns (runtime, stream, gate)."""
    import threading

    from repro.core.runtime import HStreams

    gate = threading.Event()
    hs = HStreams(backend="thread", trace=False)
    hs.register_kernel("block", fn=lambda *_args: gate.wait())
    stream = hs.stream_create(domain=0, ncores=1)
    for _ in range(depth):
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(
            stream, "block", operands=(buf.range(0, 64, OperandMode.OUT),)
        )
    return hs, stream, gate


def bench_enqueue_admission(
    rows: List[PerfRow],
    depths: Sequence[int],
    measure: int,
    naive_depth: Optional[int],
) -> None:
    """Full enqueue latency through the scheduler at held window depth.

    The window is filled through the indexed policy (fast) either way;
    only the *measured* enqueues run under the policy being benchmarked,
    so the naive number is honest without paying O(depth^2) to set up.
    """
    variants: List[Tuple[str, int]] = [("indexed", d) for d in depths]
    if naive_depth is not None:
        variants.append(("naive", naive_depth))
    for policy_name, depth in variants:
        hs, stream, gate = _blocked_runtime(depth)
        try:
            if policy_name == "naive":
                stream.window.policy = NaiveRelaxedPolicy()
            operands = []
            for _ in range(measure):
                buf = hs.buffer_create(nbytes=64)
                operands.append(buf.range(0, 64, OperandMode.OUT))
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                samples: List[float] = []
                blocks0 = sys.getallocatedblocks()
                for op in operands:
                    t0 = time.perf_counter()
                    hs.enqueue_compute(stream, "block", operands=(op,))
                    samples.append(time.perf_counter() - t0)
                blocks = sys.getallocatedblocks() - blocks0
            finally:
                if gc_was_enabled:
                    gc.enable()
            bench = f"enqueue_admission:{policy_name}:d{depth}"
            rows.append(
                PerfRow(
                    bench,
                    "enqueue_p50_s",
                    statistics.median(samples),
                    "s",
                    measure,
                    "thread",
                )
            )
            if policy_name == "indexed":
                rows.append(
                    PerfRow(
                        bench,
                        "allocated_blocks_per_enqueue",
                        blocks / measure,
                        GATED_UNIT,
                        measure,
                        "thread",
                    )
                )
        finally:
            gate.set()
            hs.fini()


def _noop_kernel(*_args) -> None:
    """Module-level no-op: picklable, so the process backend ships it to
    a worker instead of falling back host-side."""


def _py_matmul_kernel(out, n: int, reps: int) -> None:
    """Naive pure-Python matmul — deliberately GIL-bound CPU work.

    No numpy in the hot loop: BLAS releases the GIL, which would let the
    thread backend scale too and hide exactly the contention this bench
    exists to show. Module-level so it pickles across the process
    boundary; the scalar result lands in ``out`` (a shared-memory view
    under the process backend) so the work cannot be optimised away.
    """
    a = [[float((i * n + j) % 7) for j in range(n)] for i in range(n)]
    b = [[float((i + j) % 5) for j in range(n)] for i in range(n)]
    acc = 0.0
    for _ in range(int(reps)):
        for i in range(n):
            ai = a[i]
            for j in range(n):
                s = 0.0
                for k in range(n):
                    s += ai[k] * b[k][j]
                acc += s
    out[0] = acc


def bench_dispatch_throughput(rows: List[PerfRow], count: int) -> None:
    """End-to-end dependence-free dispatch rate on all three backends."""
    from repro.core.runtime import HStreams
    from repro.sim.kernels import KernelCost

    for backend in ("thread", "sim", "process"):
        hs = HStreams(backend=backend, trace=False)
        hs.register_kernel(
            "noop",
            fn=_noop_kernel,
            cost_fn=lambda *_args: KernelCost("noop", flops=1e3, size=1.0),
        )
        stream = hs.stream_create(domain=0 if backend == "thread" else 1)
        ops = []
        for _ in range(count):
            buf = hs.buffer_create(nbytes=64)
            ops.append(buf.range(0, 64, OperandMode.OUT))
        t0 = time.perf_counter()
        for op in ops:
            hs.enqueue_compute(stream, "noop", operands=(op,))
        hs.thread_synchronize()
        elapsed = time.perf_counter() - t0
        hs.fini()
        rows.append(
            PerfRow(
                "dispatch_throughput",
                "actions_per_s",
                count / elapsed if elapsed > 0 else float("inf"),
                "ops/s",
                count,
                backend,
            )
        )


def bench_cpu_scaling(
    rows: List[PerfRow], reps: int, actions: int, gate: bool
) -> None:
    """GIL-bound matmul over two card domains: threads vs processes.

    Identical DAG on both backends — one stream per card domain, the
    same pure-Python matmul kernel (:func:`_py_matmul_kernel`), the
    same action count. The thread backend's two slot threads contend
    for the GIL, so wall time is the serial sum; the process backend
    runs one worker per domain and overlaps them. A warm-up action per
    domain is run before timing so worker spawn, kernel shipping and
    segment attachment are excluded — the row measures steady-state
    scaling, which is what the backend exists to buy.

    The gated row encodes the acceptance bar the way this suite always
    does (budget-style, committed baseline 0):
    ``process_speedup_shortfall_pct`` is how far the process backend
    falls short of merely *matching* the thread backend. Any genuine
    parallel speedup leaves it at 0 with a wide margin; with the gate's
    +1 absolute slack, CI fails exactly when CPU-bound work stops being
    faster on processes than on threads. Quick/smoke runs emit it as
    informational — at small reps the kernel no longer dominates the
    IPC round trip and the ratio is load noise — and so does any
    machine with a single CPU, where the speedup physically cannot
    exist (two processes time-slice one core just like two threads do).
    The committed baseline row is therefore the bar itself (0), written
    as such, not a lucky measurement from whatever box generated the
    artifact.
    """
    import os

    from repro.core.runtime import HStreams
    from repro.sim.platforms import make_platform

    gate = gate and (os.cpu_count() or 1) >= 2

    domains = (1, 2)
    walls: Dict[str, float] = {}
    for backend in ("thread", "process"):
        hs = HStreams(
            platform=make_platform("HSW", len(domains)),
            backend=backend,
            trace=False,
        )
        hs.register_kernel("pymatmul", fn=_py_matmul_kernel)
        streams = [hs.stream_create(domain=d, ncores=1) for d in domains]
        bufs = []
        for stream in streams:
            buf = hs.buffer_create(nbytes=64)
            hs.enqueue_xfer(stream, buf.all_out())
            bufs.append(buf)
        for stream, buf in zip(streams, bufs):
            hs.enqueue_compute(
                stream, "pymatmul", args=(buf.tensor((8,)), 8, 1)
            )
        hs.thread_synchronize()
        t0 = time.perf_counter()
        for _ in range(actions):
            for stream, buf in zip(streams, bufs):
                hs.enqueue_compute(
                    stream, "pymatmul", args=(buf.tensor((8,)), 24, reps)
                )
        hs.thread_synchronize()
        walls[backend] = time.perf_counter() - t0
        hs.fini()

    pct = round(100.0 * walls["thread"] / walls["process"])
    bench = f"cpu_scaling:pymatmul:{len(domains)}dom"
    n = actions * len(domains)
    rows.append(PerfRow(bench, "thread_wall_s", walls["thread"], "s", n, "thread"))
    rows.append(
        PerfRow(bench, "process_wall_s", walls["process"], "s", n, "process")
    )
    rows.append(
        PerfRow(bench, "process_speedup_pct_of_thread", pct, "info", n, "process")
    )
    rows.append(
        PerfRow(
            bench,
            "process_speedup_shortfall_pct",
            max(0, 100 - pct),
            GATED_UNIT if gate else "info",
            n,
            "process",
        )
    )


def bench_transfer_overhead(
    rows: List[PerfRow], payloads: Sequence[int], reps: int
) -> None:
    """Virtual per-transfer cost vs payload size (sim, §III mirror)."""
    from repro.core.runtime import HStreams

    for payload in payloads:
        hs = HStreams(backend="sim", trace=False, transfer_elision=False)
        stream = hs.stream_create(domain=1)
        buf = hs.buffer_create(nbytes=payload)
        t0 = hs.elapsed()
        for _ in range(reps):
            hs.enqueue_xfer(stream, buf.all_out())
            hs.stream_synchronize(stream)
        per_xfer = (hs.elapsed() - t0) / reps
        hs.fini()
        rows.append(
            PerfRow(
                f"transfer_overhead:{payload}B",
                "virtual_xfer_s",
                per_xfer,
                "s",
                reps,
                "sim",
            )
        )


def bench_elision(rows: List[PerfRow], reps: int) -> None:
    """Redundant h2d transfers elided by the memory manager."""
    from repro.core.runtime import HStreams

    hs = HStreams(backend="sim", trace=False)
    stream = hs.stream_create(domain=1)
    buf = hs.buffer_create(nbytes=1 << 16)
    for _ in range(reps + 1):
        hs.enqueue_xfer(stream, buf.all_out())
    hs.thread_synchronize()
    elided = hs.metrics()["memory"]["elided_transfers"]
    hs.fini()
    # Elisions are savings: gate them as a *floor* by storing the count
    # of transfers that were NOT elided (lower stays better throughout).
    rows.append(
        PerfRow("elision", "elided_transfers", elided, "info", reps + 1, "sim")
    )
    rows.append(
        PerfRow(
            "elision",
            "unelided_transfers",
            (reps + 1) - elided,
            GATED_UNIT,
            reps + 1,
            "sim",
        )
    )


def bench_replay(rows: List[PerfRow], iters: int) -> None:
    """Replay-vs-re-enqueue admission cost on a pipelined RTM sequence.

    Mirrors the steady-state RTM DAG — two ranks, two halo slabs plus a
    bulk interior per step over field and velocity-model tensors, the
    edge halo exchanged d2h/h2d behind cross-stream waits, ping-pong
    parity, and ``PAIRS`` step pairs in flight between host syncs, as
    the async scheme pipelines them. Virtual kernel costs are large
    enough that nothing retires while an iteration is being admitted,
    so timing the enqueue loop or the ``replay()`` call measures pure
    admission cost at the same DAG size. Re-enqueue pays the full
    admission pipeline per action — operand construction, cost-model
    calls, dependence scans against the deepening window — while replay
    admits the captured template through the batched final stage only.

    Gates: replay must run zero dependence-scan comparisons
    (``replay_scan_comparisons``), the re-enqueue scan count pins the
    DAG's conflict structure, and ``replay_admission_pct_over_5x_budget``
    holds the >=5x acceptance bar (see the row comment below).
    """
    from repro.core.actions import XferDirection
    from repro.core.runtime import HStreams
    from repro.sim.kernels import KernelCost

    def stencil_cost(cur, vel, nxt):
        # Shape-derived cost arithmetic, as the RTM stencil cost model
        # does — re-enqueue pays this every iteration, a template pays
        # it once at capture. Large virtual flops keep every in-flight
        # action incomplete while the timed loops run: nothing retires
        # mid-admission, so the wall numbers are pure admission cost on
        # both paths.
        points = nxt.nbytes // 8
        return KernelCost(
            "stencil",
            flops=61.0e7 * points,
            size=float(cur.nbytes + vel.nbytes + nxt.nbytes),
        )

    hs = HStreams(backend="sim", trace=False)
    for name in ("halo", "bulk"):
        hs.register_kernel(name, fn=lambda *_args: None, cost_fn=stencil_cost)
    ranks = [hs.stream_create(domain=1, ncores=2) for _ in range(2)]
    fields = [[hs.buffer_create(nbytes=4096) for _ in range(2)] for _ in ranks]
    vels = [hs.buffer_create(nbytes=4096) for _ in ranks]
    # Slab layout per 4096-byte field: ghost | halo | interior | halo | ghost.
    GHOST_LO, HALO_LO, HALO_HI, GHOST_HI = 0, 64, 3968, 4032
    # Steps in flight between host syncs. Async RTM pipelines steps
    # back-to-back, so re-enqueue admits each one against the window
    # the previous steps left in flight — that deepening scan is the
    # per-iteration cost replay eliminates.
    PAIRS = 4

    def emit_steps() -> None:
        # Ping-pong step pairs, as the RTM propagator emits them under
        # the async dependence-based exchange scheme: halo slabs first,
        # the edge halo exported d2h, the neighbour's ghost filled h2d
        # behind a cross-stream wait, then the interior.
        for step in range(2 * PAIRS):
            p, q = step % 2, (step + 1) % 2
            edge_out = []
            for r, stream in enumerate(ranks):
                cur, nxt, vel = fields[r][p], fields[r][q], vels[r]
                hs.enqueue_compute(
                    stream,
                    "halo",
                    args=(
                        cur.tensor((24,), offset=GHOST_LO, mode=OperandMode.IN),
                        vel.tensor((8,), offset=HALO_LO, mode=OperandMode.IN),
                        nxt.tensor((8,), offset=HALO_LO, mode=OperandMode.OUT),
                    ),
                )
                hs.enqueue_compute(
                    stream,
                    "halo",
                    args=(
                        cur.tensor((24,), offset=3904, mode=OperandMode.IN),
                        vel.tensor((8,), offset=HALO_HI, mode=OperandMode.IN),
                        nxt.tensor((8,), offset=HALO_HI, mode=OperandMode.OUT),
                    ),
                )
                # Export the halo facing the neighbour (rank 0 sends its
                # high edge, rank 1 its low edge).
                send = HALO_HI if r == 0 else HALO_LO
                edge_out.append(
                    hs.enqueue_xfer(
                        stream,
                        nxt.range(send, 64, OperandMode.IN),
                        direction=XferDirection.SINK_TO_SRC,
                    )
                )
            for r, stream in enumerate(ranks):
                cur, nxt, vel = fields[r][p], fields[r][q], vels[r]
                hs.event_stream_wait(stream, [edge_out[1 - r]])
                ghost = GHOST_HI if r == 0 else GHOST_LO
                hs.enqueue_xfer(stream, nxt.range(ghost, 64, OperandMode.OUT))
                hs.enqueue_compute(
                    stream,
                    "bulk",
                    args=(
                        cur.tensor((512,), mode=OperandMode.IN),
                        vel.tensor((480,), offset=128, mode=OperandMode.IN),
                        nxt.tensor((480,), offset=128, mode=OperandMode.OUT),
                    ),
                )

    def scan_comparisons() -> int:
        return sum(
            s["dep_scan_comparisons"] for s in hs.metrics()["streams"].values()
        )

    with hs.capture_graph() as template:
        emit_steps()
    hs.thread_synchronize()

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        enq_samples: List[float] = []
        scans0 = scan_comparisons()
        for _ in range(iters):
            t0 = time.perf_counter()
            emit_steps()
            enq_samples.append(time.perf_counter() - t0)
            hs.thread_synchronize()
        enq_scans = scan_comparisons() - scans0

        rep_samples: List[float] = []
        scans0 = scan_comparisons()
        for _ in range(iters):
            t0 = time.perf_counter()
            hs.replay(template)
            rep_samples.append(time.perf_counter() - t0)
            hs.thread_synchronize()
        rep_scans = scan_comparisons() - scans0
    finally:
        if gc_was_enabled:
            gc.enable()
    hs.fini()

    enq_p50 = statistics.median(enq_samples)
    rep_p50 = statistics.median(rep_samples)
    # Ratio from the per-iteration floors: min-of-N measures admission
    # cost without scheduler/allocator noise, which a gated counter
    # cannot tolerate on shared CI runners.
    pct = round(100.0 * min(rep_samples) / min(enq_samples))
    bench = "replay_rtm_pair"
    rows.append(
        PerfRow(
            bench,
            "reenqueue_scan_comparisons_per_iter",
            enq_scans / iters,
            GATED_UNIT,
            iters,
            "sim",
        )
    )
    rows.append(
        PerfRow(bench, "replay_scan_comparisons", rep_scans, GATED_UNIT, iters, "sim")
    )
    rows.append(
        PerfRow(
            bench,
            "replay_admission_pct_of_reenqueue",
            pct,
            "info",
            iters,
            "sim",
        )
    )
    # The >=5x acceptance bar, encoded as excess over a 20 % budget so
    # the committed baseline *is* the bar (0) rather than today's lucky
    # measurement: with the gate's +1 absolute slack the row fails CI
    # exactly when replay admission costs more than 21 % of re-enqueue.
    rows.append(
        PerfRow(
            bench,
            "replay_admission_pct_over_5x_budget",
            max(0, pct - 20),
            GATED_UNIT,
            iters,
            "sim",
        )
    )
    rows.append(PerfRow(bench, "reenqueue_iter_p50_s", enq_p50, "s", iters, "sim"))
    rows.append(PerfRow(bench, "replay_iter_p50_s", rep_p50, "s", iters, "sim"))


def bench_sanitizer_overhead(rows: List[PerfRow], measure: int) -> None:
    """Sanitizer-off passthrough cost on the enqueue hot path.

    The rtsan sanitizer (:mod:`repro.core.sync`) promises that disabled
    mode is structurally free: the factories hand back plain
    ``threading`` primitives and nothing is instrumented. This bench
    measures the same admission loop three ways:

    * ``off_before`` — a default runtime, before any sanitizer has
      existed in the process (the control);
    * ``on`` — a ``sanitize=True`` runtime (informational; the
      sanitizer is a debugging tool and may cost what it costs);
    * ``off_after`` — a default runtime constructed after the sanitized
      one closed. Identical code path to the control unless the
      sanitizer leaked instrumentation or its blocking-call patches.

    The control stays *alive* across the sanitized runtime's lifetime
    and the two off runtimes are sampled in interleaved batches: a
    phase-ordered before/after comparison conflates sanitizer residue
    with in-process allocator aging (repeated off-only runtimes drift
    2-7 % per position with no sanitizer involved at all), while
    interleaving gives both runtimes the identical process state so
    only true residue separates them.

    Even interleaved, per-instance spread on the ~20 us admission floor
    is +/-7 % (thread placement, allocation addresses), so the gated
    row holds the off-after/off-before floor ratio to a +15 % budget —
    comfortably above measurement resolution, far below the cost of a
    real leak (instrumented classes or blocking-call patches left
    behind cost tens of percent). The structural <2 % claim itself is
    enforced exactly by the identity tests in tests/core/test_sync.py:
    disabled-mode factories return plain ``threading`` primitives.
    """
    import threading

    from repro.core.runtime import HStreams

    def prep(sanitize: bool):
        gate = threading.Event()
        hs = HStreams(backend="thread", trace=False, sanitize=sanitize)
        hs.register_kernel("block", fn=lambda *_args: gate.wait())
        stream = hs.stream_create(domain=0, ncores=1)
        operands = []
        for _ in range(measure):
            buf = hs.buffer_create(nbytes=64)
            operands.append(buf.range(0, 64, OperandMode.OUT))
        return hs, stream, operands, gate

    def sample(hs, stream, operands, samples: List[float]) -> None:
        for op in operands:
            t0 = time.perf_counter()
            hs.enqueue_compute(stream, "block", operands=(op,))
            samples.append(time.perf_counter() - t0)

    hs_a = stream_a = ops_a = gate_a = None
    hs_b = gate_b = None
    gc_was_enabled = gc.isenabled()
    try:
        # Control runtime: built before any sanitizer exists, measured
        # later, interleaved with the post-sanitizer runtime.
        hs_a, stream_a, ops_a, gate_a = prep(False)

        # The sanitized runtime's full lifecycle happens in between.
        hs_on, stream_on, ops_on, gate_on = prep(True)
        try:
            gc.disable()
            on_samples: List[float] = []
            sample(hs_on, stream_on, ops_on, on_samples)
        finally:
            if gc_was_enabled:
                gc.enable()
            gate_on.set()
            hs_on.fini()

        hs_b, stream_b, ops_b, gate_b = prep(False)

        gc.disable()
        try:
            a_samples: List[float] = []
            b_samples: List[float] = []
            chunk = max(1, measure // 5)
            for i in range(0, measure, chunk):
                sample(hs_a, stream_a, ops_a[i : i + chunk], a_samples)
                sample(hs_b, stream_b, ops_b[i : i + chunk], b_samples)
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        if gate_a is not None:
            gate_a.set()
        if gate_b is not None:
            gate_b.set()
        if hs_a is not None:
            hs_a.fini()
        if hs_b is not None:
            hs_b.fini()

    off_before_min, off_before_p50 = min(a_samples), statistics.median(a_samples)
    off_after_min, off_after_p50 = min(b_samples), statistics.median(b_samples)
    on_p50 = statistics.median(on_samples)

    pct = round(100.0 * off_after_min / off_before_min)
    bench = "sanitizer_overhead"
    rows.append(
        PerfRow(bench, "off_before_enqueue_p50_s", off_before_p50, "s", measure, "thread")
    )
    rows.append(PerfRow(bench, "on_enqueue_p50_s", on_p50, "s", measure, "thread"))
    rows.append(
        PerfRow(bench, "off_after_enqueue_p50_s", off_after_p50, "s", measure, "thread")
    )
    rows.append(
        PerfRow(bench, "off_after_pct_of_off_before", pct, "info", measure, "thread")
    )
    # Gate only at full sample counts: the ratio-of-minima is stable at
    # n=100 but quick/smoke runs (n=30) are load-noise; emit those as
    # informational so smoke gating stays deterministic.
    gated_unit = GATED_UNIT if measure >= 100 else "info"
    rows.append(
        PerfRow(
            bench,
            "sanitizer_off_admission_pct_over_budget",
            max(0, pct - 115),
            gated_unit,
            measure,
            "thread",
        )
    )


def bench_collectives(rows: List[PerfRow], nnodes: int, nbytes: int) -> None:
    """Planned-collective schedules on the contention-aware cluster fabric.

    One payload fans out from the host to ``nnodes`` simulated fabric
    domains, once as the serial host-rooted N-xfer loop and once as the
    pipelined peer-forwarding multicast chain. Buffer instances are
    pre-created so the virtual times measure pure fabric occupancy, not
    host-side allocation. Virtual time is deterministic, so the
    multicast/serial ratio gates as a counter:
    ``multicast_pct_over_half_serial_budget`` is the excess over the
    50 % acceptance bar — the committed baseline is the bar itself (0),
    and with the gate's +1 absolute slack the row fails CI exactly when
    multicast costs more than 51 % of serial.

    The second gated row captures one multicast broadcast in a
    ``capture_graph()`` scope and replays it:
    ``collective_replay_scan_comparisons`` must stay at zero because
    the planner resolves external dependences with one window scan per
    stream at *plan* time and admits chunks through
    ``enqueue_precomputed`` — replay re-admits the recorded template
    with no dependence scans at all.
    """
    from repro.core.runtime import HStreams
    from repro.sim.platforms import make_cluster_platform

    def broadcast_time(schedule: str) -> float:
        hs = HStreams(
            platform=make_cluster_platform(nnodes=nnodes),
            backend="sim",
            trace=False,
        )
        doms = list(range(1, nnodes + 1))
        buf = hs.buffer_create(nbytes=nbytes, domains=doms)
        hs.thread_synchronize()
        t0 = hs.elapsed()
        hs.broadcast(buf, doms, schedule=schedule)
        hs.thread_synchronize()
        elapsed = hs.elapsed() - t0
        hs.fini()
        return elapsed

    t_serial = broadcast_time("serial")
    t_multicast = broadcast_time("multicast")
    pct = round(100.0 * t_multicast / t_serial)
    bench = f"collectives:bcast:{nnodes}dom"
    rows.append(PerfRow(bench, "serial_virtual_s", t_serial, "s", nnodes, "sim"))
    rows.append(
        PerfRow(bench, "multicast_virtual_s", t_multicast, "s", nnodes, "sim")
    )
    rows.append(PerfRow(bench, "multicast_pct_of_serial", pct, "info", nnodes, "sim"))
    rows.append(
        PerfRow(
            bench,
            "multicast_pct_over_half_serial_budget",
            max(0, pct - 50),
            GATED_UNIT,
            nnodes,
            "sim",
        )
    )

    hs = HStreams(
        platform=make_cluster_platform(nnodes=nnodes), backend="sim", trace=False
    )
    doms = list(range(1, nnodes + 1))
    buf = hs.buffer_create(nbytes=nbytes, domains=doms)
    # Warm-up outside the capture scope: the collective's internal
    # streams must already exist, since stream creation is not a
    # replayable action.
    hs.broadcast(buf, doms, schedule="multicast")
    hs.thread_synchronize()

    def scan_comparisons() -> int:
        return sum(
            s["dep_scan_comparisons"] for s in hs.metrics()["streams"].values()
        )

    with hs.capture_graph() as template:
        hs.broadcast(buf, doms, schedule="multicast")
    hs.thread_synchronize()
    scans0 = scan_comparisons()
    hs.replay(template)
    hs.thread_synchronize()
    rep_scans = scan_comparisons() - scans0
    hs.fini()
    rows.append(
        PerfRow(
            bench,
            "collective_replay_scan_comparisons",
            rep_scans,
            GATED_UNIT,
            1,
            "sim",
        )
    )


def run_suite(
    quick: bool = False,
    depths: Optional[Sequence[int]] = None,
    probes: Optional[int] = None,
) -> List[PerfRow]:
    """Run every microbench; returns the result rows."""
    if depths is None:
        depths = _QUICK_DEPTHS if quick else _DEPTHS
    if probes is None:
        probes = 20 if quick else 50
    measure = 30 if quick else 100
    count = 200 if quick else 1000
    reps = 2 if quick else 3
    payloads = (4 << 10, 64 << 10) if quick else (4 << 10, 64 << 10, 1 << 20, 8 << 20)
    rows: List[PerfRow] = []
    bench_enqueue_scan(rows, depths, probes)
    bench_enqueue_admission(rows, depths, measure, naive_depth=max(depths))
    bench_dispatch_throughput(rows, count)
    bench_cpu_scaling(
        rows, reps=4 if quick else 12, actions=3 if quick else 6, gate=not quick
    )
    bench_transfer_overhead(rows, payloads, reps)
    bench_elision(rows, reps)
    bench_replay(rows, 10 if quick else 30)
    bench_sanitizer_overhead(rows, measure)
    bench_collectives(rows, nnodes=16, nbytes=4 << 20 if quick else 16 << 20)
    return rows


# -- reporting & gating -------------------------------------------------------


def rows_to_json(rows: Iterable[PerfRow]) -> str:
    return json.dumps([asdict(r) for r in rows], indent=2) + "\n"


def rows_from_json(text: str) -> List[PerfRow]:
    return [PerfRow(**entry) for entry in json.loads(text)]


def format_rows(rows: Iterable[PerfRow]) -> str:
    lines = [
        f"{'bench':44} {'metric':30} {'value':>14} {'unit':>6} {'n':>5} backend"
    ]
    for r in rows:
        value = f"{r.value:.6g}"
        lines.append(
            f"{r.bench:44} {r.metric:30} {value:>14} {r.unit:>6} {r.n:>5} {r.backend}"
        )
    return "\n".join(lines)


def check_rows(
    current: Iterable[PerfRow],
    baseline: Iterable[PerfRow],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare gated counters against a baseline; returns the failures.

    All gated counters are lower-is-better. A current value may exceed
    its baseline by ``tolerance`` (relative) plus one absolute count of
    slack; allocator-dependent metrics get at least 2x. Gated baseline
    rows missing from the current run fail too — a silently vanished
    counter is how a harness rots. A row the current run *demoted to
    informational* is skipped instead: the emitter downgrades a unit
    exactly when the measurement cannot be made at gating fidelity
    (quick/smoke sample counts, or hardware where the property cannot
    hold — e.g. multi-core scaling on a single CPU), and that call
    belongs to the emitter, not the baseline.
    """
    current_by_key: Dict[Tuple[str, str, str], PerfRow] = {
        (r.bench, r.metric, r.backend): r for r in current
    }
    problems: List[str] = []
    for base in baseline:
        if base.unit != GATED_UNIT:
            continue
        key = (base.bench, base.metric, base.backend)
        row = current_by_key.get(key)
        if row is None:
            problems.append(
                f"{base.bench}/{base.metric}: gated counter missing from current run"
            )
            continue
        if row.unit != GATED_UNIT:
            continue
        tol = tolerance
        if _ALLOC_METRIC in base.metric:
            tol = max(tolerance, 1.0)
        limit = base.value * (1.0 + tol) + 1.0
        if row.value > limit:
            problems.append(
                f"{base.bench}/{base.metric}: {row.value:.6g} exceeds baseline "
                f"{base.value:.6g} by more than {tol:.0%} (+1) "
                f"[limit {limit:.6g}]"
            )
    return problems


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Hot-path enqueue/dispatch microbenchmarks "
        "(BENCH_perf.json emitter + regression gate).",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small depths/counts (CI smoke)"
    )
    parser.add_argument(
        "--depths",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None,
        help="comma-separated window depths (default 10,100,1000,5000)",
    )
    parser.add_argument(
        "--probes", type=int, default=None, help="deps_for probes per depth"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write rows as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare gated counters against a baseline JSON file",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative allowance for gated counters (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    rows = run_suite(quick=args.quick, depths=args.depths, probes=args.probes)

    if args.json == "-":
        sys.stdout.write(rows_to_json(rows))
    else:
        print(format_rows(rows))
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(rows_to_json(rows))
            print(f"\nwrote {args.json}")

    if args.check:
        with open(args.check) as fh:
            baseline = rows_from_json(fh.read())
        problems = check_rows(rows, baseline, tolerance=args.tolerance)
        if problems:
            print(
                f"\nPERF GATE: {len(problems)} regression(s) vs {args.check}:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        gated = sum(1 for r in rows if r.unit == GATED_UNIT)
        print(f"\nperf gate ok: {gated} gated counter(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
