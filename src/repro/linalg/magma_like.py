"""A MAGMA-style hybrid Cholesky (paper §V "MAGMA").

MAGMA's MIC Cholesky keeps the latency-bound DPOTRF panel on the host and
does all of the efficient DTRSM/DSYRK/DGEMM work on the card(s), with a
lookahead of one panel. Compared with the hStreams hetero code, the host
contributes *only* panels, which is why hStreams outperforms MAGMA by
~10 % when host and MIC are used together (Fig. 7) — but MAGMA beats the
KNC-only hStreams configuration, whose card spends time in inefficient
kernels.

With several cards, tile-rows split across cards, MAGMA-style.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.actions import OperandMode
from repro.core.buffer import Buffer
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.cholesky import CholeskyResult
from repro.linalg.dataflow import FlowContext
from repro.linalg.host_blas import register_blas
from repro.linalg.tiling import TileGrid, split_tiles
from repro.sim import kernels as K

__all__ = ["magma_cholesky"]


def _trsm_gemm_cost(m: int, n: int) -> K.KernelCost:
    """MAGMA's TRSM runs GEMM-rich (inverted diagonal blocks applied by
    multiply), so it achieves DGEMM-curve rates: m*n^2 flops priced on
    the dgemm efficiency curve."""
    base = K.dgemm(m, n, n)
    return K.KernelCost("dgemm", base.flops / 2.0, base.size, base.bytes_moved)


def _syrk_gemm_cost(n: int, k: int) -> K.KernelCost:
    """MAGMA's SYRK likewise runs at GEMM-curve rates."""
    base = K.dgemm(n, n, k)
    return K.KernelCost("dgemm", base.flops / 2.0, base.size, base.bytes_moved)


def magma_cholesky(
    hs: HStreams,
    n: int,
    tile: Optional[int] = None,
    data: Optional[np.ndarray] = None,
    streams_per_card: int = 2,
) -> CholeskyResult:
    """MAGMA-style Cholesky: panels on the host, updates on the cards."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not hs.card_domains:
        raise ValueError("MAGMA-style Cholesky needs at least one card")
    tile = tile if tile is not None else max(n // 10, 1)
    grid = TileGrid(n, tile)
    T = grid.ntiles
    register_blas(hs)
    flow = FlowContext(hs)

    host_cores = hs.domain(0).device.total_cores
    host = hs.stream_create(domain=0, cpu_mask=range(host_cores), name="magma-host")
    card_streams: Dict[int, List[Stream]] = {}
    for dom in hs.card_domains:
        total = dom.device.total_cores
        nstr = min(streams_per_card, total)
        card_streams[dom.index] = [
            hs.stream_create(domain=dom.index, ncores=total // nstr)
            for _ in range(nstr)
        ]
    cards = [d.index for d in hs.card_domains]
    row_owner = [cards[i % len(cards)] for i in range(T)]

    a_tiles = None
    if data is not None:
        if data.shape != (n, n):
            raise ValueError("data must be n x n")
        a_tiles = split_tiles(np.asarray(data, dtype=np.float64), tile)
    bufs: List[List[Optional[Buffer]]] = [[None] * T for _ in range(T)]
    t0 = hs.elapsed()
    for i in range(T):
        for j in range(i + 1):
            if a_tiles is not None:
                bufs[i][j] = hs.wrap(a_tiles[i][j], name=f"M{i}_{j}")
            else:
                bufs[i][j] = hs.buffer_create(
                    nbytes=grid.tile_nbytes(i, j), name=f"M{i}_{j}"
                )

    def stream_for(i: int, j: int) -> Stream:
        pool = card_streams[row_owner[i]]
        return pool[(i + j) % len(pool)]

    for k in range(T):
        bk = grid.tile_rows(k)
        # Panel on the host (DPOTF2/DPOTRF shipped back, MAGMA-style).
        flow.compute(
            host,
            "dpotrf",
            args=(bufs[k][k].tensor((bk, bk), mode=OperandMode.INOUT),),
            writes=(bufs[k][k],),
            label=f"potrf{k}",
        )
        # Everything else on the cards: column solves first.
        for i in range(k + 1, T):
            bi = grid.tile_rows(i)
            s = stream_for(i, k)
            flow.send(s, bufs[k][k])
            flow.send(s, bufs[i][k])
            flow.compute(
                s,
                "dtrsm",
                args=(
                    bufs[i][k].tensor((bi, bk), mode=OperandMode.INOUT),
                    bufs[k][k].tensor((bk, bk), mode=OperandMode.IN),
                ),
                reads=(bufs[k][k],),
                writes=(bufs[i][k],),
                cost=_trsm_gemm_cost(bi, bk),
                label=f"trsm{i}.{k}",
            )
            # Factored column tiles return to the host (the result lives there).
            flow.retrieve(s, bufs[i][k])
        # Trailing updates on the owning card.
        for i in range(k + 1, T):
            bi = grid.tile_rows(i)
            for j in range(k + 1, i + 1):
                bj = grid.tile_rows(j)
                s = stream_for(i, j)
                flow.send(s, bufs[i][k])
                flow.send(s, bufs[i][j])
                if j == i:
                    flow.compute(
                        s,
                        "dsyrk",
                        args=(
                            bufs[i][i].tensor((bi, bi), mode=OperandMode.INOUT),
                            bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                        ),
                        reads=(bufs[i][k],),
                        writes=(bufs[i][i],),
                        cost=_syrk_gemm_cost(bi, bk),
                        label=f"syrk{i}.{k}",
                    )
                else:
                    flow.send(s, bufs[j][k])
                    flow.compute(
                        s,
                        "dgemm",
                        args=(
                            bufs[i][j].tensor((bi, bj), mode=OperandMode.INOUT),
                            bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                            bufs[j][k].tensor((bj, bk), mode=OperandMode.IN),
                            -1.0,
                            True,
                        ),
                        reads=(bufs[i][k], bufs[j][k]),
                        writes=(bufs[i][j],),
                        label=f"gemm{i}{j}.{k}",
                    )
        # Lookahead: the next diagonal tile returns for the next panel.
        if k + 1 < T:
            s = stream_for(k + 1, k + 1)
            flow.retrieve(s, bufs[k + 1][k + 1], label=f"home M{k + 1}")

    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    gflops = (n**3 / 3.0) / elapsed / 1e9 if elapsed > 0 else float("inf")
    return CholeskyResult(
        n=n, tile=tile, elapsed_s=elapsed, gflops=gflops, row_owner=row_owner, L=None
    )
