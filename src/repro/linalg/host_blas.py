"""Tile BLAS/LAPACK kernels: real numpy bodies + calibrated cost models.

Each kernel is registered under one name with both a callable (thread
backend; operand arguments arrive as typed numpy views in the sink
domain) and a cost function (sim backend; operand arguments arrive as
:class:`~repro.core.actions.Operand` values whose ``shape`` carries the
dimensions). The same application code therefore runs functionally or in
virtual time — this module stands in for MKL in the paper's stack.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import solve_triangular

from repro.core.runtime import HStreams
from repro.sim import kernels as K

__all__ = [
    "k_dgemm",
    "k_dsyrk",
    "k_dpotrf",
    "k_dtrsm",
    "k_dgetrf",
    "k_dlaswp_trsm",
    "register_blas",
]


def _shape(x) -> Tuple[int, ...]:
    """Dimensions of a kernel argument: numpy view or shaped Operand."""
    shape = getattr(x, "shape", None)
    if shape is None:
        raise ValueError(f"argument {x!r} carries no shape")
    return tuple(shape)


# -- kernel bodies (thread backend) -------------------------------------------


def k_dgemm(C: np.ndarray, A: np.ndarray, B: np.ndarray, alpha: float = 1.0,
            transb: bool = False) -> None:
    """C += alpha * A @ op(B), in place."""
    rhs = B.T if transb else B
    C += alpha * (A @ rhs)


def k_dsyrk(C: np.ndarray, A: np.ndarray, alpha: float = -1.0) -> None:
    """C += alpha * A @ A^T, in place (full update)."""
    C += alpha * (A @ A.T)


def k_dpotrf(A: np.ndarray) -> None:
    """A := lower Cholesky factor of A, in place."""
    A[:] = np.linalg.cholesky(A)


def k_dtrsm(B: np.ndarray, L: np.ndarray) -> None:
    """B := B @ L^{-T} for lower-triangular L, in place.

    This is the Cholesky column solve: A[i][k] = A[i][k] L[k][k]^{-T}.
    """
    B[:] = solve_triangular(L, B.T, lower=True).T


def k_dgetrf(A: np.ndarray) -> None:
    """A := combined L\\U factors (no pivoting), in place.

    Intended for tiles of diagonally dominant matrices, where pivoting is
    not required for stability; cross-tile pivoting is out of scope for
    the block-LU reference code, as in the paper's source [32].
    """
    n = A.shape[0]
    for k in range(n - 1):
        pivot = A[k, k]
        if pivot == 0.0:
            raise ZeroDivisionError("zero pivot in non-pivoting LU")
        A[k + 1 :, k] /= pivot
        A[k + 1 :, k + 1 :] -= np.outer(A[k + 1 :, k], A[k, k + 1 :])


def k_dlaswp_trsm(B: np.ndarray, LU: np.ndarray, side: str = "left") -> None:
    """Block-LU triangular solves against a factored diagonal tile.

    ``side="left"``: B := L^{-1} B (unit lower). ``side="right"``:
    B := B U^{-1} (upper).
    """
    if side == "left":
        B[:] = solve_triangular(LU, B, lower=True, unit_diagonal=True)
    elif side == "right":
        B[:] = solve_triangular(LU.T, B.T, lower=True).T
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")


# -- cost models (sim backend) ---------------------------------------------------


def cost_dgemm(C, A, B, alpha: float = 1.0, transb: bool = False) -> K.KernelCost:
    """Cost of C += alpha A op(B)."""
    m, n = _shape(C)
    k = _shape(A)[1]
    return K.dgemm(m, n, k)


def cost_dsyrk(C, A, alpha: float = -1.0) -> K.KernelCost:
    """Cost of the rank-k update."""
    n = _shape(C)[0]
    k = _shape(A)[1]
    return K.dsyrk(n, k)


def cost_dpotrf(A) -> K.KernelCost:
    """Cost of the tile Cholesky."""
    return K.dpotrf(_shape(A)[0])


def cost_dtrsm(B, L) -> K.KernelCost:
    """Cost of the column solve."""
    m, n = _shape(B)
    return K.dtrsm(m, n)


def cost_dgetrf(A) -> K.KernelCost:
    """Cost of the tile LU."""
    n = _shape(A)[0]
    return K.dgetrf(n, n)


def cost_dlaswp_trsm(B, LU, side: str = "left") -> K.KernelCost:
    """Cost of a block-LU triangular solve."""
    m, n = _shape(B)
    return K.dtrsm(m, n)


def register_blas(hs: HStreams) -> None:
    """Register the full tile-kernel set on a runtime (either backend)."""
    hs.register_kernel("dgemm", fn=k_dgemm, cost_fn=cost_dgemm)
    hs.register_kernel("dsyrk", fn=k_dsyrk, cost_fn=cost_dsyrk)
    hs.register_kernel("dpotrf", fn=k_dpotrf, cost_fn=cost_dpotrf)
    hs.register_kernel("dtrsm", fn=k_dtrsm, cost_fn=cost_dtrsm)
    hs.register_kernel("dgetrf", fn=k_dgetrf, cost_fn=cost_dgetrf)
    hs.register_kernel("dlaswp_trsm", fn=k_dlaswp_trsm, cost_fn=cost_dlaswp_trsm)
