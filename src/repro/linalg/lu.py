"""Hetero tiled block LU factorization (no cross-tile pivoting).

Follows the same distribution pattern as the Fig. 5 Cholesky: the panel
factorization (DGETRF of the diagonal tile) and the row/column triangular
solves run on the host; trailing DGEMM updates are distributed across the
host and cards by tile-row; the next panel column and row come home each
iteration. Intended for diagonally dominant matrices, where pivoting is
confined to tiles (the paper's reference source [32] treats LU alongside
matmul and Cholesky, noting DGETRF runs better on the host).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.actions import OperandMode
from repro.core.buffer import Buffer
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.dataflow import FlowContext
from repro.linalg.host_blas import register_blas
from repro.linalg.tiling import TileGrid, join_tiles, split_tiles

__all__ = ["LUResult", "hetero_lu"]


@dataclass
class LUResult:
    """Outcome of one hetero LU run."""

    n: int
    tile: int
    elapsed_s: float
    gflops: float  # 2 n^3 / 3 flops convention
    LU: Optional[np.ndarray] = None  # thread backend only


def hetero_lu(
    hs: HStreams,
    n: int,
    tile: Optional[int] = None,
    data: Optional[np.ndarray] = None,
    use_host: bool = True,
    streams_per_domain: int = 4,
    host_streams: int = 3,
) -> LUResult:
    """Factor A = L U over the host plus all cards."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    tile = tile if tile is not None else max(n // 10, 1)
    grid = TileGrid(n, tile)
    T = grid.ntiles
    register_blas(hs)
    flow = FlowContext(hs)

    host_cores = hs.domain(0).device.total_cores
    wide = hs.stream_create(domain=0, cpu_mask=range(host_cores), name="host-wide")
    h_streams = [
        hs.stream_create(
            domain=0,
            cpu_mask=range(
                i * (host_cores // host_streams), (i + 1) * (host_cores // host_streams)
            ),
            name=f"host{i}",
        )
        for i in range(host_streams)
    ]
    card_streams: Dict[int, List[Stream]] = {}
    for dom in hs.card_domains:
        total = dom.device.total_cores
        nstr = min(streams_per_domain, total)
        card_streams[dom.index] = [
            hs.stream_create(domain=dom.index, ncores=total // nstr)
            for _ in range(nstr)
        ]
    owners_pool = ([0] if use_host else []) + [d.index for d in hs.card_domains]
    if not owners_pool:
        owners_pool = [0]
    row_owner = [owners_pool[i % len(owners_pool)] for i in range(T)]

    def update_stream(domain: int, i: int, j: int) -> Stream:
        if domain == 0:
            return h_streams[(i + j) % len(h_streams)]
        pool = card_streams[domain]
        return pool[(i + j) % len(pool)]

    a_tiles = None
    if data is not None:
        if data.shape != (n, n):
            raise ValueError("data must be n x n")
        a_tiles = split_tiles(np.asarray(data, dtype=np.float64), tile)
    bufs: List[List[Buffer]] = [[None] * T for _ in range(T)]  # type: ignore[list-item]
    t0 = hs.elapsed()
    for i in range(T):
        for j in range(T):
            if a_tiles is not None:
                bufs[i][j] = hs.wrap(a_tiles[i][j], name=f"LU{i}_{j}")
            else:
                bufs[i][j] = hs.buffer_create(
                    nbytes=grid.tile_nbytes(i, j), name=f"LU{i}_{j}"
                )

    for k in range(T):
        bk = grid.tile_rows(k)
        flow.compute(
            wide,
            "dgetrf",
            args=(bufs[k][k].tensor((bk, bk), mode=OperandMode.INOUT),),
            reads=(),
            writes=(bufs[k][k],),
            label=f"getrf{k}",
        )
        # Column of L: A[i][k] := A[i][k] U^{-1}; row of U: A[k][j] := L^{-1} A[k][j].
        for i in range(k + 1, T):
            bi = grid.tile_rows(i)
            s = h_streams[i % len(h_streams)]
            flow.compute(
                s,
                "dlaswp_trsm",
                args=(
                    bufs[i][k].tensor((bi, bk), mode=OperandMode.INOUT),
                    bufs[k][k].tensor((bk, bk), mode=OperandMode.IN),
                    "right",
                ),
                reads=(bufs[k][k],),
                writes=(bufs[i][k],),
                label=f"trsmR{i}.{k}",
            )
            for _dom, pool in card_streams.items():
                flow.send(pool[i % len(pool)], bufs[i][k], label=f"bcast L{i}_{k}")
        for j in range(k + 1, T):
            bj = grid.tile_cols(j)
            s = h_streams[j % len(h_streams)]
            flow.compute(
                s,
                "dlaswp_trsm",
                args=(
                    bufs[k][j].tensor((bk, bj), mode=OperandMode.INOUT),
                    bufs[k][k].tensor((bk, bk), mode=OperandMode.IN),
                    "left",
                ),
                reads=(bufs[k][k],),
                writes=(bufs[k][j],),
                label=f"trsmL{k}.{j}",
            )
            for _dom, pool in card_streams.items():
                flow.send(pool[j % len(pool)], bufs[k][j], label=f"bcast U{k}_{j}")
        # Trailing updates A[i][j] -= A[i][k] A[k][j], by tile-row.
        for i in range(k + 1, T):
            dom = row_owner[i]
            bi = grid.tile_rows(i)
            for j in range(k + 1, T):
                bj = grid.tile_cols(j)
                s = update_stream(dom, i, j)
                flow.send(s, bufs[i][k])
                flow.send(s, bufs[k][j])
                flow.send(s, bufs[i][j])
                flow.compute(
                    s,
                    "dgemm",
                    args=(
                        bufs[i][j].tensor((bi, bj), mode=OperandMode.INOUT),
                        bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                        bufs[k][j].tensor((bk, bj), mode=OperandMode.IN),
                        -1.0,
                    ),
                    reads=(bufs[i][k], bufs[k][j]),
                    writes=(bufs[i][j],),
                    label=f"gemm{i}{j}.{k}",
                )
            # Next panel column and row come home.
            if k + 1 < T and row_owner[i] != 0:
                s = update_stream(row_owner[i], i, k + 1)
                flow.retrieve(s, bufs[i][k + 1], label=f"home LU{i}_{k + 1}")
        if k + 1 < T and row_owner[k + 1] != 0:
            for j in range(k + 2, T):
                s = update_stream(row_owner[k + 1], k + 1, j)
                flow.retrieve(s, bufs[k + 1][j], label=f"home LU{k + 1}_{j}")

    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    gflops = (2.0 * n**3 / 3.0) / elapsed / 1e9 if elapsed > 0 else float("inf")
    LU = join_tiles(a_tiles) if a_tiles is not None else None
    return LUResult(n=n, tile=tile, elapsed_s=elapsed, gflops=gflops, LU=LU)
