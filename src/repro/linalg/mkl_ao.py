"""An MKL Automatic-Offload-style Cholesky (paper §VI "MKL AO").

MKL AO intercepts individual large BLAS calls and transparently splits
each one between the host and the card(s). The crucial semantic captured
here: AO is **synchronous per BLAS call** — each call's host/card pieces
are joined before the next call starts, so there is no cross-call
pipelining of the kind the hand-written hStreams code achieves. Within a
call, the work division *is* rate-proportional (months of MKL-team
tuning), which is why AO lands between hStreams (better overlap) and
MAGMA (no host compute) in Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.actions import OperandMode
from repro.core.buffer import Buffer
from repro.core.events import HEvent
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.cholesky import CholeskyResult
from repro.linalg.dataflow import FlowContext
from repro.linalg.host_blas import register_blas
from repro.linalg.matmul import assign_columns
from repro.linalg.tiling import TileGrid, split_tiles

__all__ = ["mkl_ao_cholesky"]


def mkl_ao_cholesky(
    hs: HStreams,
    n: int,
    tile: Optional[int] = None,
    data: Optional[np.ndarray] = None,
    streams_per_card: int = 4,
    host_streams: int = 3,
) -> CholeskyResult:
    """Cholesky through AO-style per-call host/card splitting."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    tile = tile if tile is not None else max(n // 10, 1)
    grid = TileGrid(n, tile)
    T = grid.ntiles
    register_blas(hs)
    flow = FlowContext(hs)

    host_cores = hs.domain(0).device.total_cores
    wide = hs.stream_create(domain=0, cpu_mask=range(host_cores), name="ao-host")
    h_streams = [
        hs.stream_create(
            domain=0,
            cpu_mask=range(
                i * (host_cores // host_streams), (i + 1) * (host_cores // host_streams)
            ),
            name=f"ao-h{i}",
        )
        for i in range(host_streams)
    ]
    card_streams: Dict[int, List[Stream]] = {}
    for dom in hs.card_domains:
        total = dom.device.total_cores
        nstr = min(streams_per_card, total)
        card_streams[dom.index] = [
            hs.stream_create(domain=dom.index, ncores=total // nstr)
            for _ in range(nstr)
        ]
    domains = [0] + [d.index for d in hs.card_domains]
    weights = [hs.domain(d).device.gflops("dgemm", tile) for d in domains]

    a_tiles = None
    if data is not None:
        if data.shape != (n, n):
            raise ValueError("data must be n x n")
        a_tiles = split_tiles(np.asarray(data, dtype=np.float64), tile)
    bufs: List[List[Optional[Buffer]]] = [[None] * T for _ in range(T)]
    t0 = hs.elapsed()
    for i in range(T):
        for j in range(i + 1):
            if a_tiles is not None:
                bufs[i][j] = hs.wrap(a_tiles[i][j], name=f"AO{i}_{j}")
            else:
                bufs[i][j] = hs.buffer_create(
                    nbytes=grid.tile_nbytes(i, j), name=f"AO{i}_{j}"
                )

    def pick_stream(dom: int, salt: int) -> Stream:
        if dom == 0:
            return h_streams[salt % len(h_streams)]
        pool = card_streams[dom]
        return pool[salt % len(pool)]

    def join(evs: List[HEvent]) -> None:
        """AO's per-call synchronization point."""
        if evs:
            hs.event_wait(evs)

    for k in range(T):
        bk = grid.tile_rows(k)
        # DPOTRF call: host only (AO does not offload the panel).
        ev = flow.compute(
            wide,
            "dpotrf",
            args=(bufs[k][k].tensor((bk, bk), mode=OperandMode.INOUT),),
            writes=(bufs[k][k],),
            label=f"potrf{k}",
        )
        join([ev])
        # One "DTRSM call" covering column k: rows split host/cards.
        rows = list(range(k + 1, T))
        owners = assign_columns(len(rows), domains, weights) if rows else []
        evs: List[HEvent] = []
        for idx, i in enumerate(rows):
            dom = owners[idx]
            bi = grid.tile_rows(i)
            s = pick_stream(dom, i)
            flow.send(s, bufs[k][k])
            flow.send(s, bufs[i][k])
            evs.append(
                flow.compute(
                    s,
                    "dtrsm",
                    args=(
                        bufs[i][k].tensor((bi, bk), mode=OperandMode.INOUT),
                        bufs[k][k].tensor((bk, bk), mode=OperandMode.IN),
                    ),
                    reads=(bufs[k][k],),
                    writes=(bufs[i][k],),
                    label=f"trsm{i}.{k}",
                )
            )
            flow.retrieve(s, bufs[i][k])
        join(evs)
        # One "update call" covering the trailing matrix: split by tile.
        updates = [(i, j) for i in range(k + 1, T) for j in range(k + 1, i + 1)]
        owners = assign_columns(len(updates), domains, weights) if updates else []
        evs = []
        for idx, (i, j) in enumerate(updates):
            dom = owners[idx]
            bi, bj = grid.tile_rows(i), grid.tile_rows(j)
            s = pick_stream(dom, i + j)
            flow.send(s, bufs[i][k])
            flow.send(s, bufs[i][j])
            if j == i:
                evs.append(
                    flow.compute(
                        s,
                        "dsyrk",
                        args=(
                            bufs[i][i].tensor((bi, bi), mode=OperandMode.INOUT),
                            bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                        ),
                        reads=(bufs[i][k],),
                        writes=(bufs[i][i],),
                        label=f"syrk{i}.{k}",
                    )
                )
            else:
                flow.send(s, bufs[j][k])
                evs.append(
                    flow.compute(
                        s,
                        "dgemm",
                        args=(
                            bufs[i][j].tensor((bi, bj), mode=OperandMode.INOUT),
                            bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                            bufs[j][k].tensor((bj, bk), mode=OperandMode.IN),
                            -1.0,
                            True,
                        ),
                        reads=(bufs[i][k], bufs[j][k]),
                        writes=(bufs[i][j],),
                        label=f"gemm{i}{j}.{k}",
                    )
                )
            # Updated tiles needed on the host next iteration come home.
            if j == k + 1 or i == j:
                flow.retrieve(s, bufs[i][j])
        join(evs)

    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    gflops = (n**3 / 3.0) / elapsed / 1e9 if elapsed > 0 else float("inf")
    return CholeskyResult(
        n=n, tile=tile, elapsed_s=elapsed, gflops=gflops, row_owner=[], L=None
    )
