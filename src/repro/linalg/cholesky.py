"""Hetero tiled Cholesky factorization — the paper's Fig. 5 algorithm.

The input matrix is divided into square tiles (lower triangle). Per
iteration ``k`` of the tiled right-looking algorithm:

* **DPOTRF** of the diagonal tile runs on the host, in a machine-wide
  host-as-target stream;
* **DTRSM**s of column ``k`` run on the host (its streams), and their
  results are **broadcast to all cards**;
* **DSYRK/DGEMM** trailing updates are distributed by tile-row: each
  tile-row is assigned to the host or one of the cards round-robin, and
  each update round-robins across the owner's streams. No card-to-card
  transfers are needed — each card interacts only with the host;
* the updated tiles of **column ``k+1`` are sent home** from the cards,
  so the next iteration's panel work finds them on the host.

Transfers enqueued in host streams are aliased and optimized away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.actions import OperandMode
from repro.core.buffer import Buffer
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.dataflow import FlowContext
from repro.linalg.host_blas import register_blas
from repro.linalg.tiling import TileGrid, join_tiles, split_tiles

__all__ = ["CholeskyResult", "hetero_cholesky"]


@dataclass
class CholeskyResult:
    """Outcome of one hetero Cholesky run."""

    n: int
    tile: int
    elapsed_s: float
    gflops: float  # n^3/3 flops convention
    row_owner: List[int]
    L: Optional[np.ndarray] = None  # thread backend only


def hetero_cholesky(
    hs: HStreams,
    n: int,
    tile: Optional[int] = None,
    data: Optional[np.ndarray] = None,
    use_host: bool = True,
    streams_per_domain: int = 4,
    host_streams: int = 3,
) -> CholeskyResult:
    """Factor an SPD matrix over the host plus all cards.

    ``use_host=False`` reproduces the "1 KNC (offload)" configuration:
    panel operations stay on the host (as in the single-card reference
    code) but all trailing updates go to the cards.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    tile = tile if tile is not None else max(n // 10, 1)
    grid = TileGrid(n, tile)
    T = grid.ntiles
    register_blas(hs)
    flow = FlowContext(hs)

    # -- streams -----------------------------------------------------------------
    host_cores = hs.domain(0).device.total_cores
    wide = hs.stream_create(domain=0, cpu_mask=range(host_cores), name="host-wide")
    h_streams = [
        hs.stream_create(
            domain=0,
            cpu_mask=range(
                i * (host_cores // host_streams), (i + 1) * (host_cores // host_streams)
            ),
            name=f"host{i}",
        )
        for i in range(host_streams)
    ]
    card_streams: Dict[int, List[Stream]] = {}
    for dom in hs.card_domains:
        total = dom.device.total_cores
        nstr = min(streams_per_domain, total)
        width = total // nstr
        card_streams[dom.index] = [
            hs.stream_create(domain=dom.index, ncores=width) for _ in range(nstr)
        ]

    # -- tile-row ownership ----------------------------------------------------------
    owners_pool = ([0] if use_host else []) + [d.index for d in hs.card_domains]
    if not owners_pool:
        owners_pool = [0]
    row_owner = [owners_pool[i % len(owners_pool)] for i in range(T)]

    def update_stream(domain: int, i: int, j: int) -> Stream:
        if domain == 0:
            return h_streams[(i + j) % len(h_streams)]
        pool = card_streams[domain]
        return pool[(i + j) % len(pool)]

    # -- buffers -----------------------------------------------------------------------
    a_tiles = None
    if data is not None:
        if data.shape != (n, n):
            raise ValueError("data must be n x n")
        a_tiles = split_tiles(np.asarray(data, dtype=np.float64), tile)
    bufs: List[List[Optional[Buffer]]] = [[None] * T for _ in range(T)]
    t0 = hs.elapsed()
    for i in range(T):
        for j in range(i + 1):
            if a_tiles is not None:
                bufs[i][j] = hs.wrap(a_tiles[i][j], name=f"L{i}_{j}")
            else:
                bufs[i][j] = hs.buffer_create(
                    nbytes=grid.tile_nbytes(i, j), name=f"L{i}_{j}"
                )

    # -- the factorization schedule -------------------------------------------------------
    for k in range(T):
        bk = grid.tile_rows(k)
        # 1. Panel factorization on the machine-wide host stream.
        flow.compute(
            wide,
            "dpotrf",
            args=(bufs[k][k].tensor((bk, bk), mode=OperandMode.INOUT),),
            reads=(),
            writes=(bufs[k][k],),
            label=f"potrf{k}",
        )
        # 2. Column solves on the host; results broadcast to all cards.
        for i in range(k + 1, T):
            bi = grid.tile_rows(i)
            s = h_streams[i % len(h_streams)]
            flow.compute(
                s,
                "dtrsm",
                args=(
                    bufs[i][k].tensor((bi, bk), mode=OperandMode.INOUT),
                    bufs[k][k].tensor((bk, bk), mode=OperandMode.IN),
                ),
                reads=(bufs[k][k],),
                writes=(bufs[i][k],),
                label=f"trsm{i}.{k}",
            )
            # One planned collective to all card domains replaces the
            # per-card send loop; trailing-update computes order behind
            # their own domain's arrival via reads=.
            flow.broadcast(
                [pool[i % len(pool)] for pool in card_streams.values()],
                bufs[i][k],
                label=f"bcast L{i}_{k}",
            )
        # 3. Trailing updates, distributed by tile-row.
        for i in range(k + 1, T):
            dom = row_owner[i]
            bi = grid.tile_rows(i)
            for j in range(k + 1, i + 1):
                bj = grid.tile_rows(j)
                s = update_stream(dom, i, j)
                # Column-k tiles arrived via the broadcast above (reads=
                # orders behind this domain's arrival); only the update
                # target tile still needs delivering to its owner.
                flow.send(s, bufs[i][j])
                if j == i:
                    flow.compute(
                        s,
                        "dsyrk",
                        args=(
                            bufs[i][i].tensor((bi, bi), mode=OperandMode.INOUT),
                            bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                        ),
                        reads=(bufs[i][k],),
                        writes=(bufs[i][i],),
                        label=f"syrk{i}.{k}",
                    )
                else:
                    flow.compute(
                        s,
                        "dgemm",
                        args=(
                            bufs[i][j].tensor((bi, bj), mode=OperandMode.INOUT),
                            bufs[i][k].tensor((bi, bk), mode=OperandMode.IN),
                            bufs[j][k].tensor((bj, bk), mode=OperandMode.IN),
                            -1.0,
                            True,  # transb: A[j][k]^T
                        ),
                        reads=(bufs[i][k], bufs[j][k]),
                        writes=(bufs[i][j],),
                        label=f"gemm{i}{j}.{k}",
                    )
            # 4. The next panel column comes home for iteration k+1.
            if k + 1 < T and i >= k + 1:
                dom_i = row_owner[i]
                if dom_i != 0:
                    s = update_stream(dom_i, i, k + 1)
                    flow.retrieve(s, bufs[i][k + 1], label=f"home L{i}_{k + 1}")

    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    gflops = (n**3 / 3.0) / elapsed / 1e9 if elapsed > 0 else float("inf")

    L = None
    if a_tiles is not None:
        full = [
            [
                a_tiles[i][j] if j <= i else np.zeros(grid.tile_shape(i, j))
                for j in range(T)
            ]
            for i in range(T)
        ]
        L = np.tril(join_tiles(full))
    return CholeskyResult(
        n=n, tile=tile, elapsed_s=elapsed, gflops=gflops, row_owner=row_owner, L=L
    )
