"""Tiled dense linear algebra over hStreams (paper §V/§VI).

* :mod:`repro.linalg.tiling` — square-tile decomposition utilities.
* :mod:`repro.linalg.host_blas` — the BLAS/LAPACK tile kernels: real
  numpy implementations for the thread backend plus calibrated cost
  models for the sim backend, registered under one name each.
* :mod:`repro.linalg.dataflow` — cross-stream dependence plumbing
  (producer events + scoped ``event_stream_wait`` insertion).
* :mod:`repro.linalg.matmul` — the Fig. 4 hetero matrix multiply: A
  broadcast, B column panels, C panels per domain, optional load
  balancing.
* :mod:`repro.linalg.cholesky` — the Fig. 5 hetero tiled Cholesky:
  DPOTRF/DTRSM on the host, DSYRK/DGEMM round-robin'd over tile-rows.
* :mod:`repro.linalg.lu` — tiled block LU in the same mold.
* :mod:`repro.linalg.magma_like` — MAGMA-style hybrid Cholesky (panel on
  host, updates on the card).
* :mod:`repro.linalg.mkl_ao` — MKL Automatic-Offload-style Cholesky
  (per-call host/card work splitting, synchronous per BLAS call).
"""

from repro.linalg.cholesky import CholeskyResult, hetero_cholesky
from repro.linalg.dataflow import FlowContext
from repro.linalg.host_blas import register_blas
from repro.linalg.lu import LUResult, hetero_lu
from repro.linalg.magma_like import magma_cholesky
from repro.linalg.matmul import MatmulResult, hetero_matmul
from repro.linalg.mkl_ao import mkl_ao_cholesky
from repro.linalg.tiling import TileGrid

__all__ = [
    "CholeskyResult",
    "hetero_cholesky",
    "FlowContext",
    "register_blas",
    "LUResult",
    "hetero_lu",
    "magma_cholesky",
    "MatmulResult",
    "hetero_matmul",
    "mkl_ao_cholesky",
    "TileGrid",
]
