"""Cross-stream dependence plumbing for tiled algorithms.

Within a stream, hStreams' FIFO + operand semantics track dependences
implicitly. *Across* streams, the application must insert explicit
synchronization actions (paper §II). :class:`FlowContext` automates the
pattern every tiled code needs:

* remember which action last produced each buffer and in which stream;
* before a consumer runs in a *different* stream, insert one scoped
  ``event_stream_wait`` (deduplicated per consumer stream and producer
  event) so only actions touching that buffer are ordered behind it.

Redundant data movement is no longer this layer's concern: the runtime's
:class:`~repro.core.memory.MemoryManager` tracks per-instance coherence
and *elides* transfers whose destination already holds the bytes (they
complete immediately but still order dependents), so :meth:`send` and
:meth:`retrieve` always enqueue and let the runtime decide — the elision
counters land in ``hs.metrics()["memory"]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.actions import XferDirection
from repro.core.buffer import Buffer
from repro.core.events import HEvent
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.sim.kernels import KernelCost

__all__ = ["FlowContext"]


class FlowContext:
    """Cross-stream dependence tracker over one runtime."""

    def __init__(self, hs: HStreams):
        self.hs = hs
        #: buffer uid -> (producing event, producing stream id)
        self._producer: Dict[int, Tuple[HEvent, int]] = {}
        #: buffer uid -> domain -> (arrival event, carrying stream id);
        #: set by :meth:`broadcast`, consulted by :meth:`require` so a
        #: consumer orders behind *its own domain's* arrival instead of
        #: the whole collective.
        self._arrivals: Dict[int, Dict[int, Tuple[HEvent, int]]] = {}
        #: sync actions already inserted: (consumer stream id, producer event id)
        self._synced: Set[Tuple[int, int, int]] = set()
        self.sync_count = 0

    # -- dependences ------------------------------------------------------------

    def require(self, stream: Stream, *bufs: Buffer) -> None:
        """Order ``stream`` behind the producers of ``bufs`` (scoped).

        No action is inserted for same-stream producers (FIFO covers
        them) or producers already synced into this stream.
        """
        pending: Dict[Tuple[int, int], Tuple[HEvent, Buffer]] = {}
        for buf in bufs:
            prod = self._producer.get(buf.uid)
            arrivals = self._arrivals.get(buf.uid)
            if arrivals is not None and stream.domain in arrivals:
                prod = arrivals[stream.domain]
            if prod is None:
                continue
            ev, sid = prod
            if sid == stream.id:
                continue
            # Skipping an already-complete producer is a *timing*
            # optimization; while a capture_graph() scope is recording,
            # the edge must be kept anyway or the template would depend
            # on how far execution happened to have progressed.
            if ev.is_complete() and not self.hs.capturing:
                continue
            # The inserted sync is *scoped* to the buffer's ranges, so
            # under the relaxed FIFO policy only later actions touching
            # those ranges order after it. A sync recorded for one
            # buffer enforces nothing for a different buffer of the same
            # producer event — dedup must be per (consumer stream,
            # producer event, buffer), not per (stream, event).
            key = (stream.id, id(ev), buf.uid)
            if key in self._synced:
                continue
            self._synced.add(key)
            pending[(id(ev), buf.uid)] = (ev, buf)
        if pending:
            self.sync_count += 1
            events = {id(ev): ev for ev, _ in pending.values()}
            self.hs.event_stream_wait(
                stream,
                list(events.values()),
                operands=[buf.all_inout() for _, buf in pending.values()],
            )

    def produced(self, buf: Buffer, ev: HEvent, stream: Stream) -> None:
        """Record ``ev`` (in ``stream``) as the latest producer of ``buf``."""
        self._producer[buf.uid] = (ev, stream.id)
        # A new producer supersedes any earlier broadcast's arrivals —
        # the replicated instances are stale now.
        self._arrivals.pop(buf.uid, None)

    # -- wrapped enqueues ------------------------------------------------------------

    def compute(
        self,
        stream: Stream,
        kernel: str,
        args,
        reads: Tuple[Buffer, ...] = (),
        writes: Tuple[Buffer, ...] = (),
        cost: Optional[KernelCost] = None,
        label: str = "",
    ) -> HEvent:
        """Enqueue a compute with cross-stream deps handled.

        ``reads``/``writes`` list the buffers behind the operand args (at
        whole-buffer granularity) for producer tracking.
        """
        self.require(stream, *reads, *writes)
        ev = self.hs.enqueue_compute(stream, kernel, args=args, cost=cost, label=label)
        for buf in writes:
            self.produced(buf, ev, stream)
        return ev

    def broadcast(
        self,
        streams: Iterable[Stream],
        buf: Buffer,
        schedule: str = "auto",
        label: str = "",
    ):
        """Replicate ``buf`` to every domain the given streams sink in.

        One planned collective (:meth:`~repro.core.runtime.HStreams.broadcast`)
        replaces the per-stream :meth:`send` loop: the payload rides a
        pipelined schedule on peer-routable fabrics and degrades to the
        classic serial transfers on PCIe-only platforms. Per-domain
        arrival events are recorded so :meth:`require` (and therefore
        :meth:`compute` ``reads=``) in *any* stream of a target domain
        orders behind that domain's arrival only. Returns the
        :class:`~repro.core.collectives.CollectiveResult`, or None when
        no stream sinks off-host.
        """
        by_domain: Dict[int, Stream] = {}
        for s in streams:
            by_domain.setdefault(s.domain, s)
        domains = [d for d in by_domain if d != 0]
        if not domains:
            return None
        after = []
        prod = self._producer.get(buf.uid)
        if prod is not None:
            ev, _sid = prod
            if not ev.is_complete() or self.hs.capturing:
                after.append(ev)
        res = self.hs.broadcast(
            buf,
            domains,
            schedule=schedule,
            streams=by_domain,
            after=after,
            label=label or f"bcast({buf.name})",
        )
        arrivals = self._arrivals.setdefault(buf.uid, {})
        for d, ev in res.arrivals.items():
            arrivals[d] = (ev, by_domain[d].id)
        return res

    def send(self, stream: Stream, buf: Buffer, label: str = "") -> HEvent:
        """Move ``buf``'s host copy to ``stream``'s domain.

        Always enqueues; the runtime's memory manager elides the
        transfer (zero cost, ordering preserved) when the destination
        instance already holds the bytes — including the aliased
        host-as-target case.
        """
        self.require(stream, buf)
        ev = self.hs.enqueue_xfer(
            stream, buf, XferDirection.SRC_TO_SINK, label=label or f"to({buf.name})"
        )
        self.produced(buf, ev, stream)
        return ev

    def retrieve(self, stream: Stream, buf: Buffer, label: str = "") -> HEvent:
        """Move ``buf``'s sink copy back to the host.

        Always enqueues; redundant retrievals (the host copy is already
        current) are elided by the runtime.
        """
        self.require(stream, buf)
        ev = self.hs.enqueue_xfer(
            stream, buf, XferDirection.SINK_TO_SRC, label=label or f"from({buf.name})"
        )
        self.produced(buf, ev, stream)
        return ev
