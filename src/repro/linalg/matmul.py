"""Hetero tiled matrix multiply — the paper's Fig. 4 algorithm.

Matrices A, B, C are divided into square tiles. Matrix **A is broadcast**,
one tile at a time, to the host (host-as-target streams) and all cards.
**B is partitioned into column panels**; each panel's tiles go only to
the domain that owns the panel. **C panels are assigned to a unique
domain** responsible for their update; panel updates are independent, so
no card-to-card communication ever occurs. Transfers to the host are
optimized away. Computation on a panel starts as soon as a few tiles
arrive — tiling plus multiple streams hides transfer latency, unlike the
traditional offload approach that waits for whole matrices.

Load balancing (Fig. 6): with ``load_balance=True``, panel columns are
assigned proportionally to each domain's measured DGEMM rate; otherwise
naively in equal shares (the paper's 1.58x gap on IVB + 2 KNC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.actions import OperandMode
from repro.core.buffer import Buffer
from repro.core.runtime import HStreams
from repro.core.stream import Stream
from repro.linalg.dataflow import FlowContext
from repro.linalg.host_blas import register_blas
from repro.linalg.tiling import TileGrid, join_tiles, split_tiles

__all__ = ["MatmulResult", "hetero_matmul", "assign_columns"]


@dataclass
class MatmulResult:
    """Outcome of one hetero matmul run."""

    n: int
    tile: int
    elapsed_s: float
    gflops: float
    assignment: Dict[int, int]  # domain index -> owned tile-columns
    C: Optional[np.ndarray] = None  # thread backend only


def assign_columns(
    ncols: int, domains: List[int], weights: List[float]
) -> List[int]:
    """Split ``ncols`` tile-columns over ``domains`` by ``weights``.

    Returns, per column, the owning domain. Contiguous blocks, largest
    remainder rounding, every weight > 0 guaranteed at least... nothing —
    a zero share is legal (a slow host may get no panel).
    """
    if len(domains) != len(weights) or not domains:
        raise ValueError("domains and weights must be equal-length, non-empty")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to > 0")
    exact = [ncols * w / total for w in weights]
    counts = [int(e) for e in exact]
    remainders = [e - c for e, c in zip(exact, counts)]
    for _ in range(ncols - sum(counts)):
        idx = max(range(len(domains)), key=lambda i: remainders[i])
        counts[idx] += 1
        remainders[idx] = -1.0
    owners: List[int] = []
    for d, c in zip(domains, counts):
        owners.extend([d] * c)
    return owners


def hetero_matmul(
    hs: HStreams,
    n: int,
    tile: Optional[int] = None,
    data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    use_host: bool = True,
    load_balance: bool = True,
    streams_per_domain: int = 4,
) -> MatmulResult:
    """Run C = A @ B on every domain of ``hs``'s platform.

    With ``data=(A, B)`` (thread backend) the product is computed for
    real and returned in ``result.C``; with ``data=None`` (sim backend)
    only the schedule runs, in virtual time.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    tile = tile if tile is not None else max(n // 12, 1)
    grid = TileGrid(n, tile)
    T = grid.ntiles
    register_blas(hs)
    flow = FlowContext(hs)

    # -- resources: streams per participating domain --------------------------
    domains = [d.index for d in hs.domains if use_host or d.index != 0]
    if not domains:
        raise ValueError("no participating domains")
    streams: Dict[int, List[Stream]] = {}
    for d in domains:
        total = hs.domain(d).device.total_cores
        nstr = min(streams_per_domain, total)
        width = total // nstr
        streams[d] = [hs.stream_create(domain=d, ncores=width) for _ in range(nstr)]

    # -- panel assignment ------------------------------------------------------
    if load_balance:
        weights = [hs.domain(d).device.gflops("dgemm", tile) for d in domains]
    else:
        weights = [1.0] * len(domains)
    owners = assign_columns(T, domains, weights)
    assignment = {d: owners.count(d) for d in domains}

    # -- buffers ------------------------------------------------------------------
    a_tiles = b_tiles = c_tiles = None
    if data is not None:
        A, B = data
        if A.shape != (n, n) or B.shape != (n, n):
            raise ValueError("A and B must be n x n")
        a_tiles = split_tiles(np.asarray(A, dtype=np.float64), tile)
        b_tiles = split_tiles(np.asarray(B, dtype=np.float64), tile)
        c_tiles = [
            [np.zeros(grid.tile_shape(i, j)) for j in range(T)] for i in range(T)
        ]

    def make(tag: str, i: int, j: int, tiles) -> Buffer:
        if tiles is not None:
            return hs.wrap(tiles[i][j], name=f"{tag}{i}_{j}")
        return hs.buffer_create(nbytes=grid.tile_nbytes(i, j), name=f"{tag}{i}_{j}")

    t0 = hs.elapsed()
    Ab = [[make("A", i, k, a_tiles) for k in range(T)] for i in range(T)]
    Bb = [[make("B", k, j, b_tiles) for j in range(T)] for k in range(T)]
    Cb = [[make("C", i, j, c_tiles) for j in range(T)] for i in range(T)]

    # -- enqueue the whole schedule ---------------------------------------------------
    # A is *broadcast*: every panel owner needs every A tile, so each
    # tile goes out as one planned collective over the owning card
    # domains (pipelined on peer-routable fabrics, the classic serial
    # transfers on PCIe) instead of a per-stream send loop. Computes
    # order behind their own domain's arrival via reads=.
    a_targets = sorted(d for d in set(owners) if d != 0)
    for i in range(T):
        for k in range(T):
            flow.broadcast(
                [streams[d][(i + k) % len(streams[d])] for d in a_targets],
                Ab[i][k],
            )
    for j in range(T):
        d = owners[j]
        dstreams = streams[d]
        for i in range(T):
            s = dstreams[i % len(dstreams)]
            for k in range(T):
                # B panel tile delivery on first use (partitioned, not
                # broadcast — only this panel's owner ever needs it).
                flow.send(s, Bb[k][j])
                mi, mj = grid.tile_shape(i, j)
                kk = grid.tile_cols(k)
                # The first k-tile is the C tile's first touch at the
                # sink (the instance starts zeroed, matching the host's
                # zeros): declaring it OUT makes the initialization
                # explicit instead of reading data never transferred.
                c_mode = OperandMode.OUT if k == 0 else OperandMode.INOUT
                flow.compute(
                    s,
                    "dgemm",
                    args=(
                        Cb[i][j].tensor((mi, mj), mode=c_mode),
                        Ab[i][k].tensor((mi, kk), mode=OperandMode.IN),
                        Bb[k][j].tensor((kk, mj), mode=OperandMode.IN),
                    ),
                    reads=(Ab[i][k], Bb[k][j]),
                    writes=(Cb[i][j],),
                    label=f"gemm{i}{j}.{k}",
                )
            # C panel comes home from the cards (aliased for the host).
            flow.retrieve(streams[d][i % len(dstreams)], Cb[i][j])

    hs.thread_synchronize()
    elapsed = hs.elapsed() - t0
    gflops = 2.0 * n**3 / elapsed / 1e9 if elapsed > 0 else float("inf")

    C = join_tiles(c_tiles) if c_tiles is not None else None
    return MatmulResult(
        n=n, tile=tile, elapsed_s=elapsed, gflops=gflops, assignment=assignment, C=C
    )
