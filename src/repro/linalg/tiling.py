"""Square-tile decomposition of dense matrices.

Tiling (paper §VI) decomposes big matrices into tiles so that transfers
pipeline under compute, task counts divide evenly over resources, and
work starts before whole matrices arrive. The helpers here handle the
bookkeeping: tile counts, edge tiles, scatter/gather between a monolithic
array and per-tile contiguous arrays (tile storage is what the reference
codes use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["TileGrid", "split_tiles", "join_tiles"]


@dataclass(frozen=True)
class TileGrid:
    """The tile decomposition of an ``n`` x ``n`` matrix with tile ``b``."""

    n: int
    b: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.b < 1:
            raise ValueError(f"need n >= 1 and b >= 1, got n={self.n}, b={self.b}")
        if self.b > self.n:
            raise ValueError(f"tile {self.b} larger than matrix {self.n}")

    @property
    def ntiles(self) -> int:
        """Tiles per side (ceiling division; the last tile may be short)."""
        return -(-self.n // self.b)

    def tile_rows(self, i: int) -> int:
        """Row count of tiles in tile-row ``i``."""
        self._check(i)
        return min(self.b, self.n - i * self.b)

    def tile_cols(self, j: int) -> int:
        """Column count of tiles in tile-column ``j``."""
        return self.tile_rows(j)

    def tile_shape(self, i: int, j: int) -> Tuple[int, int]:
        """Shape of tile ``(i, j)``."""
        return (self.tile_rows(i), self.tile_cols(j))

    def tile_nbytes(self, i: int, j: int, itemsize: int = 8) -> int:
        """Byte size of tile ``(i, j)``."""
        r, c = self.tile_shape(i, j)
        return r * c * itemsize

    def span(self, i: int) -> Tuple[int, int]:
        """Element range ``[start, stop)`` covered by tile index ``i``."""
        self._check(i)
        return i * self.b, min((i + 1) * self.b, self.n)

    def _check(self, i: int) -> None:
        if not (0 <= i < self.ntiles):
            raise IndexError(f"tile index {i} outside 0..{self.ntiles - 1}")

    def __iter__(self):
        """Iterate (i, j) over all tiles, row-major."""
        for i in range(self.ntiles):
            for j in range(self.ntiles):
                yield i, j

    def lower(self):
        """Iterate (i, j) over the lower triangle (j <= i)."""
        for i in range(self.ntiles):
            for j in range(i + 1):
                yield i, j


def split_tiles(matrix: np.ndarray, b: int) -> List[List[np.ndarray]]:
    """Scatter a square matrix into contiguous per-tile arrays."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"need a square 2-D matrix, got shape {matrix.shape}")
    grid = TileGrid(matrix.shape[0], b)
    out: List[List[np.ndarray]] = []
    for i in range(grid.ntiles):
        r0, r1 = grid.span(i)
        row: List[np.ndarray] = []
        for j in range(grid.ntiles):
            c0, c1 = grid.span(j)
            row.append(np.ascontiguousarray(matrix[r0:r1, c0:c1]))
        out.append(row)
    return out


def join_tiles(
    tiles: List[List[np.ndarray]], out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gather per-tile arrays back into one square matrix."""
    if not tiles or not tiles[0]:
        raise ValueError("empty tile grid")
    n = sum(row[0].shape[0] for row in tiles)
    if out is None:
        out = np.empty((n, n), dtype=tiles[0][0].dtype)
    r0 = 0
    for row in tiles:
        r1 = r0 + row[0].shape[0]
        c0 = 0
        for t in row:
            c1 = c0 + t.shape[1]
            out[r0:r1, c0:c1] = t
            c0 = c1
        r0 = r1
    return out
