"""COI-like plumbing layers under hStreams.

The paper (§III, Fig. 1) layers hStreams above the Intel Coprocessor
Offload Infrastructure (COI), which in turn sits on SCIF, the low-level
PCIe transport. This package reproduces that stack for the simulated
platform:

* :mod:`repro.coi.scif` — SCIF-like transport: small control messages and
  DMA transfers over the per-card PCIe links.
* :mod:`repro.coi.coi` — COI-like offload layer: sink processes,
  in-order pipelines, buffers, and run-function invocations.
* :mod:`repro.coi.buffer_pool` — the 2 MB buffer pool whose presence made
  COI allocation overheads "negligible" in the paper (and whose absence,
  in the OmpSs configuration, made them significant).
"""

from repro.coi.buffer_pool import BufferPool
from repro.coi.coi import COIBuffer, COIContext, COIPipeline, COIProcess
from repro.coi.scif import ScifFabric

__all__ = [
    "BufferPool",
    "COIBuffer",
    "COIContext",
    "COIPipeline",
    "COIProcess",
    "ScifFabric",
]
