"""SCIF-like transport: the lowest plumbing layer.

The Symmetric Communications Interface abstracts the PCIe hardware into
two primitives that COI builds on:

* ``message`` — a small control send (doorbells, command descriptors);
  latency-dominated.
* ``dma`` — a bulk payload transfer between two nodes. Host-rooted
  transfers occupy one direction of the far node's port; node-to-node
  transfers are routed only when the underlying :class:`Fabric` has
  peer routing enabled, and otherwise must stage via the host as in the
  paper's applications.

Host-to-host "transfers" complete after a memcpy-speed delay (there is no
wire), and zero-hop transfers (same domain, aliased) are free.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.sim.engine import Engine, Event
from repro.sim.interconnect import Fabric, LinkPair

__all__ = ["ScifFabric"]

#: Fixed cost of a small SCIF control message (doorbell + descriptor).
MESSAGE_LATENCY_S = 2.0e-6


class ScifFabric:
    """All SCIF endpoints of one platform: host node 0 plus card nodes."""

    def __init__(
        self,
        engine: Engine,
        links: Union[Fabric, Dict[int, LinkPair]],
        host_mem_bw_gbs: float = 100.0,
    ):
        if host_mem_bw_gbs <= 0:
            raise ValueError("host_mem_bw_gbs must be > 0")
        self.engine = engine
        if isinstance(links, Fabric):
            self.fabric = links
        else:
            # Bare port dict: the original independent-links topology.
            self.fabric = Fabric(engine, links)
        self.host_mem_bw_gbs = host_mem_bw_gbs
        self.message_count = 0
        self.dma_count = 0

    @property
    def links(self) -> Dict[int, LinkPair]:
        """Per-domain ports (kept for existing metric consumers)."""
        return self.fabric.ports

    def _immediate(self, delay: float, value=None) -> Event:
        return self.engine.timeout(delay, value=value)

    def message(self, src: int, dst: int) -> Event:
        """Send a small control message from node ``src`` to node ``dst``."""
        self._check_route(src, dst)
        self.message_count += 1
        if src == dst:
            return self._immediate(0.0)
        # A control message rides the link but is latency-dominated; it
        # does not occupy the DMA engine.
        card = dst if dst != 0 else src
        latency = self.links[card].h2d.latency_s + MESSAGE_LATENCY_S
        return self._immediate(latency)

    def dma(self, src: int, dst: int, nbytes: int) -> Event:
        """Bulk transfer of ``nbytes`` from node ``src`` to node ``dst``.

        Host-rooted routes always exist; a node-to-node route exists
        only on a peer-enabled fabric. The returned event fires at DMA
        completion.
        """
        self._check_route(src, dst)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.dma_count += 1
        if src == dst:
            return self._immediate(0.0, value=nbytes)  # aliased, no copy
        return self.fabric.transfer(src, dst, nbytes)

    def host_copy(self, nbytes: int) -> Event:
        """A host-local memcpy at memory bandwidth (host-as-target path)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self._immediate(nbytes / (self.host_mem_bw_gbs * 1e9), value=nbytes)

    def _check_route(self, src: int, dst: int) -> None:
        for node in (src, dst):
            if node != 0 and node not in self.links:
                raise ValueError(f"no SCIF node {node}; known cards: {sorted(self.links)}")
