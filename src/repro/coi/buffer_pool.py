"""The COI 2 MB buffer pool.

Card-side memory allocation is *synchronous* — it blocks the enqueueing
host thread (the paper's conclusions single this out as the bottleneck
that motivated a forthcoming async-alloc feature). COI amortizes the cost
by recycling fixed-size chunks: once a chunk has been paid for, reusing
it is free. The paper notes COI overheads are negligible *with* the pool
and significant without it (the OmpSs configuration).
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["BufferPool"]


class BufferPool:
    """Per-domain recycling allocator of fixed-size chunks.

    ``cost_fn(nbytes)`` prices a fresh allocation; :meth:`acquire` returns
    the host-blocking cost of satisfying a request (0.0 when recycled
    chunks cover it) and :meth:`release` returns chunks for reuse.
    """

    def __init__(
        self,
        chunk_bytes: int,
        cost_fn: Callable[[int], float],
        enabled: bool = True,
    ):
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be > 0, got {chunk_bytes}")
        self.chunk_bytes = chunk_bytes
        self.cost_fn = cost_fn
        self.enabled = enabled
        self._free_chunks: Dict[int, int] = {}  # domain -> recycled chunk count
        self.fresh_allocations = 0
        self.recycled_allocations = 0

    def chunks_for(self, nbytes: int) -> int:
        """Chunks needed to back an ``nbytes`` request."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return max(1, -(-nbytes // self.chunk_bytes))

    def acquire(self, domain: int, nbytes: int) -> float:
        """Back ``nbytes`` in ``domain``; return the host-blocking cost."""
        need = self.chunks_for(nbytes)
        if not self.enabled:
            self.fresh_allocations += need
            return self.cost_fn(nbytes)
        have = self._free_chunks.get(domain, 0)
        reused = min(have, need)
        fresh = need - reused
        self._free_chunks[domain] = have - reused
        self.recycled_allocations += reused
        self.fresh_allocations += fresh
        if fresh == 0:
            return 0.0
        return self.cost_fn(fresh * self.chunk_bytes)

    def release(self, domain: int, nbytes: int) -> None:
        """Return the chunks backing ``nbytes`` in ``domain`` to the pool."""
        if not self.enabled:
            return
        self._free_chunks[domain] = self._free_chunks.get(domain, 0) + self.chunks_for(
            nbytes
        )

    def free_chunks(self, domain: int) -> int:
        """Recycled chunks currently available in ``domain``."""
        return self._free_chunks.get(domain, 0)
