"""COI-like offload layer: processes, pipelines, buffers.

COI (Coprocessor Offload Infrastructure) is the layer hStreams is built
on (paper Fig. 1). It owns:

* one sink **process** per card (spawned at init — the paper notes the
  MIC-side overheads are paid at initialization time);
* **pipelines** — in-order command queues into a sink process; hStreams
  maps each stream's compute slot onto one pipeline and regains
  out-of-order execution by *issuing* commands only when their
  dependences are satisfied;
* **buffers** — card-side backing store whose synchronous allocation cost
  is amortized by the 2 MB :class:`~repro.coi.buffer_pool.BufferPool`;
* **run-function** invocations and DMA transfers via SCIF.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.coi.buffer_pool import BufferPool
from repro.coi.scif import ScifFabric
from repro.sim.engine import Engine, Event, Resource  # noqa: F401 (Resource in API)

__all__ = ["COIProcess", "COIPipeline", "COIBuffer", "COIContext"]

_pipe_ids = itertools.count()
_buf_ids = itertools.count()

#: One-time cost of spawning the sink process on a card (binary load,
#: connection setup). Paid at engine time zero during init.
PROCESS_SPAWN_S = 0.25

#: Sink-side cost of dispatching one run-function command.
RUN_FUNCTION_DISPATCH_S = 1.0e-6


class COIProcess:
    """The sink-side process executing run-functions in one domain."""

    def __init__(self, engine: Engine, domain: int):
        self.engine = engine
        self.domain = domain
        self.spawn_cost_s = PROCESS_SPAWN_S if domain != 0 else 0.0
        self.run_function_count = 0


class COIPipeline:
    """An in-order command queue into a sink process.

    Commands execute serially in arrival order; out-of-order behaviour is
    the caller's job (issue only when ready).
    """

    def __init__(self, context: "COIContext", process: COIProcess, name: str = ""):
        self.context = context
        self.process = process
        self.id = next(_pipe_ids)
        self.name = name or f"pipe{self.id}"
        self._slot = Resource(context.engine, capacity=1, name=self.name)

    def run_function(
        self,
        duration_s: float,
        on_start: Optional[Callable[[], None]] = None,
        gate: Optional[Resource] = None,
        gate_units: int = 0,
    ) -> Event:
        """Execute one command of ``duration_s`` sink-side seconds.

        The returned event fires at completion. ``on_start`` (if given)
        runs when the command actually begins occupying the sink — used
        by the tracer to record true start times. ``gate`` (if given) is
        a shared resource — the sink domain's cores — from which
        ``gate_units`` must additionally be held while the command runs;
        this is how overlapping CPU masks and whole-device kernels
        contend for the same silicon.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        engine = self.context.engine
        done = engine.event(name=f"run:{self.name}")
        self.process.run_function_count += 1
        msg = self.context.fabric.message(0, self.process.domain)

        def run():
            yield msg  # command descriptor reaches the sink
            yield self._slot.request()
            try:
                if gate is not None and gate_units > 0:
                    yield gate.request(gate_units)
                try:
                    if on_start is not None:
                        on_start()
                    yield engine.timeout(RUN_FUNCTION_DISPATCH_S + duration_s)
                finally:
                    if gate is not None and gate_units > 0:
                        gate.release(gate_units)
            finally:
                self._slot.release()
            done.trigger()

        engine.process(run(), name=f"run:{self.name}")
        return done


class COIBuffer:
    """Card-side backing store for one hStreams buffer instance."""

    def __init__(self, domain: int, nbytes: int):
        self.id = next(_buf_ids)
        self.domain = domain
        self.nbytes = nbytes
        self.released = False


class COIContext:
    """All COI state for one simulated platform."""

    def __init__(
        self,
        engine: Engine,
        fabric: ScifFabric,
        pool: BufferPool,
        domains: int,
    ):
        if domains < 1:
            raise ValueError("need at least the host domain")
        self.engine = engine
        self.fabric = fabric
        self.pool = pool
        self.processes: Dict[int, COIProcess] = {
            d: COIProcess(engine, d) for d in range(domains)
        }
        #: Total one-time init cost (host-blocking, paid once).
        self.init_cost_s = sum(p.spawn_cost_s for p in self.processes.values())

    def pipeline(self, domain: int, name: str = "") -> COIPipeline:
        """Create an in-order pipeline into ``domain``'s sink process."""
        try:
            proc = self.processes[domain]
        except KeyError:
            raise ValueError(f"no COI process in domain {domain}") from None
        return COIPipeline(self, proc, name=name)

    def buffer_create(self, domain: int, nbytes: int) -> "tuple[COIBuffer, float]":
        """Allocate sink-side backing; returns (buffer, host-blocking cost)."""
        cost = self.pool.acquire(domain, nbytes) if domain != 0 else 0.0
        return COIBuffer(domain, nbytes), cost

    def buffer_destroy(self, buf: COIBuffer) -> None:
        """Return the backing chunks to the pool."""
        if buf.released:
            raise ValueError(f"COI buffer {buf.id} already destroyed")
        buf.released = True
        if buf.domain != 0:
            self.pool.release(buf.domain, buf.nbytes)

    def dma(self, src: int, dst: int, nbytes: int) -> Event:
        """Bulk transfer between the host and a card (or host-local copy)."""
        if src == 0 and dst == 0:
            return self.fabric.host_copy(nbytes)
        return self.fabric.dma(src, dst, nbytes)
